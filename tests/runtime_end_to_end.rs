//! Integration tests running the threaded runtime and checking the
//! paper's properties on what the user actually saw.

use std::sync::Arc;

use rcm::core::ad::{Ad1, Ad2, Ad3, Ad4};
use rcm::core::condition::expr::CompiledCondition;
use rcm::core::condition::{Cmp, Condition, DeltaRise, Threshold};
use rcm::core::{VarId, VarRegistry};
use rcm::net::{Bernoulli, Lossless};
use rcm::props::{check_complete_single, check_consistent_single, check_ordered};
use rcm::runtime::{MonitorSystem, VarFeed};

fn x() -> VarId {
    VarId::new(0)
}

fn sawtooth(n: usize) -> Vec<f64> {
    (0..n).map(|i| f64::from((i % 10) as u32) * 30.0 + i as f64).collect()
}

#[test]
fn lossless_runtime_is_complete_and_consistent() {
    let cond: Arc<dyn Condition> = Arc::new(DeltaRise::new(x(), 25.0));
    let system = MonitorSystem::builder(cond.clone())
        .replicas(3)
        .feed(VarFeed::new(x(), sawtooth(60)))
        .loss(|_, _| Box::new(Lossless))
        .start()
        .expect("valid configuration");
    let report = system.wait();
    assert!(!report.displayed.is_empty());
    assert!(check_complete_single(&cond, &report.ingested, &report.displayed).ok);
    assert!(check_consistent_single(&cond, &report.ingested, &report.displayed).ok);
}

#[test]
fn ad2_runtime_output_is_always_ordered() {
    for seed in 0..5u64 {
        let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x(), Cmp::Gt, 20.0));
        let system = MonitorSystem::builder(cond)
            .replicas(3)
            .feed(VarFeed::new(x(), sawtooth(80)))
            .loss(|_, _| Box::new(Bernoulli::new(0.25)))
            .seed(seed)
            .filter(|vars| Box::new(Ad2::new(vars[0])))
            .start()
            .expect("valid configuration");
        let report = system.wait();
        assert!(check_ordered(&report.displayed, &[x()]).ok, "seed {seed}: AD-2 output unordered");
    }
}

#[test]
fn ad3_and_ad4_runtime_output_is_always_consistent() {
    for seed in 0..5u64 {
        for ad4 in [false, true] {
            let cond: Arc<dyn Condition> = Arc::new(DeltaRise::new(x(), 25.0));
            let system =
                MonitorSystem::builder(cond.clone())
                    .replicas(2)
                    .feed(VarFeed::new(x(), sawtooth(80)))
                    .loss(|_, _| Box::new(Bernoulli::new(0.3)))
                    .seed(seed)
                    .filter(move |vars| {
                        if ad4 {
                            Box::new(Ad4::new(vars[0]))
                        } else {
                            Box::new(Ad3::new(vars[0]))
                        }
                    })
                    .start()
                    .expect("valid configuration");
            let report = system.wait();
            let cons = check_consistent_single(&cond, &report.ingested, &report.displayed);
            assert!(cons.ok, "seed {seed} ad4={ad4}: {:?}", cons.conflict);
            if ad4 {
                assert!(check_ordered(&report.displayed, &[x()]).ok);
            }
        }
    }
}

#[test]
fn compiled_expression_runs_through_the_runtime() {
    let mut registry = VarRegistry::new();
    let cond = CompiledCondition::compile(
        "price[0].value - price[-1].value > 10 && consecutive(price)",
        &mut registry,
    )
    .expect("valid source");
    let price = registry.lookup("price").expect("registered");
    let cond: Arc<dyn Condition> = Arc::new(cond);
    let system = MonitorSystem::builder(cond.clone())
        .replicas(2)
        .feed(VarFeed::new(price, sawtooth(40)))
        .filter(|_| Box::new(Ad1::new()))
        .start()
        .expect("valid configuration");
    let report = system.wait();
    assert!(!report.displayed.is_empty());
    assert!(check_consistent_single(&cond, &report.ingested, &report.displayed).ok);
}

#[test]
fn streaming_feed_delivers_alerts_live() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x(), Cmp::Gt, 100.0));
    let (feed, tx) = rcm::runtime::VarFeed::streaming(x());
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = Arc::clone(&seen);
    let system = MonitorSystem::builder(cond)
        .replicas(2)
        .feed(feed)
        .on_alert(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        })
        .start()
        .expect("valid configuration");

    tx.send(50.0).unwrap();
    tx.send(150.0).unwrap(); // alert
                             // The alert must surface while the stream is still open.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while seen.load(Ordering::SeqCst) == 0 {
        assert!(std::time::Instant::now() < deadline, "alert never surfaced");
        std::thread::yield_now();
    }
    assert!(!system.displayed_so_far().is_empty());

    tx.send(200.0).unwrap(); // second alert
    drop(tx); // end of stream
    let report = system.wait();
    assert_eq!(report.displayed.len(), 2);
    assert_eq!(seen.load(Ordering::SeqCst), 2);
}

#[test]
fn replication_survives_a_totally_deaf_replica() {
    // One replica's link drops everything: the system still alerts.
    let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x(), Cmp::Gt, 50.0));
    let system = MonitorSystem::builder(cond)
        .replicas(2)
        .feed(VarFeed::new(x(), vec![10.0, 60.0, 70.0]))
        .loss(
            |_, ce| {
                if ce.index() == 0 {
                    Box::new(Bernoulli::new(1.0))
                } else {
                    Box::new(Lossless)
                }
            },
        )
        .start()
        .expect("valid configuration");
    let report = system.wait();
    assert!(report.ingested[0].is_empty());
    assert_eq!(report.displayed.len(), 2);
}
