//! Failure-injection integration tests: CE crashes and AD outages must
//! not break the AD algorithms' guarantees — from the paper's
//! perspective a crashed replica is just a very lossy front link, and
//! the analysis must survive it.

use rcm::core::ad::apply_filter;
use rcm::props::{check_consistent_single, check_ordered};
use rcm::sim::montecarlo::{build_scenario, FilterKind, ScenarioKind, Topology};
use rcm::sim::{run, Outage};

#[test]
fn ce_crashes_do_not_break_ad4_guarantees() {
    for seed in 0..12u64 {
        let mut scenario = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, seed);
        // Both replicas suffer staggered outages (histories lost on
        // crash, updates missed while down).
        scenario.outages =
            vec![Outage { ce: 0, from: 40, to: 90 }, Outage { ce: 1, from: 120, to: 180 }];
        let condition = scenario.condition.clone();
        let vars = condition.variables();
        let result = run(scenario);
        let mut filter = FilterKind::Ad4.build(&vars);
        let displayed = apply_filter(&mut *filter, &result.arrivals);
        assert!(check_ordered(&displayed, &vars).ok, "seed {seed}: AD-4 unordered under crashes");
        let cons = check_consistent_single(&condition, &result.inputs, &displayed);
        assert!(cons.ok, "seed {seed}: AD-4 inconsistent under crashes: {:?}", cons.conflict);
    }
}

#[test]
fn crashes_show_up_as_loss_in_the_stats() {
    let mut scenario = build_scenario(ScenarioKind::Lossless, Topology::SingleVar, 3);
    scenario.outages = vec![Outage { ce: 0, from: 0, to: 120 }];
    let result = run(scenario);
    assert!(result.stats.updates_missed_down > 0);
    // The downed replica ingested strictly less than its peer.
    assert!(result.inputs[0].len() < result.inputs[1].len());
}

#[test]
fn ad_outage_plus_ce_crashes_still_deliver_every_emitted_alert() {
    for seed in 0..6u64 {
        let mut scenario =
            build_scenario(ScenarioKind::LossyNonHistorical, Topology::SingleVar, seed);
        scenario.outages = vec![Outage { ce: 1, from: 30, to: 70 }];
        scenario.ad_outages = vec![(50, 200)];
        let result = run(scenario);
        // Back links are reliable: every alert a CE emitted arrives,
        // eventually.
        assert_eq!(result.stats.alerts_emitted as usize, result.arrivals.len(), "seed {seed}");
        // Buffered alerts arrive no earlier than the outage end.
        for &(sent, arrived) in &result.arrival_times {
            if (50..200).contains(&sent) {
                assert!(arrived >= 200, "seed {seed}: alert at {sent} arrived at {arrived}");
            }
        }
    }
}

#[test]
fn crashed_replica_histories_reset_cleanly() {
    // After an outage the replica's first fresh alerts must carry
    // post-recovery histories only (no stale pre-crash entries).
    let mut scenario = build_scenario(ScenarioKind::LossyConservative, Topology::SingleVar, 5);
    scenario.outages = vec![Outage { ce: 0, from: 50, to: 150 }];
    let condition = scenario.condition.clone();
    let result = run(scenario);
    // Conservative conditions: every alert from the recovered replica
    // still has consecutive histories.
    for alert in &result.ce_outputs[0] {
        assert!(alert.fingerprint.is_consecutive(), "{alert}");
    }
    drop(condition);
}
