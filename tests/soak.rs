//! Long-running soak tests, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! These push the Monte-Carlo budgets an order of magnitude past what
//! the regular suite uses, hunting for rare counterexamples to the √
//! cells — any failure here would be a bug in an AD algorithm or a
//! property checker.

use rcm::sim::montecarlo::{evaluate_cell, FilterKind, ScenarioKind, Topology};

const SOAK_RUNS: u64 = 1000;

#[test]
#[ignore = "soak test: ~minutes; run explicitly with --ignored"]
fn ad2_orderedness_never_violated_in_a_thousand_runs() {
    for kind in ScenarioKind::ALL {
        let c = evaluate_cell(kind, Topology::SingleVar, FilterKind::Ad2, SOAK_RUNS, 0xdead);
        assert_eq!(c.unordered, 0, "{kind:?}: {c:?}");
    }
}

#[test]
#[ignore = "soak test: ~minutes; run explicitly with --ignored"]
fn ad4_guarantees_never_violated_in_a_thousand_runs() {
    for kind in ScenarioKind::ALL {
        let c = evaluate_cell(kind, Topology::SingleVar, FilterKind::Ad4, SOAK_RUNS, 0xbeef);
        assert_eq!(c.unordered, 0, "{kind:?}: {c:?}");
        assert_eq!(c.inconsistent, 0, "{kind:?}: {c:?}");
    }
}

#[test]
#[ignore = "soak test: ~minutes; run explicitly with --ignored"]
fn ad6_guarantees_never_violated_multi_var() {
    for kind in ScenarioKind::ALL {
        let c = evaluate_cell(kind, Topology::MultiVar, FilterKind::Ad6, SOAK_RUNS / 4, 0xcafe);
        assert_eq!(c.unordered, 0, "{kind:?}: {c:?}");
        assert_eq!(c.inconsistent, 0, "{kind:?}: {c:?}");
    }
}

#[test]
#[ignore = "soak test: ~minutes; run explicitly with --ignored"]
fn lossless_single_var_systems_keep_all_three_properties() {
    for filter in [FilterKind::Ad1, FilterKind::Ad2, FilterKind::Ad3, FilterKind::Ad4] {
        let c =
            evaluate_cell(ScenarioKind::Lossless, Topology::SingleVar, filter, SOAK_RUNS, 0xf00d);
        assert_eq!((c.unordered, c.incomplete, c.inconsistent), (0, 0, 0), "{filter:?}: {c:?}");
    }
}
