//! Differential testing between the two execution substrates: the
//! discrete-event simulator and the threaded runtime, given identical
//! scripted inputs (same readings, same per-link loss script), must
//! produce identical per-replica behaviour — received updates and
//! emitted alerts. Timing-dependent parts (arrival interleavings at
//! the AD) are legitimately different and excluded.

use std::collections::BTreeMap;
use std::sync::Arc;

use rcm::core::condition::{Cmp, Condition, Conservative, DeltaRise, Threshold};
use rcm::core::{Alert, CeId, SeqNo, VarId};
use rcm::net::Scripted as ScriptedLoss;
use rcm::runtime::{MonitorSystem, VarFeed};
use rcm::sim::{run, DelaySpec, LossSpec, Scenario, Scripted, VarWorkload};

fn x() -> VarId {
    VarId::new(0)
}

/// Scripted drop positions per replica (0-based update indices).
const DROPS: [&[u64]; 2] = [&[2, 3], &[0, 5, 6]];

fn values() -> Vec<f64> {
    vec![400.0, 700.0, 720.0, 1000.0, 980.0, 1300.0, 1290.0, 1600.0, 1580.0, 1900.0]
}

fn run_sim(cond: Arc<dyn Condition>) -> (Vec<Vec<u64>>, Vec<Vec<Alert>>) {
    let scenario = Scenario {
        condition: cond,
        replicas: 2,
        workloads: vec![VarWorkload {
            var: x(),
            updates: values().len() as u64,
            period: 10,
            offset: 0,
            model: Box::new(Scripted::new(values())),
        }],
        front_loss: vec![
            LossSpec::Scripted(DROPS[0].to_vec()),
            LossSpec::Scripted(DROPS[1].to_vec()),
        ],
        front_delay: vec![DelaySpec::Constant(1)],
        back_delay: vec![DelaySpec::Constant(1)],
        outages: vec![],
        ad_outages: vec![],
        seed: 0,
        link_salt: 0,
    };
    let result = run(scenario);
    let inputs =
        result.inputs.iter().map(|us| us.iter().map(|u| u.seqno.get()).collect()).collect();
    (inputs, result.ce_outputs)
}

fn run_runtime(cond: Arc<dyn Condition>) -> (Vec<Vec<u64>>, Vec<Vec<Alert>>) {
    let system = MonitorSystem::builder(cond)
        .replicas(2)
        .feed(VarFeed::new(x(), values()))
        .loss(|_, ce| Box::new(ScriptedLoss::new(DROPS[ce.index() as usize].iter().copied())))
        .start()
        .expect("valid configuration");
    let report = system.wait();
    let inputs =
        report.ingested.iter().map(|us| us.iter().map(|u| u.seqno.get()).collect()).collect();
    // Recover per-replica alert streams from the merged arrivals: the
    // shared channel preserves each sender's order.
    let mut per_ce: BTreeMap<CeId, Vec<Alert>> = BTreeMap::new();
    per_ce.insert(CeId::new(0), vec![]);
    per_ce.insert(CeId::new(1), vec![]);
    for a in report.arrivals {
        per_ce.entry(a.id.ce).or_default().push(a);
    }
    (inputs, per_ce.into_values().collect())
}

fn compare(cond_sim: Arc<dyn Condition>, cond_rt: Arc<dyn Condition>) {
    let (sim_inputs, sim_alerts) = run_sim(cond_sim);
    let (rt_inputs, rt_alerts) = run_runtime(cond_rt);
    assert_eq!(sim_inputs, rt_inputs, "replicas received different updates");
    assert_eq!(sim_alerts.len(), rt_alerts.len());
    for (ce, (s, r)) in sim_alerts.iter().zip(&rt_alerts).enumerate() {
        let s_fp: Vec<Vec<SeqNo>> =
            s.iter().map(|a| a.fingerprint.seqnos(x()).unwrap().to_vec()).collect();
        let r_fp: Vec<Vec<SeqNo>> =
            r.iter().map(|a| a.fingerprint.seqnos(x()).unwrap().to_vec()).collect();
        assert_eq!(s_fp, r_fp, "replica {ce} emitted different alerts");
    }
}

#[test]
fn threshold_condition_agrees_across_substrates() {
    compare(
        Arc::new(Threshold::new(x(), Cmp::Gt, 900.0)),
        Arc::new(Threshold::new(x(), Cmp::Gt, 900.0)),
    );
}

#[test]
fn aggressive_delta_agrees_across_substrates() {
    compare(Arc::new(DeltaRise::new(x(), 200.0)), Arc::new(DeltaRise::new(x(), 200.0)));
}

#[test]
fn conservative_delta_agrees_across_substrates() {
    compare(
        Arc::new(Conservative::new(DeltaRise::new(x(), 200.0))),
        Arc::new(Conservative::new(DeltaRise::new(x(), 200.0))),
    );
}

#[test]
fn the_scripts_actually_drop_something() {
    let (inputs, _) = run_sim(Arc::new(Threshold::new(x(), Cmp::Gt, 900.0)));
    assert_eq!(inputs[0].len(), values().len() - DROPS[0].len());
    assert_eq!(inputs[1].len(), values().len() - DROPS[1].len());
    assert!(!inputs[0].contains(&3)); // 0-based position 2 = seqno 3
    assert!(!inputs[1].contains(&1)); // position 0 = seqno 1
}
