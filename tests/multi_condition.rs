//! Integration tests for multi-condition systems (paper Appendix D):
//! per-condition demultiplexing and the disjunction reduction.

use rcm::core::ad::{apply_filter, Ad3, AlertFilter, PerCondition};
use rcm::core::condition::{Cmp, Condition, DeltaRise, Or, Threshold};
use rcm::core::{Alert, CeId, CondId, Evaluator, Update, VarId};

fn x() -> VarId {
    VarId::new(0)
}

fn run_ce<C: Condition>(cond: &C, cond_id: CondId, ce: u32, updates: &[Update]) -> Vec<Alert> {
    let mut ev = Evaluator::with_ids(cond, cond_id, CeId::new(ce));
    updates.iter().filter_map(|&u| ev.ingest(u)).collect()
}

/// Fig. D-7(c): separate CEs per condition, replicated; the AD runs one
/// AD-3 instance per condition stream, so conflicts are detected within
/// a condition but never across conditions.
#[test]
fn per_condition_filters_are_isolated() {
    let hot = DeltaRise::new(x(), 200.0); // condition A, aggressive
    let warm = DeltaRise::new(x(), 100.0); // condition B, aggressive

    let u_full =
        vec![Update::new(x(), 1, 400.0), Update::new(x(), 2, 700.0), Update::new(x(), 3, 720.0)];
    let u_lossy = vec![u_full[0], u_full[2]]; // missed update 2

    // Condition A replicated on two CEs (one lossy) → conflicting alerts.
    let a_rep1 = run_ce(&hot, CondId::new(0), 1, &u_full);
    let a_rep2 = run_ce(&hot, CondId::new(0), 2, &u_lossy);
    // Condition B monitored by one CE with full input.
    let b_rep = run_ce(&warm, CondId::new(1), 3, &u_full);

    let arrivals: Vec<Alert> =
        a_rep1.iter().chain(a_rep2.iter()).chain(b_rep.iter()).cloned().collect();
    let mut ad = PerCondition::new(|_c| Ad3::new(x()));
    let shown = apply_filter(&mut ad, &arrivals);

    // Within condition A, the second replica's aggressive alert
    // conflicts and is dropped; condition B's alerts are untouched even
    // though they reference the same updates.
    let a_shown = shown.iter().filter(|a| a.cond == CondId::new(0)).count();
    let b_shown = shown.iter().filter(|a| a.cond == CondId::new(1)).count();
    assert_eq!(a_shown, 1);
    assert_eq!(b_shown, b_rep.len());
    assert_eq!(ad.streams(), 2);
}

/// Fig. D-7(d)/D-8: co-located conditions reduce to C = A ∨ B; a single
/// evaluation per update stream gives one coherent alert stream.
#[test]
fn colocated_conditions_reduce_to_disjunction() {
    let a = Threshold::new(x(), Cmp::Gt, 100.0);
    let b = Threshold::new(x(), Cmp::Lt, 0.0);
    let c = Or::new(a.clone(), b.clone());
    let updates = vec![
        Update::new(x(), 1, 50.0),  // neither
        Update::new(x(), 2, 150.0), // A
        Update::new(x(), 3, -10.0), // B
        Update::new(x(), 4, 120.0), // A
    ];
    let combined = run_ce(&c, CondId::new(9), 0, &updates);
    let alerts_a = run_ce(&a, CondId::new(0), 0, &updates);
    let alerts_b = run_ce(&b, CondId::new(1), 0, &updates);
    // C triggers exactly when A or B does.
    assert_eq!(combined.len(), alerts_a.len() + alerts_b.len());
    let c_seqs: Vec<u64> = combined.iter().map(|al| al.seqno(x()).unwrap().get()).collect();
    assert_eq!(c_seqs, vec![2, 3, 4]);
}

/// Duplicate suppression is per condition: the same histories under
/// different condition ids are distinct alerts.
#[test]
fn same_history_different_condition_is_not_a_duplicate() {
    use rcm::core::ad::Ad1;
    let a = Threshold::new(x(), Cmp::Gt, 0.0);
    let updates = vec![Update::new(x(), 1, 5.0)];
    let alert_a = run_ce(&a, CondId::new(0), 0, &updates).remove(0);
    let alert_b = run_ce(&a, CondId::new(1), 0, &updates).remove(0);
    let mut ad = Ad1::new();
    assert!(ad.offer(&alert_a).is_deliver());
    assert!(ad.offer(&alert_b).is_deliver());
    assert!(!ad.offer(&alert_a).is_deliver());
}
