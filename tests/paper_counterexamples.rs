//! Integration tests replaying every counterexample from the paper's
//! proofs (Appendix B), end to end through the public API.

use rcm::core::ad::{apply_filter, Ad1, Ad2, Ad5};
use rcm::core::condition::{AbsDifference, Cmp, Conservative, DeltaRise, Threshold};
use rcm::core::{transduce, Alert, CeId, SeqNo, Update, VarId};
use rcm::props::{
    check_complete_multi, check_complete_single, check_consistent_multi, check_consistent_single,
    check_ordered,
};

fn x() -> VarId {
    VarId::new(0)
}
fn y() -> VarId {
    VarId::new(1)
}

fn u(s: u64, v: f64) -> Update {
    Update::new(x(), s, v)
}

/// Theorem 2's counterexample: non-historical + lossy is complete but
/// not ordered under AD-1.
#[test]
fn theorem_2_unordered_counterexample() {
    let c1 = Threshold::new(x(), Cmp::Gt, 3000.0);
    let u1 = vec![u(1, 3100.0), u(2, 3500.0)];
    let u2 = vec![u(2, 3500.0)];
    let a1 = transduce(&c1, CeId::new(1), &u1);
    let a2 = transduce(&c1, CeId::new(2), &u2);
    // Alert 2 from CE2 arrives before both of CE1's alerts.
    let arrivals: Vec<Alert> = a2.iter().chain(a1.iter()).cloned().collect();
    let shown = apply_filter(&mut Ad1::new(), &arrivals);
    // A = ⟨2, 1⟩ (the late 2 is an exact duplicate).
    let seqs: Vec<u64> = shown.iter().map(|a| a.seqno(x()).unwrap().get()).collect();
    assert_eq!(seqs, vec![2, 1]);
    assert!(!check_ordered(&shown, &[x()]).ok);
    assert!(check_complete_single(&c1, &[u1, u2], &shown).ok);
}

/// Theorem 3's counterexample: conservative + lossy is consistent but
/// neither ordered nor complete.
#[test]
fn theorem_3_incomplete_counterexample() {
    let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
    let u1 = vec![u(1, 1000.0), u(2, 1500.0)];
    let u2 = vec![u(3, 2000.0), u(4, 2500.0)];
    let a1 = transduce(&c3, CeId::new(1), &u1);
    let a2 = transduce(&c3, CeId::new(2), &u2);
    assert_eq!(a1.len(), 1); // alert@2
    assert_eq!(a2.len(), 1); // alert@4
                             // Arrival order a@4 then a@2 → A = ⟨4, 2⟩.
    let arrivals: Vec<Alert> = a2.iter().chain(a1.iter()).cloned().collect();
    let shown = apply_filter(&mut Ad1::new(), &arrivals);
    assert!(!check_ordered(&shown, &[x()]).ok);
    let comp = check_complete_single(&c3, &[u1.clone(), u2.clone()], &shown);
    assert!(!comp.ok);
    // T(U1 ⊔ U2) = ⟨2, 3, 4⟩: the alert at 3 is missing.
    assert!(comp.missing.iter().any(|a| a.seqno(x()) == Some(SeqNo::new(3))));
    assert!(check_consistent_single(&c3, &[u1, u2], &shown).ok);
}

/// Theorem 4's counterexample: aggressive + lossy is inconsistent.
#[test]
fn theorem_4_inconsistent_counterexample() {
    let c2 = DeltaRise::new(x(), 200.0);
    let uu = vec![u(1, 400.0), u(2, 700.0), u(3, 720.0)];
    let u1 = uu.clone();
    let u2 = vec![uu[0], uu[2]];
    let a1 = transduce(&c2, CeId::new(1), &u1);
    let a2 = transduce(&c2, CeId::new(2), &u2);
    assert_eq!(a1.len(), 1); // alert@2: 700-400 = 300
    assert_eq!(a2.len(), 1); // alert@3: 720-400 = 320 (aggressive)
    let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
    let shown = apply_filter(&mut Ad1::new(), &arrivals);
    assert_eq!(shown.len(), 2);
    let cons = check_consistent_single(&c2, &[u1, u2], &shown);
    assert!(!cons.ok);
    // The brute-force oracle agrees: no U' explains both alerts.
    assert!(!rcm::props::brute::brute_consistent_single(
        &c2,
        &[uu.clone(), vec![uu[0], uu[2]]],
        &shown
    ));
}

/// Theorem 5/6 (Example 2): AD-2 enforces orderedness at the price of
/// completeness, and AD-1 strictly dominates it.
#[test]
fn theorem_6_ad1_strictly_dominates_ad2() {
    let c1 = Threshold::new(x(), Cmp::Gt, 3000.0);
    let u1 = vec![u(1, 3100.0)];
    let u2 = vec![u(2, 3200.0)];
    let a1 = transduce(&c1, CeId::new(1), &u1);
    let a2 = transduce(&c1, CeId::new(2), &u2);
    let arrivals: Vec<Alert> = a2.iter().chain(a1.iter()).cloned().collect();
    let report = rcm::props::domination::check_domination(Ad1::new, || Ad2::new(x()), &[arrivals]);
    assert!(report.holds);
    assert!(report.strict);
}

/// Theorem 10's counterexample, end to end.
#[test]
fn theorem_10_multi_var_counterexample() {
    let cm = AbsDifference::new(x(), y(), 100.0);
    let ux = |s, v| Update::new(x(), s, v);
    let uy = |s, v| Update::new(y(), s, v);
    let u1 = vec![ux(1, 1000.0), ux(2, 1200.0), uy(1, 1050.0), uy(2, 1150.0)];
    let u2 = vec![uy(1, 1050.0), uy(2, 1150.0), ux(1, 1000.0), ux(2, 1200.0)];
    let a1 = transduce(&cm, CeId::new(1), &u1);
    let a2 = transduce(&cm, CeId::new(2), &u2);
    let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();

    // AD-1: both alerts pass — unordered, inconsistent, incomplete.
    let shown = apply_filter(&mut Ad1::new(), &arrivals);
    assert_eq!(shown.len(), 2);
    assert!(!check_ordered(&shown, &[x(), y()]).ok);
    assert!(!check_consistent_multi(&cm, &[u1.clone(), u2.clone()], &shown).ok);
    assert!(!check_complete_multi(&cm, &[u1.clone(), u2.clone()], &shown).ok);
    assert!(!rcm::props::brute::brute_consistent_multi(&cm, &[u1.clone(), u2.clone()], &shown));

    // AD-5 drops the second alert and restores order + consistency.
    let shown5 = apply_filter(&mut Ad5::new([x(), y()]), &arrivals);
    assert_eq!(shown5.len(), 1);
    assert!(check_ordered(&shown5, &[x(), y()]).ok);
    assert!(check_consistent_multi(&cm, &[u1, u2], &shown5).ok);
}

/// The empty-filter observation from §4.1: dropping everything is
/// trivially ordered and consistent — which is why domination matters.
#[test]
fn drop_all_is_trivially_correct_and_dominated() {
    use rcm::core::ad::DropAll;
    let c2 = DeltaRise::new(x(), 200.0);
    let uu = vec![u(1, 400.0), u(2, 700.0), u(3, 720.0)];
    let a = transduce(&c2, CeId::new(1), &uu);
    let arrivals: Vec<Alert> = a.clone();
    let shown = apply_filter(&mut DropAll::new(), &arrivals);
    assert!(shown.is_empty());
    assert!(check_ordered(&shown, &[x()]).ok);
    assert!(check_consistent_single(&c2, &[uu], &shown).ok);
    let report = rcm::props::domination::check_domination(Ad1::new, DropAll::new, &[arrivals]);
    assert!(report.holds && report.strict);
}
