//! Integration tests driving the Monte-Carlo harness: every √ cell of
//! the paper's tables must show zero violations, and every ✗ cell must
//! produce a replayable counterexample within the run budget.
//!
//! √ cells are judged on the base run budget alone — they assert a
//! guarantee, so the fixed seeds either uphold it or expose a real bug.
//! ✗ cells are a *statistical search* for a counterexample; when the
//! base budget comes up empty the search escalates through up to three
//! extra seed batches (4× total budget) before declaring the paper's
//! claim unreproduced.

use rcm::sim::montecarlo::{
    evaluate_cell, paper_expected, FilterKind, PropertyCounts, ScenarioKind, Topology,
};

const SEED: u64 = 0x5eed;

/// Stride between escalation batches, chosen to decorrelate the batch
/// base seeds from the per-run seed sequence within a batch.
const BATCH_STRIDE: u64 = 0xa5a5_5a5a_0f0f_f0f1;

/// Extra batches an ✗-cell search may spend after the base budget.
///
/// The PR gate runs with this default (up to 4x the base budget); the
/// nightly workflow overrides it through `RCM_XCELL_EXTRA_BATCHES` to
/// spend a 4x-wider seed search off the PR-gate clock.
const MAX_EXTRA_BATCHES: u64 = 3;

fn max_extra_batches() -> u64 {
    std::env::var("RCM_XCELL_EXTRA_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MAX_EXTRA_BATCHES)
}

fn merge(a: PropertyCounts, b: PropertyCounts) -> PropertyCounts {
    PropertyCounts {
        runs: a.runs + b.runs,
        unordered: a.unordered + b.unordered,
        incomplete: a.incomplete + b.incomplete,
        inconsistent: a.inconsistent + b.inconsistent,
        first_unordered_seed: a.first_unordered_seed.or(b.first_unordered_seed),
        first_incomplete_seed: a.first_incomplete_seed.or(b.first_incomplete_seed),
        first_inconsistent_seed: a.first_inconsistent_seed.or(b.first_inconsistent_seed),
    }
}

/// True while some property the paper claims violable has no witness.
fn missing_witness(claimed: [bool; 3], counts: &PropertyCounts) -> bool {
    let found = [counts.unordered, counts.incomplete, counts.inconsistent];
    claimed.iter().zip(found).any(|(&guaranteed, violations)| !guaranteed && violations == 0)
}

fn check_table(topo: Topology, filter: FilterKind, runs: u64) {
    let expected = paper_expected(topo, filter).expect("table defined for this pair");
    for (row, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let base_seed = SEED ^ (row as u64) << 32;
        let base = evaluate_cell(kind, topo, filter, runs, base_seed);
        let mut merged = base;
        for extra in 1..=max_extra_batches() {
            if !missing_witness(expected[row], &merged) {
                break;
            }
            let batch_seed = base_seed.wrapping_add(extra.wrapping_mul(BATCH_STRIDE));
            merged = merge(merged, evaluate_cell(kind, topo, filter, runs, batch_seed));
        }
        let cells = [
            ("ordered", expected[row][0], base.unordered, merged.unordered),
            ("complete", expected[row][1], base.incomplete, merged.incomplete),
            ("consistent", expected[row][2], base.inconsistent, merged.inconsistent),
        ];
        for (prop, claimed, base_violations, total_violations) in cells {
            if claimed {
                // Judged on the base batch only: escalation runs exist
                // to find ✗ witnesses, not to move the √ goalposts.
                assert_eq!(
                    base_violations, 0,
                    "{filter:?}/{kind:?}: paper claims {prop} is guaranteed, \
                     found {base_violations} violations ({base:?})"
                );
            } else {
                assert!(
                    total_violations > 0,
                    "{filter:?}/{kind:?}: paper claims {prop} can be violated, \
                     but {} runs found none",
                    merged.runs
                );
            }
        }
    }
}

#[test]
fn table_1_single_var_ad1_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad1, 120);
}

#[test]
fn table_2_single_var_ad2_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad2, 120);
}

#[test]
fn table_1_variant_ad3_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad3, 120);
}

#[test]
fn table_2_variant_ad4_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad4, 120);
}

#[test]
fn theorem_10_multi_var_ad1_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad1, 60);
}

#[test]
fn table_3_multi_var_ad5_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad5, 60);
}

#[test]
fn table_3_variant_ad6_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad6, 60);
}

/// Violating runs must be replayable from the reported seed.
#[test]
fn violation_seeds_replay() {
    use rcm::core::ad::apply_filter;
    use rcm::props::check_consistent_single;
    use rcm::sim::montecarlo::build_scenario;
    use rcm::sim::run;

    // Same escalation discipline as the ✗ cells: keep widening the
    // seed search until aggressive lossy AD-1 goes inconsistent.
    let mut seed = None;
    for extra in 0..=max_extra_batches() {
        let batch_seed = SEED.wrapping_add(extra.wrapping_mul(BATCH_STRIDE));
        let counts: PropertyCounts = evaluate_cell(
            ScenarioKind::LossyAggressive,
            Topology::SingleVar,
            FilterKind::Ad1,
            60,
            batch_seed,
        );
        seed = counts.first_inconsistent_seed;
        if seed.is_some() {
            break;
        }
    }
    let seed = seed.expect("aggressive AD-1 must go inconsistent");
    let scenario = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, seed);
    let condition = scenario.condition.clone();
    let vars = condition.variables();
    let result = run(scenario);
    let mut filter = FilterKind::Ad1.build(&vars);
    let shown = apply_filter(&mut *filter, &result.arrivals);
    let cons = check_consistent_single(&condition, &result.inputs, &shown);
    assert!(!cons.ok, "replaying the reported seed must reproduce the violation");
}
