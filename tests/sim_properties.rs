//! Integration tests driving the Monte-Carlo harness: every √ cell of
//! the paper's tables must show zero violations, and every ✗ cell must
//! produce a replayable counterexample within the run budget.

use rcm::sim::montecarlo::{
    evaluate_cell, paper_expected, FilterKind, PropertyCounts, ScenarioKind, Topology,
};

const SEED: u64 = 0x5eed;

fn check_table(topo: Topology, filter: FilterKind, runs: u64) {
    let expected = paper_expected(topo, filter).expect("table defined for this pair");
    for (row, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let counts = evaluate_cell(kind, topo, filter, runs, SEED ^ (row as u64) << 32);
        let cells = [
            ("ordered", expected[row][0], counts.unordered),
            ("complete", expected[row][1], counts.incomplete),
            ("consistent", expected[row][2], counts.inconsistent),
        ];
        for (prop, claimed, violations) in cells {
            if claimed {
                assert_eq!(
                    violations, 0,
                    "{filter:?}/{kind:?}: paper claims {prop} is guaranteed, \
                     found {violations} violations ({counts:?})"
                );
            } else {
                assert!(
                    violations > 0,
                    "{filter:?}/{kind:?}: paper claims {prop} can be violated, \
                     but {runs} runs found none"
                );
            }
        }
    }
}

#[test]
fn table_1_single_var_ad1_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad1, 120);
}

#[test]
fn table_2_single_var_ad2_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad2, 120);
}

#[test]
fn table_1_variant_ad3_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad3, 120);
}

#[test]
fn table_2_variant_ad4_matches_paper() {
    check_table(Topology::SingleVar, FilterKind::Ad4, 120);
}

#[test]
fn theorem_10_multi_var_ad1_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad1, 60);
}

#[test]
fn table_3_multi_var_ad5_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad5, 60);
}

#[test]
fn table_3_variant_ad6_matches_paper() {
    check_table(Topology::MultiVar, FilterKind::Ad6, 60);
}

/// Violating runs must be replayable from the reported seed.
#[test]
fn violation_seeds_replay() {
    use rcm::core::ad::apply_filter;
    use rcm::props::check_consistent_single;
    use rcm::sim::montecarlo::build_scenario;
    use rcm::sim::run;

    let counts: PropertyCounts = evaluate_cell(
        ScenarioKind::LossyAggressive,
        Topology::SingleVar,
        FilterKind::Ad1,
        60,
        SEED,
    );
    let seed = counts.first_inconsistent_seed.expect("aggressive AD-1 must go inconsistent");
    let scenario = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, seed);
    let condition = scenario.condition.clone();
    let vars = condition.variables();
    let result = run(scenario);
    let mut filter = FilterKind::Ad1.build(&vars);
    let shown = apply_filter(&mut *filter, &result.arrivals);
    let cons = check_consistent_single(&condition, &result.inputs, &shown);
    assert!(!cons.ok, "replaying the reported seed must reproduce the violation");
}
