//! The analyzer's AST: exactly the shapes the passes reason about.
//!
//! This is deliberately *not* a full Rust AST. Items carry their
//! attribute-derived scope facts (`#[cfg(test)]`-ness), `use` items
//! carry their expanded use-tree paths, and expressions keep the
//! nesting structure the analyses need — call/method-call chains,
//! blocks, `unsafe`, indexing, binary operators — while types,
//! patterns and generics are resolved down to the few facts that
//! matter (bound names, cfg flags) and otherwise skipped.

use crate::lexer::Token;

/// A parsed source file.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
    /// Number of spans the parser had to skip over because they fell
    /// outside the supported grammar. Non-zero gaps mean the analyses
    /// were incomplete for this file — `analyze` reports them.
    pub gaps: usize,
    /// Source line where each skipped span began, for diagnostics.
    pub gap_lines: Vec<usize>,
}

/// One item. `cfg_test` is true when any attribute on the item (or an
/// enclosing item — the parser propagates) makes it test-only:
/// `#[cfg(test)]`, `#[cfg(all(test, not(loom)))]`, `#[test]`, …
#[derive(Debug)]
pub enum Item {
    /// `use` declaration, expanded to one full path per leaf of the
    /// use-tree (globs end in `::*`, aliases keep the source path).
    Use { paths: Vec<String>, line: usize },
    /// `mod name { … }` (inline) or `mod name;` (file — no body here).
    Mod { name: String, items: Option<Vec<Item>>, cfg_test: bool, line: usize },
    /// A function with its body (absent for trait method declarations).
    Fn { name: String, body: Option<Block>, cfg_test: bool, is_unsafe: bool, line: usize },
    /// `impl … { items }` / `trait … { items }` — only the associated
    /// items matter to the passes.
    ItemGroup { items: Vec<Item>, cfg_test: bool, line: usize },
    /// `const`/`static` with a parsed initializer expression.
    ConstLike { name: String, init: Option<Expr>, cfg_test: bool, line: usize },
    /// Everything else (struct/enum/type/extern/macro definitions):
    /// parsed past, no analysis surface.
    Opaque { cfg_test: bool, line: usize },
}

/// `{ stmt* }`.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: usize,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat (= init)? (else block)?;` — `names` are the identifiers
    /// bound by the pattern (used for lock-guard and channel-endpoint
    /// tracking).
    Let {
        names: Vec<String>,
        init: Option<Expr>,
        else_block: Option<Block>,
        line: usize,
    },
    Item(Item),
    Expr(Expr),
}

/// An expression, pruned to the analyzer's interest set.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (turbofish stripped).
    Path {
        segs: Vec<String>,
        line: usize,
    },
    /// Any literal token (number, string, char, bool keywords are
    /// parsed as paths).
    Lit {
        text: String,
        line: usize,
    },
    /// `recv.name(args…)`.
    MethodCall {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
        line: usize,
    },
    /// `callee(args…)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: usize,
    },
    /// `recv.name` (field access; tuple indices come through as names).
    Field {
        recv: Box<Expr>,
        name: String,
        line: usize,
    },
    /// `recv[index]`.
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
        line: usize,
    },
    /// `lhs op rhs` for every binary operator the lexer fuses or the
    /// parser folds (`/`, `%`, `==`, `&&`, `=`, `+=`, ranges, …).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: usize,
    },
    /// Prefix `&`/`&mut`/`*`/`!`/`-`.
    Unary {
        expr: Box<Expr>,
        line: usize,
    },
    Block(Block),
    /// `unsafe { … }`.
    Unsafe {
        block: Block,
        line: usize,
    },
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
        line: usize,
    },
    /// Match with arm bodies (guards are parsed and included as
    /// expressions too, patterns are not represented).
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
        line: usize,
    },
    While {
        cond: Box<Expr>,
        body: Block,
        line: usize,
    },
    Loop {
        body: Block,
        line: usize,
    },
    For {
        iter: Box<Expr>,
        body: Block,
        line: usize,
    },
    /// `|args| body` / `move || body`.
    Closure {
        body: Box<Expr>,
        line: usize,
    },
    /// `path!(…)` — `parts` are the expressions the soup-parser could
    /// recover from the macro's token tree (best effort, never empty
    /// of genuinely expression-shaped content).
    Macro {
        segs: Vec<String>,
        parts: Vec<Expr>,
        line: usize,
    },
    Tuple {
        items: Vec<Expr>,
        line: usize,
    },
    Array {
        items: Vec<Expr>,
        line: usize,
    },
    /// `return e?` / `break e?` — the carried value, if any.
    Jump {
        value: Option<Box<Expr>>,
        line: usize,
    },
    /// `expr?`.
    Try {
        expr: Box<Expr>,
        line: usize,
    },
    /// `expr as Type` — `ty` is the compact token text of the type.
    Cast {
        expr: Box<Expr>,
        ty: String,
        line: usize,
    },
    /// `Path { field: expr, .. }` struct literal — field values only.
    StructLit {
        path: Vec<String>,
        fields: Vec<Expr>,
        line: usize,
    },
    /// A span the expression parser could not shape; the raw tokens
    /// are preserved so token-level passes (unsafe audit) lose nothing.
    Raw {
        tokens: Vec<Token>,
        line: usize,
    },
}

impl Expr {
    /// The line this expression starts on.
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Call { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Unsafe { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Jump { line, .. }
            | Expr::Try { line, .. }
            | Expr::Cast { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Raw { line, .. } => *line,
            Expr::Block(b) => b.line,
        }
    }

    /// Renders the expression back to compact source-ish text — used
    /// for topology capacities and spawn targets. Lossy by design.
    pub fn render(&self) -> String {
        match self {
            Expr::Path { segs, .. } => segs.join("::"),
            Expr::Lit { text, .. } => text.clone(),
            Expr::MethodCall { recv, name, args, .. } => {
                let args: Vec<String> = args.iter().map(Expr::render).collect();
                format!("{}.{}({})", recv.render(), name, args.join(", "))
            }
            Expr::Call { callee, args, .. } => {
                let args: Vec<String> = args.iter().map(Expr::render).collect();
                format!("{}({})", callee.render(), args.join(", "))
            }
            Expr::Field { recv, name, .. } => format!("{}.{}", recv.render(), name),
            Expr::Index { recv, index, .. } => format!("{}[{}]", recv.render(), index.render()),
            Expr::Binary { op, lhs, rhs, .. } => {
                format!("{} {} {}", lhs.render(), op, rhs.render())
            }
            Expr::Unary { expr, .. } => expr.render(),
            Expr::Try { expr, .. } => format!("{}?", expr.render()),
            Expr::Cast { expr, .. } => expr.render(),
            Expr::Closure { .. } => "closure".to_string(),
            Expr::Macro { segs, .. } => format!("{}!(…)", segs.join("::")),
            _ => "…".to_string(),
        }
    }
}

/// Depth-first walk over every expression reachable from `expr`,
/// including the bodies of nested blocks, closures, arms and macro
/// parts — but *not* descending into nested items (a nested `fn` is
/// its own analysis scope). The callback sees parents before children.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            walk_expr(expr, f);
        }
        Expr::Block(b) | Expr::Unsafe { block: b, .. } | Expr::Loop { body: b, .. } => {
            walk_block(b, f);
        }
        Expr::If { cond, then, els, .. } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::Match { scrutinee, arms, .. } => {
            walk_expr(scrutinee, f);
            for a in arms {
                walk_expr(a, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Macro { parts, .. } => {
            for p in parts {
                walk_expr(p, f);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                walk_expr(i, f);
            }
        }
        Expr::Jump { value: Some(v), .. } => walk_expr(v, f),
        Expr::StructLit { fields, .. } => {
            for v in fields {
                walk_expr(v, f);
            }
        }
        Expr::Path { .. }
        | Expr::Lit { .. }
        | Expr::Jump { value: None, .. }
        | Expr::Raw { .. } => {}
    }
}

/// Walks every expression in a block (skipping nested items).
pub fn walk_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Visits every function body in the item tree with its effective
/// `cfg_test` flag and the nesting path of item names.
pub fn visit_fns<'a>(
    items: &'a [Item],
    in_test: bool,
    path: &mut Vec<String>,
    f: &mut impl FnMut(&[String], &'a str, &'a Block, bool),
) {
    for item in items {
        match item {
            Item::Fn { name, body: Some(body), cfg_test, .. } => {
                f(path, name, body, in_test || *cfg_test);
                // Items declared directly in the body (nested fns,
                // test-helper structs with methods) are scopes too.
                path.push(name.clone());
                for stmt in &body.stmts {
                    if let Stmt::Item(item) = stmt {
                        visit_fns(std::slice::from_ref(item), in_test || *cfg_test, path, f);
                    }
                }
                path.pop();
            }
            Item::Mod { name, items: Some(items), cfg_test, .. } => {
                path.push(name.clone());
                visit_fns(items, in_test || *cfg_test, path, f);
                path.pop();
            }
            Item::ItemGroup { items, cfg_test, .. } => {
                visit_fns(items, in_test || *cfg_test, path, f);
            }
            _ => {}
        }
    }
}

/// Visits every `use` item in the tree with its effective test flag.
pub fn visit_uses<'a>(
    items: &'a [Item],
    in_test: bool,
    f: &mut impl FnMut(&'a [String], usize, bool),
) {
    for item in items {
        match item {
            Item::Use { paths, line } => f(paths, *line, in_test),
            Item::Mod { items: Some(items), cfg_test, .. } => {
                visit_uses(items, in_test || *cfg_test, f);
            }
            Item::ItemGroup { items, cfg_test, .. } => visit_uses(items, in_test || *cfg_test, f),
            Item::Fn { body: Some(body), cfg_test, .. } => {
                for stmt in &body.stmts {
                    if let Stmt::Item(item) = stmt {
                        visit_uses(std::slice::from_ref(item), in_test || *cfg_test, f);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Visits every `const`/`static` initializer with its test flag.
pub fn visit_consts<'a>(items: &'a [Item], in_test: bool, f: &mut impl FnMut(&'a Expr, bool)) {
    for item in items {
        match item {
            Item::ConstLike { init: Some(init), cfg_test, .. } => f(init, in_test || *cfg_test),
            Item::Mod { items: Some(items), cfg_test, .. } => {
                visit_consts(items, in_test || *cfg_test, f);
            }
            Item::ItemGroup { items, cfg_test, .. } => {
                visit_consts(items, in_test || *cfg_test, f);
            }
            _ => {}
        }
    }
}
