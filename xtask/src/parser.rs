//! A recursive-descent item/expression parser for the subset of Rust
//! this workspace uses.
//!
//! Design goals, in priority order:
//!
//! 1. **Never panic, always terminate** — the parser runs on every
//!    file in the tree *and* on fuzz soup; every loop provably
//!    consumes tokens and every failure path recovers at the next
//!    statement/item boundary (counted in [`File::gaps`]).
//! 2. **Exact scopes** — `#[cfg(test)]`-ness (including
//!    `cfg(all(test, not(loom)))` and `cfg_attr`), `unsafe` blocks,
//!    use-trees and function bodies are represented faithfully, which
//!    is what lets the passes stop being text heuristics.
//! 3. **Prune aggressively** — types, generics and patterns are
//!    *consumed* precisely (angle-depth aware) but only surface the
//!    facts the passes use (bound names, body start).
//!
//! Macro invocations are handled with a "soup" sub-parse: the token
//! tree is captured and re-parsed for any expression-shaped content,
//! so `assert_eq!(x.lock().y, …)` still yields the method calls the
//! lock-order pass needs.

use crate::ast::{Block, Expr, File, Item, Stmt};
use crate::lexer::{Lexed, Token, TokenKind};

/// Parses a lexed file. Infallible by construction — syntax the
/// grammar does not cover is skipped and counted in [`File::gaps`].
pub fn parse(lexed: &Lexed) -> File {
    let mut p = Parser { t: &lexed.tokens, i: 0, gaps: 0, gap_lines: Vec::new(), depth: 0 };
    let items = p.items_until(None);
    File { items, gaps: p.gaps, gap_lines: p.gap_lines }
}

/// Convenience: lex + parse in one step.
pub fn parse_source(src: &str) -> File {
    parse(&crate::lexer::lex(src))
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    gaps: usize,
    gap_lines: Vec<usize>,
    /// Brace-nesting depth (blocks and item groups). Expressions carry
    /// their own `nest` budget, but every statement resets it to zero,
    /// so without this counter `{{{…` recurses once per brace.
    depth: usize,
}

/// Blocks nested deeper than this are skipped opaquely (recorded as a
/// gap) so that pathological input terminates instead of overflowing
/// the stack. Real code in this workspace nests fewer than 20 deep.
const MAX_BLOCK_DEPTH: usize = 64;

/// Item-start keywords, used to dispatch statements to [`Parser::item`].
const ITEM_KEYWORDS: &[&str] = &[
    "use",
    "mod",
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "const",
    "static",
    "type",
    "extern",
    "macro_rules",
    "pub",
];

impl<'a> Parser<'a> {
    // ---- token cursor ----------------------------------------------

    fn peek(&self) -> Option<&'a Token> {
        self.t.get(self.i)
    }

    fn peek_at(&self, k: usize) -> Option<&'a Token> {
        self.t.get(self.i + k)
    }

    fn line(&self) -> usize {
        self.peek().map_or_else(|| self.t.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let tok = self.t.get(self.i);
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn ident_at(&self, k: usize) -> Option<&'a str> {
        self.peek_at(k).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    fn punct_at(&self, k: usize) -> Option<&'a str> {
        self.peek_at(k).filter(|t| t.kind == TokenKind::Punct).map(|t| t.text.as_str())
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Skips a balanced delimiter run starting at the current `(`,
    /// `[` or `{`. Returns the token range skipped (exclusive of the
    /// delimiters). Tolerates EOF.
    fn skip_balanced(&mut self) -> (usize, usize) {
        let mut depth = 0usize;
        let start = self.i + 1;
        while let Some(tok) = self.peek() {
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            let end = self.i;
                            self.i += 1;
                            return (start, end);
                        }
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Error recovery: skip to just past the next `;` at depth 0, or
    /// stop before a `}` that would close the enclosing block. Always
    /// consumes at least one token (unless at EOF or a closer).
    fn recover(&mut self) {
        self.gaps += 1;
        if let Some(tok) = self.peek() {
            self.gap_lines.push(tok.line);
        }
        let mut depth = 0usize;
        let mut consumed = false;
        while let Some(tok) = self.peek() {
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            if !consumed {
                                self.i += 1; // stray closer: consume it
                            }
                            return;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => {
                        self.i += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.i += 1;
            consumed = true;
        }
    }

    // ---- attributes -------------------------------------------------

    /// Consumes `#[…]` / `#![…]` runs; returns whether any attribute
    /// marks the item test-only.
    fn attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.at_punct("#") {
            self.i += 1;
            self.eat_punct("!");
            if self.at_punct("[") {
                let (lo, hi) = self.skip_balanced();
                if attr_is_test(&self.t[lo.min(self.t.len())..hi.min(self.t.len())]) {
                    cfg_test = true;
                }
            }
        }
        cfg_test
    }

    // ---- items ------------------------------------------------------

    /// Parses a braced item group (`mod m { … }`, `impl … { … }`); the
    /// cursor must be at the opening brace. Depth-capped like
    /// [`Parser::block`] so `mod m { mod m { …` terminates.
    fn braced_items(&mut self) -> Vec<Item> {
        if self.depth >= MAX_BLOCK_DEPTH {
            self.gaps += 1;
            self.gap_lines.push(self.line());
            self.skip_balanced();
            return Vec::new();
        }
        self.depth += 1;
        self.i += 1;
        let items = self.items_until(Some(()));
        self.depth -= 1;
        items
    }

    /// Parses items until EOF (`closer: None`) or the closing `}` of
    /// an item group (`closer: Some(())` — the brace is consumed).
    fn items_until(&mut self, closer: Option<()>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.peek().is_none() {
                return items;
            }
            if closer.is_some() && self.at_punct("}") {
                self.i += 1;
                return items;
            }
            let before = self.i;
            match self.item() {
                Some(item) => items.push(item),
                None => {
                    self.recover();
                    if self.i == before {
                        // No progress possible (EOF or stray closer
                        // when parsing at top level): drop the token.
                        if self.bump().is_none() {
                            return items;
                        }
                    }
                }
            }
        }
    }

    fn item(&mut self) -> Option<Item> {
        let start = self.i;
        let cfg_test = self.attrs();
        let line = self.line();
        if self.peek().is_none() && self.i > start {
            // File-trailing (inner) attributes: an item-less but valid
            // tail, e.g. a file of nothing but `#![deny(unsafe_code)]`.
            return Some(Item::Opaque { cfg_test, line });
        }
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced();
        }
        let mut is_unsafe = false;
        // Qualifier soup: `const fn`, `unsafe fn`, `extern "C" fn`, …
        loop {
            if self.at_ident("unsafe") {
                is_unsafe = true;
                self.i += 1;
            } else if self.at_ident("const")
                && matches!(self.ident_at(1), Some("fn") | Some("unsafe") | Some("extern"))
            {
                self.i += 1;
            } else if self.at_ident("extern")
                && self.peek_at(1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.ident_at(2) == Some("fn")
            {
                self.i += 2;
            } else {
                break;
            }
        }
        let kw = self.peek()?;
        if kw.kind != TokenKind::Ident {
            return None;
        }
        match kw.text.as_str() {
            "use" => {
                self.i += 1;
                let mut paths = Vec::new();
                self.use_tree(String::new(), &mut paths, 0);
                self.eat_punct(";");
                Some(Item::Use { paths, line })
            }
            "mod" => {
                self.i += 1;
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                if self.eat_punct(";") {
                    Some(Item::Mod { name, items: None, cfg_test, line })
                } else if self.at_punct("{") {
                    let items = self.braced_items();
                    Some(Item::Mod { name, items: Some(items), cfg_test, line })
                } else {
                    None
                }
            }
            "fn" => {
                self.i += 1;
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                match self.skip_signature_to_body() {
                    SigEnd::Body => {
                        let body = self.block()?;
                        Some(Item::Fn { name, body: Some(body), cfg_test, is_unsafe, line })
                    }
                    SigEnd::Semi => Some(Item::Fn { name, body: None, cfg_test, is_unsafe, line }),
                    SigEnd::Eof => None,
                }
            }
            "impl" | "trait" => {
                self.i += 1;
                match self.skip_signature_to_body() {
                    SigEnd::Body => {
                        // Re-enter at the `{` we stopped on.
                        let items = self.braced_items();
                        Some(Item::ItemGroup { items, cfg_test, line })
                    }
                    _ => Some(Item::Opaque { cfg_test, line }),
                }
            }
            "struct" | "enum" | "union" => {
                self.i += 1;
                self.bump(); // name
                match self.skip_signature_to_body() {
                    SigEnd::Body => {
                        self.i += 1;
                        // Consume the body as a balanced run; struct
                        // bodies hold no analyzable expressions.
                        let mut depth = 1usize;
                        while depth > 0 {
                            match self.bump() {
                                Some(t) if t.kind == TokenKind::Punct => match t.text.as_str() {
                                    "{" | "(" | "[" => depth += 1,
                                    "}" | ")" | "]" => depth -= 1,
                                    _ => {}
                                },
                                Some(_) => {}
                                None => break,
                            }
                        }
                        Some(Item::Opaque { cfg_test, line })
                    }
                    _ => Some(Item::Opaque { cfg_test, line }),
                }
            }
            "const" | "static" => {
                self.i += 1;
                self.eat_ident("mut");
                let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                // Skip `: Type` to the top-level `=` (angle-aware).
                let mut angle = 0usize;
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        None => return Some(Item::ConstLike { name, init: None, cfg_test, line }),
                        Some(t) if t.kind == TokenKind::Punct => match t.text.as_str() {
                            "<" => {
                                angle += 1;
                                self.i += 1;
                            }
                            ">" => {
                                angle = angle.saturating_sub(1);
                                self.i += 1;
                            }
                            "(" | "[" | "{" => {
                                depth += 1;
                                self.i += 1;
                            }
                            ")" | "]" | "}" => {
                                depth = depth.saturating_sub(1);
                                self.i += 1;
                            }
                            "=" if angle == 0 && depth == 0 => {
                                self.i += 1;
                                break;
                            }
                            ";" if angle == 0 && depth == 0 => {
                                self.i += 1;
                                return Some(Item::ConstLike { name, init: None, cfg_test, line });
                            }
                            _ => self.i += 1,
                        },
                        Some(_) => self.i += 1,
                    }
                }
                let init = self.expr(false).ok();
                if init.is_none() {
                    self.recover();
                }
                self.eat_punct(";");
                Some(Item::ConstLike { name, init, cfg_test, line })
            }
            "type" => {
                while let Some(t) = self.peek() {
                    let done = t.kind == TokenKind::Punct && t.text == ";";
                    self.i += 1;
                    if done {
                        break;
                    }
                }
                Some(Item::Opaque { cfg_test, line })
            }
            "extern" => {
                self.i += 1;
                if self.eat_ident("crate") {
                    while let Some(t) = self.bump() {
                        if t.kind == TokenKind::Punct && t.text == ";" {
                            break;
                        }
                    }
                    return Some(Item::Opaque { cfg_test, line });
                }
                if self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                    self.i += 1;
                }
                if self.at_punct("{") {
                    self.skip_balanced();
                    return Some(Item::Opaque { cfg_test, line });
                }
                None
            }
            "macro_rules" => {
                self.i += 1;
                self.eat_punct("!");
                self.bump(); // name
                if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                    self.skip_balanced();
                    self.eat_punct(";");
                }
                Some(Item::Opaque { cfg_test, line })
            }
            // Top-level macro invocation (`thread_local! { … }`).
            _ if self.punct_at(1) == Some("!") => {
                self.i += 2;
                if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                    self.skip_balanced();
                    self.eat_punct(";");
                    Some(Item::Opaque { cfg_test, line })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Expands a use-tree into full paths. `depth` bounds recursion on
    /// adversarial input.
    fn use_tree(&mut self, prefix: String, out: &mut Vec<String>, depth: usize) {
        if depth > 32 {
            return;
        }
        let mut path = prefix;
        loop {
            if self.at_punct("{") {
                self.i += 1;
                loop {
                    if self.at_punct("}") || self.peek().is_none() {
                        self.i = (self.i + 1).min(self.t.len());
                        return;
                    }
                    self.use_tree(path.clone(), out, depth + 1);
                    if !self.eat_punct(",") {
                        if self.at_punct("}") || self.peek().is_none() {
                            self.i = (self.i + 1).min(self.t.len());
                        }
                        return;
                    }
                }
            }
            if self.at_punct("*") {
                self.i += 1;
                out.push(if path.is_empty() { "*".into() } else { format!("{path}::*") });
                return;
            }
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    let seg = t.text.clone();
                    self.i += 1;
                    if seg == "as" {
                        self.bump(); // alias name
                        out.push(path);
                        return;
                    }
                    if seg == "self" && !path.is_empty() {
                        // leaf `self`: the prefix itself
                    } else if path.is_empty() {
                        path = seg;
                    } else {
                        path = format!("{path}::{seg}");
                    }
                    if !self.eat_punct("::") {
                        if self.eat_ident("as") {
                            self.bump();
                        }
                        out.push(path);
                        return;
                    }
                }
                _ => {
                    if !path.is_empty() {
                        out.push(path);
                    }
                    return;
                }
            }
        }
    }

    /// Skips generics/params/return-type/where-clause tokens until the
    /// body `{` (left *unconsumed* for groups, consumed context varies
    /// — see callers) or a `;`.
    fn skip_signature_to_body(&mut self) -> SigEnd {
        let mut angle = 0usize;
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = angle.saturating_sub(1),
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if angle == 0 && depth == 0 => return SigEnd::Body,
                    ";" if angle == 0 && depth == 0 => {
                        self.i += 1;
                        return SigEnd::Semi;
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
        SigEnd::Eof
    }

    // ---- statements & blocks ---------------------------------------

    /// Parses `{ … }`; the cursor must be at the opening brace.
    fn block(&mut self) -> Option<Block> {
        if !self.at_punct("{") {
            return None;
        }
        if self.depth >= MAX_BLOCK_DEPTH {
            let line = self.line();
            self.gaps += 1;
            self.gap_lines.push(line);
            self.skip_balanced();
            return Some(Block { stmts: Vec::new(), line });
        }
        self.depth += 1;
        let block = self.block_body();
        self.depth -= 1;
        Some(block)
    }

    /// The body of [`Parser::block`], after the depth guard; the
    /// cursor is still at the opening brace.
    fn block_body(&mut self) -> Block {
        let line = self.line();
        self.i += 1;
        let mut stmts = Vec::new();
        loop {
            if self.at_punct("}") {
                self.i += 1;
                return Block { stmts, line };
            }
            if self.peek().is_none() {
                return Block { stmts, line };
            }
            let before = self.i;
            match self.stmt() {
                Some(stmt) => stmts.push(stmt),
                None => {
                    self.recover();
                    if self.i == before && self.bump().is_none() {
                        return Block { stmts, line };
                    }
                }
            }
        }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        if self.eat_punct(";") {
            return self.stmt();
        }
        // Statement attributes: remember test-ness for items.
        let saved = self.i;
        let cfg_test = self.attrs();
        let line = self.line();
        if self.at_ident("let") {
            self.i += 1;
            let names = self.pattern_names(&["=", ";"], Some("else"));
            let init = if self.eat_punct("=") {
                match self.expr(false) {
                    Ok(e) => Some(e),
                    Err(()) => {
                        self.recover();
                        None
                    }
                }
            } else {
                None
            };
            let else_block = if self.eat_ident("else") { self.block() } else { None };
            self.eat_punct(";");
            return Some(Stmt::Let { names, init, else_block, line });
        }
        // Items in statement position.
        let is_item_kw = self.peek().is_some_and(|t| {
            t.kind == TokenKind::Ident
                && ITEM_KEYWORDS.contains(&t.text.as_str())
                // `const` maybe a const-block expr? (not in MSRV) — item.
                // `unsafe` is an expr unless followed by fn/impl/trait.
                && !(t.text == "extern" && self.punct_at(1) != Some("\"") )
        });
        let unsafe_item = self.at_ident("unsafe")
            && matches!(self.ident_at(1), Some("fn") | Some("impl") | Some("trait"));
        if is_item_kw || unsafe_item {
            // `cfg_test` from statement attrs applies to the item; the
            // item() call re-reads attrs (there are none left), so
            // patch the flag in afterwards.
            let item = self.item()?;
            return Some(Stmt::Item(patch_cfg(item, cfg_test)));
        }
        if self.i != saved && self.peek().is_none() {
            return None;
        }
        match self.expr(false) {
            Ok(e) => {
                self.eat_punct(";");
                Some(Stmt::Expr(e))
            }
            Err(()) => None,
        }
    }

    /// Consumes pattern tokens until one of `stops` (bare punct) or
    /// the `stop_ident` appears at delimiter depth 0; collects bound
    /// identifier names. The stop token is left unconsumed.
    fn pattern_names(&mut self, stops: &[&str], stop_ident: Option<&str>) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize;
        let mut angle = 0usize;
        while let Some(tok) = self.peek() {
            match tok.kind {
                TokenKind::Punct => match tok.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return names; // enclosing closer: stop
                        }
                        depth -= 1;
                    }
                    "<" => angle += 1,
                    ">" => angle = angle.saturating_sub(1),
                    s if depth == 0 && angle == 0 && stops.contains(&s) => return names,
                    _ => {}
                },
                TokenKind::Ident => {
                    let t = tok.text.as_str();
                    if depth == 0 && angle == 0 && stop_ident == Some(t) {
                        return names;
                    }
                    if !matches!(t, "mut" | "ref" | "box" | "_" | "dyn" | "as" | "in" | "if") {
                        // Path segments (`Some`, `Foo::Bar`) land here
                        // too — harmless for guard/endpoint tracking.
                        names.push(t.to_string());
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        names
    }

    // ---- expressions ------------------------------------------------

    /// Parses one expression. `no_struct` suppresses struct-literal
    /// interpretation of `Path { … }` (condition/scrutinee position).
    fn expr(&mut self, no_struct: bool) -> Result<Expr, ()> {
        self.expr_bounded(no_struct, 0)
    }

    fn expr_bounded(&mut self, no_struct: bool, nest: usize) -> Result<Expr, ()> {
        if nest > 96 {
            // Pathological nesting (fuzz): consume one token, bail.
            self.bump();
            return Err(());
        }
        let mut lhs = self.prefix_expr(no_struct, nest)?;
        // Binary operator fold (flat; precedence is irrelevant to the
        // analyses, association is left).
        loop {
            let Some(op) = self.peek() else { break };
            if op.kind != TokenKind::Punct {
                break;
            }
            let text = op.text.as_str();
            let is_binop = matches!(
                text,
                "+" | "-"
                    | "*"
                    | "/"
                    | "%"
                    | "^"
                    | "&"
                    | "|"
                    | "<"
                    | ">"
                    | "=="
                    | "!="
                    | "<="
                    | ">="
                    | "&&"
                    | "||"
                    | "="
                    | "+="
                    | "-="
                    | "*="
                    | "/="
                    | "%="
                    | "^="
                    | "&="
                    | "|="
            );
            let is_range = matches!(text, ".." | "..=");
            // Shifts: the lexer never fuses `<`/`>` (that would break
            // generics), so `<<`, `>>`, `<<=`, `>>=` arrive as two
            // tokens. After a complete operand they are unambiguous.
            let shift = match (text, self.peek_at(1).map(|t| t.text.as_str())) {
                ("<", Some("<")) => Some("<<"),
                (">", Some(">")) => Some(">>"),
                ("<", Some("<=")) => Some("<<="),
                (">", Some(">=")) => Some(">>="),
                _ => None,
            };
            if !is_binop && !is_range && shift.is_none() {
                break;
            }
            let line = op.line;
            let op_text = match shift {
                Some(s) => {
                    self.i += 1;
                    s.to_string()
                }
                None => op.text.clone(),
            };
            self.i += 1;
            if is_range && !self.at_expr_start() {
                // Open range `x..` — no rhs.
                lhs = Expr::Binary {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(Expr::Lit { text: String::new(), line }),
                    line,
                };
                continue;
            }
            let rhs = self.prefix_expr(no_struct, nest + 1)?;
            lhs = Expr::Binary { op: op_text, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn at_expr_start(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Ident => !matches!(t.text.as_str(), "else" | "as" | "in"),
                TokenKind::Num | TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => true,
                TokenKind::Punct => matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "&" | "&&" | "*" | "!" | "-" | "|" | "||" | ".." | "..="
                ),
            },
        }
    }

    /// Prefix operators + primary + postfix chain.
    fn prefix_expr(&mut self, no_struct: bool, nest: usize) -> Result<Expr, ()> {
        if nest > 96 {
            self.bump();
            return Err(());
        }
        let line = self.line();
        if let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "&" | "&&" | "*" | "!" | "-" => {
                        self.i += 1;
                        self.eat_ident("mut");
                        let inner = self.prefix_expr(no_struct, nest + 1)?;
                        return Ok(Expr::Unary { expr: Box::new(inner), line });
                    }
                    ".." | "..=" => {
                        self.i += 1;
                        if self.at_expr_start() {
                            let inner = self.prefix_expr(no_struct, nest + 1)?;
                            return Ok(Expr::Unary { expr: Box::new(inner), line });
                        }
                        return Ok(Expr::Lit { text: "..".into(), line });
                    }
                    _ => {}
                }
            }
        }
        let primary = self.primary(no_struct, nest)?;
        self.postfix(primary, no_struct, nest)
    }

    fn postfix(&mut self, mut expr: Expr, _no_struct: bool, nest: usize) -> Result<Expr, ()> {
        loop {
            let Some(tok) = self.peek() else { return Ok(expr) };
            match (tok.kind, tok.text.as_str()) {
                (TokenKind::Punct, ".") => {
                    let line = tok.line;
                    self.i += 1;
                    let Some(name_tok) = self.bump() else { return Ok(expr) };
                    let name = name_tok.text.clone();
                    // Optional turbofish before the call parens.
                    if self.at_punct("::") && self.punct_at(1) == Some("<") {
                        self.i += 1;
                        self.skip_angles();
                    }
                    if self.at_punct("(") {
                        let args = self.call_args(nest)?;
                        expr = Expr::MethodCall { recv: Box::new(expr), name, args, line };
                    } else {
                        expr = Expr::Field { recv: Box::new(expr), name, line };
                    }
                }
                (TokenKind::Punct, "(") => {
                    let line = tok.line;
                    let args = self.call_args(nest)?;
                    expr = Expr::Call { callee: Box::new(expr), args, line };
                }
                (TokenKind::Punct, "[") => {
                    let line = tok.line;
                    self.i += 1;
                    let index = self
                        .expr_bounded(false, nest + 1)
                        .unwrap_or(Expr::Lit { text: String::new(), line });
                    // Tolerate `[a; n]` array-ish forms in index spot.
                    while !self.at_punct("]") && self.peek().is_some() {
                        self.i += 1;
                        if self.at_punct("]") {
                            break;
                        }
                        if self.expr_bounded(false, nest + 1).is_err() {
                            break;
                        }
                    }
                    self.eat_punct("]");
                    expr = Expr::Index { recv: Box::new(expr), index: Box::new(index), line };
                }
                (TokenKind::Punct, "?") => {
                    let line = tok.line;
                    self.i += 1;
                    expr = Expr::Try { expr: Box::new(expr), line };
                }
                (TokenKind::Ident, "as") => {
                    let line = tok.line;
                    self.i += 1;
                    let ty = self.skip_type_tokens();
                    expr = Expr::Cast { expr: Box::new(expr), ty, line };
                }
                _ => return Ok(expr),
            }
        }
    }

    /// Parses `( … )` call arguments; cursor at the `(`.
    fn call_args(&mut self, nest: usize) -> Result<Vec<Expr>, ()> {
        self.i += 1; // (
        let mut args = Vec::new();
        loop {
            if self.eat_punct(")") || self.peek().is_none() {
                return Ok(args);
            }
            match self.expr_bounded(false, nest + 1) {
                Ok(e) => args.push(e),
                Err(()) => {
                    // Skip to `,` or `)` at depth 0.
                    let mut depth = 0usize;
                    while let Some(t) = self.peek() {
                        if t.kind == TokenKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" if depth == 0 => break,
                                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                                "," if depth == 0 => break,
                                _ => {}
                            }
                        }
                        self.i += 1;
                    }
                }
            }
            if !self.eat_punct(",") {
                self.eat_punct(")");
                return Ok(args);
            }
        }
    }

    fn skip_angles(&mut self) {
        // Cursor at `<`.
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    ";" | "{" | "}" => return, // not a generic list after all
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// After `as` (or a closure's `->`): consumes a type-looking token
    /// run, returning its compact text (`u64`, `f64`, `*const u8`, …).
    fn skip_type_tokens(&mut self) -> String {
        let mut ty = String::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    if matches!(t.text.as_str(), "dyn" | "mut" | "const") {
                        ty.push_str(&t.text);
                        ty.push(' ');
                        self.i += 1;
                        continue;
                    }
                    ty.push_str(&t.text);
                    self.i += 1;
                    if self.at_punct("::") {
                        ty.push_str("::");
                        self.i += 1;
                        continue;
                    }
                    if self.at_punct("<") {
                        self.skip_angles();
                        ty.push_str("<…>");
                    }
                    return ty;
                }
                Some(t)
                    if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "&" | "*" | "(") =>
                {
                    if t.text == "(" {
                        self.skip_balanced();
                        ty.push_str("(…)");
                        return ty;
                    }
                    ty.push_str(&t.text);
                    self.i += 1;
                }
                Some(t) if t.kind == TokenKind::Lifetime => self.i += 1,
                _ => return ty,
            }
        }
    }

    fn primary(&mut self, no_struct: bool, nest: usize) -> Result<Expr, ()> {
        let Some(tok) = self.peek() else { return Err(()) };
        let line = tok.line;
        match tok.kind {
            TokenKind::Num | TokenKind::Str | TokenKind::Char => {
                let text = tok.text.clone();
                self.i += 1;
                Ok(Expr::Lit { text, line })
            }
            TokenKind::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                self.i += 1;
                self.eat_punct(":");
                self.primary(no_struct, nest)
            }
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    self.i += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.eat_punct(")") || self.peek().is_none() {
                            break;
                        }
                        match self.expr_bounded(false, nest + 1) {
                            Ok(e) => items.push(e),
                            Err(()) => {
                                self.recover_inside_delims();
                                break;
                            }
                        }
                        if !self.eat_punct(",") {
                            self.eat_punct(")");
                            break;
                        }
                    }
                    if items.len() == 1 {
                        Ok(items.pop().unwrap_or(Expr::Lit { text: String::new(), line }))
                    } else {
                        Ok(Expr::Tuple { items, line })
                    }
                }
                "[" => {
                    self.i += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.eat_punct("]") || self.peek().is_none() {
                            break;
                        }
                        match self.expr_bounded(false, nest + 1) {
                            Ok(e) => items.push(e),
                            Err(()) => {
                                self.recover_inside_delims();
                                break;
                            }
                        }
                        if !self.eat_punct(",") && !self.eat_punct(";") {
                            self.eat_punct("]");
                            break;
                        }
                    }
                    Ok(Expr::Array { items, line })
                }
                "{" => self.block().map(Expr::Block).ok_or(()),
                "|" | "||" => {
                    // Closure. For `|`, skip the parameter list to the
                    // closing `|` at delimiter depth 0.
                    let double = tok.text == "||";
                    self.i += 1;
                    if !double {
                        let mut depth = 0usize;
                        while let Some(t) = self.peek() {
                            if t.kind == TokenKind::Punct {
                                match t.text.as_str() {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                                    "|" if depth == 0 => {
                                        self.i += 1;
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            self.i += 1;
                        }
                    }
                    // Optional `-> Type` before a brace body.
                    if self.eat_punct("->") {
                        self.skip_type_tokens();
                    }
                    let body = self.expr_bounded(false, nest + 1)?;
                    Ok(Expr::Closure { body: Box::new(body), line })
                }
                _ => Err(()),
            },
            TokenKind::Ident => {
                let kw = tok.text.as_str();
                match kw {
                    "if" => self.if_expr(nest),
                    "match" => self.match_expr(nest),
                    "while" => {
                        self.i += 1;
                        if self.eat_ident("let") {
                            self.pattern_names(&["="], None);
                            self.eat_punct("=");
                        }
                        let cond = self.expr_cond(nest)?;
                        let body = self.block().ok_or(())?;
                        Ok(Expr::While { cond: Box::new(cond), body, line })
                    }
                    "loop" => {
                        self.i += 1;
                        let body = self.block().ok_or(())?;
                        Ok(Expr::Loop { body, line })
                    }
                    "for" => {
                        self.i += 1;
                        self.pattern_names(&[], Some("in"));
                        if !self.eat_ident("in") {
                            return Err(());
                        }
                        let iter = self.expr_cond(nest)?;
                        let body = self.block().ok_or(())?;
                        Ok(Expr::For { iter: Box::new(iter), body, line })
                    }
                    "unsafe" => {
                        self.i += 1;
                        let block = self.block().ok_or(())?;
                        Ok(Expr::Unsafe { block, line })
                    }
                    // Inline const expression: `const { … }`.
                    "const" if self.peek_at(1).is_some_and(|t| t.text == "{") => {
                        self.i += 1;
                        let block = self.block().ok_or(())?;
                        Ok(Expr::Block(block))
                    }
                    "move" => {
                        self.i += 1;
                        // `move |…|` / `move ||`.
                        self.primary(no_struct, nest)
                    }
                    "return" | "break" | "continue" => {
                        self.i += 1;
                        if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                            self.i += 1; // `break 'label`
                        }
                        let value = if kw != "continue" && self.at_expr_start() {
                            Some(Box::new(self.expr_bounded(no_struct, nest + 1)?))
                        } else {
                            None
                        };
                        Ok(Expr::Jump { value, line })
                    }
                    _ => self.path_based(no_struct, nest, line),
                }
            }
        }
    }

    fn recover_inside_delims(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// `if` with optional `if let` and else-chains.
    fn if_expr(&mut self, nest: usize) -> Result<Expr, ()> {
        let line = self.line();
        self.i += 1; // if
        if self.eat_ident("let") {
            self.pattern_names(&["="], None);
            self.eat_punct("=");
        }
        let cond = self.expr_cond(nest)?;
        let then = self.block().ok_or(())?;
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.if_expr(nest + 1)?))
            } else {
                Some(Box::new(Expr::Block(self.block().ok_or(())?)))
            }
        } else {
            None
        };
        Ok(Expr::If { cond: Box::new(cond), then, els, line })
    }

    fn match_expr(&mut self, nest: usize) -> Result<Expr, ()> {
        let line = self.line();
        self.i += 1; // match
        let scrutinee = self.expr_cond(nest)?;
        if !self.at_punct("{") {
            return Err(());
        }
        self.i += 1;
        let mut arms = Vec::new();
        loop {
            if self.eat_punct("}") || self.peek().is_none() {
                break;
            }
            self.attrs();
            self.eat_punct("|");
            self.pattern_names(&["=>"], Some("if"));
            if self.eat_ident("if") {
                // Arm guard: a real expression — analyzed.
                if let Ok(guard) = self.expr_bounded(true, nest + 1) {
                    arms.push(guard);
                }
            }
            if !self.eat_punct("=>") {
                // Malformed arm: recover to the closing brace.
                self.recover_inside_delims();
                break;
            }
            match self.expr_bounded(false, nest + 1) {
                Ok(body) => arms.push(body),
                Err(()) => {
                    self.recover_inside_delims();
                    break;
                }
            }
            self.eat_punct(",");
        }
        Ok(Expr::Match { scrutinee: Box::new(scrutinee), arms, line })
    }

    /// Condition/scrutinee position: struct literals suppressed.
    fn expr_cond(&mut self, nest: usize) -> Result<Expr, ()> {
        self.expr_bounded(true, nest + 1)
    }

    /// Path-rooted primaries: paths, macro calls, struct literals.
    fn path_based(&mut self, no_struct: bool, nest: usize, line: usize) -> Result<Expr, ()> {
        let mut segs = Vec::new();
        self.eat_punct("::");
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    segs.push(t.text.clone());
                    self.i += 1;
                }
                _ => break,
            }
            if self.at_punct("::") {
                match self.punct_at(1) {
                    Some("<") => {
                        self.i += 1;
                        self.skip_angles();
                        if self.at_punct("::") {
                            self.i += 1;
                            continue;
                        }
                        break;
                    }
                    _ => {
                        if self.peek_at(1).is_some_and(|t| t.kind == TokenKind::Ident) {
                            self.i += 1;
                            continue;
                        }
                        break;
                    }
                }
            }
            break;
        }
        if segs.is_empty() {
            return Err(());
        }
        if self.at_punct("!") {
            // Macro invocation.
            self.i += 1;
            if self.at_punct("(") || self.at_punct("[") || self.at_punct("{") {
                let (lo, hi) = self.skip_balanced();
                let inner = &self.t[lo.min(self.t.len())..hi.min(self.t.len())];
                let parts = soup_parse(inner, nest + 1);
                return Ok(Expr::Macro { segs, parts, line });
            }
            return Ok(Expr::Macro { segs, parts: Vec::new(), line });
        }
        if !no_struct && self.at_punct("{") && self.looks_like_struct_lit() {
            self.i += 1;
            let mut fields = Vec::new();
            loop {
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                if self.eat_punct("..") {
                    // Functional update base.
                    if let Ok(base) = self.expr_bounded(false, nest + 1) {
                        fields.push(base);
                    }
                    self.eat_punct("}");
                    break;
                }
                // `name: expr` or shorthand `name`, optionally behind
                // field attributes (`#[cfg(…)] len: …`).
                self.attrs();
                self.bump();
                if self.eat_punct(":") {
                    match self.expr_bounded(false, nest + 1) {
                        Ok(v) => fields.push(v),
                        Err(()) => {
                            self.recover_inside_delims();
                            break;
                        }
                    }
                }
                if !self.eat_punct(",") {
                    self.eat_punct("}");
                    break;
                }
            }
            return Ok(Expr::StructLit { path: segs, fields, line });
        }
        Ok(Expr::Path { segs, line })
    }

    /// Heuristic: `Path {` begins a struct literal iff the brace body
    /// looks like `ident:`, `ident,`, `ident}`, `..`, or is empty —
    /// otherwise it is a trailing block (`match x` arms never reach
    /// here; `no_struct` covers conditions).
    fn looks_like_struct_lit(&self) -> bool {
        match (self.peek_at(1), self.peek_at(2)) {
            (Some(a), _) if a.kind == TokenKind::Punct && a.text == "}" => true,
            (Some(a), _) if a.kind == TokenKind::Punct && a.text == ".." => true,
            // A field attribute: `S { #[cfg(…)] len: …, … }`.
            (Some(a), _) if a.kind == TokenKind::Punct && a.text == "#" => true,
            (Some(a), Some(b)) if a.kind == TokenKind::Ident && b.kind == TokenKind::Punct => {
                matches!(b.text.as_str(), ":" | "," | "}")
            }
            _ => false,
        }
    }
}

enum SigEnd {
    Body,
    Semi,
    Eof,
}

/// Re-parses a macro token tree for expression-shaped content: parse
/// an expression at each position, skip one token on failure.
fn soup_parse(tokens: &[Token], nest: usize) -> Vec<Expr> {
    if nest > 48 {
        return Vec::new();
    }
    let mut parts = Vec::new();
    // Seeding `depth` from `nest` makes the two caps compose: blocks
    // inside nested macro soups share one bounded budget.
    let mut p = Parser { t: tokens, i: 0, gaps: 0, gap_lines: Vec::new(), depth: nest };
    while p.peek().is_some() {
        let before = p.i;
        match p.expr_bounded(false, nest) {
            Ok(e) => {
                parts.push(e);
                p.eat_punct(",");
            }
            Err(()) => {}
        }
        if p.i == before {
            p.i += 1;
        }
    }
    parts
}

/// Scans attribute tokens for an effective `test` cfg: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, not(loom)))]`, `#[cfg_attr(test,…)]`
/// — but *not* `#[cfg(not(test))]`.
fn attr_is_test(tokens: &[Token]) -> bool {
    let first = tokens.first().filter(|t| t.kind == TokenKind::Ident);
    match first.map(|t| t.text.as_str()) {
        Some("test") => tokens.len() == 1 || tokens.get(1).is_some_and(|t| t.text != "::"),
        Some("cfg") | Some("cfg_attr") => {
            // Walk with a stack of enclosing call idents; `test` counts
            // only when no enclosing call is `not`.
            let mut stack: Vec<String> = Vec::new();
            let mut last_ident: Option<&str> = None;
            for tok in &tokens[1..] {
                match tok.kind {
                    TokenKind::Ident => {
                        if tok.text == "test" && !stack.iter().any(|s| s == "not") {
                            return true;
                        }
                        last_ident = Some(&tok.text);
                    }
                    TokenKind::Punct => match tok.text.as_str() {
                        "(" => {
                            stack.push(last_ident.unwrap_or("").to_string());
                            last_ident = None;
                        }
                        ")" => {
                            stack.pop();
                        }
                        _ => last_ident = None,
                    },
                    _ => last_ident = None,
                }
            }
            false
        }
        _ => false,
    }
}

fn patch_cfg(item: Item, extra_test: bool) -> Item {
    if !extra_test {
        return item;
    }
    match item {
        Item::Mod { name, items, cfg_test: _, line } => {
            Item::Mod { name, items, cfg_test: true, line }
        }
        Item::Fn { name, body, cfg_test: _, is_unsafe, line } => {
            Item::Fn { name, body, cfg_test: true, is_unsafe, line }
        }
        Item::ItemGroup { items, cfg_test: _, line } => {
            Item::ItemGroup { items, cfg_test: true, line }
        }
        Item::ConstLike { name, init, cfg_test: _, line } => {
            Item::ConstLike { name, init, cfg_test: true, line }
        }
        Item::Opaque { cfg_test: _, line } => Item::Opaque { cfg_test: true, line },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{visit_fns, walk_block};

    fn parse_ok(src: &str) -> File {
        let file = parse_source(src);
        assert_eq!(file.gaps, 0, "unexpected parse gaps in:\n{src}");
        file
    }

    fn method_names(src: &str) -> Vec<String> {
        let file = parse_ok(src);
        let mut out = Vec::new();
        let mut path = Vec::new();
        visit_fns(&file.items, false, &mut path, &mut |_, _, body, _| {
            walk_block(body, &mut |e| {
                if let Expr::MethodCall { name, .. } = e {
                    out.push(name.clone());
                }
            });
        });
        out
    }

    #[test]
    fn use_trees_expand_to_full_paths() {
        let file = parse_ok(
            "use std::sync::{Arc, Mutex};\nuse rcm_sync::chan::{unbounded, Receiver as Rx};\nuse std::io::{self, Read};\nuse foo::bar::*;\n",
        );
        let mut paths = Vec::new();
        for item in &file.items {
            if let Item::Use { paths: p, .. } = item {
                paths.extend(p.clone());
            }
        }
        assert_eq!(
            paths,
            [
                "std::sync::Arc",
                "std::sync::Mutex",
                "rcm_sync::chan::unbounded",
                "rcm_sync::chan::Receiver",
                "std::io",
                "std::io::Read",
                "foo::bar::*"
            ]
        );
    }

    #[test]
    fn cfg_test_scopes_are_tracked_anywhere_in_the_file() {
        let src = "\
fn hot() { x.unwrap(); }
#[cfg(test)]
mod tests { fn t() { y.unwrap(); } }
#[cfg(all(test, not(loom)))]
mod tests2 { fn t2() { z.unwrap(); } }
fn hot2() { w.unwrap(); }
#[cfg(not(test))]
fn prod() { v.unwrap(); }
";
        let file = parse_ok(src);
        let mut seen = Vec::new();
        let mut path = Vec::new();
        visit_fns(&file.items, false, &mut path, &mut |_, name, _, in_test| {
            seen.push((name.to_string(), in_test));
        });
        let get = |n: &str| seen.iter().find(|(s, _)| s == n).map(|(_, t)| *t);
        assert_eq!(get("hot"), Some(false));
        assert_eq!(get("t"), Some(true));
        assert_eq!(get("t2"), Some(true));
        assert_eq!(get("hot2"), Some(false), "code *after* a test mod is not test code");
        assert_eq!(get("prod"), Some(false), "cfg(not(test)) is production code");
    }

    #[test]
    fn method_chains_nest_properly() {
        assert_eq!(
            method_names("fn f() { self.shared.state.lock().push(1); }"),
            ["push", "lock"].map(String::from)
        );
        assert_eq!(
            method_names("fn f() { a.b::<u8>(x.c(), y[0].d()); }"),
            ["b", "c", "d"].map(String::from)
        );
    }

    #[test]
    fn macro_bodies_are_soup_parsed() {
        let names = method_names("fn f() { assert_eq!(*m.lock(), x.unwrap()); }");
        assert!(names.contains(&"lock".to_string()), "{names:?}");
        assert!(names.contains(&"unwrap".to_string()), "{names:?}");
    }

    #[test]
    fn unsafe_blocks_and_fns_are_shaped() {
        let file = parse_ok(
            "unsafe fn f() {}\nfn g() { unsafe { p.read() } }\npub const unsafe fn h() {}\n",
        );
        let mut unsafe_fns = 0;
        let mut unsafe_blocks = 0;
        let mut path = Vec::new();
        visit_fns(&file.items, false, &mut path, &mut |_, _, body, _| {
            walk_block(body, &mut |e| {
                if matches!(e, Expr::Unsafe { .. }) {
                    unsafe_blocks += 1;
                }
            });
        });
        for item in &file.items {
            if let Item::Fn { is_unsafe: true, .. } = item {
                unsafe_fns += 1;
            }
        }
        assert_eq!((unsafe_fns, unsafe_blocks), (2, 1));
    }

    #[test]
    fn control_flow_and_struct_literals() {
        let src = "\
fn f(x: u32) -> Foo {
    if x > 1 { return Foo { a: x, b: g() }; }
    let mut total = 0;
    for i in 0..x { total += i; }
    while let Some(v) = it.next() { total += v; }
    match total { 0 => h(), n if n > 2 => i(), _ => j(), }
    'outer: loop { break 'outer; }
    Foo { a: total, ..base }
}
";
        let file = parse_ok(src);
        assert_eq!(file.items.len(), 1);
    }

    #[test]
    fn closures_and_spawn_shapes() {
        let src = "\
fn f() {
    let (tx, rx) = spsc::ring::<Job>(cap.max(1));
    joins.push(rcm_sync::thread::spawn(move || worker_body(shard, rx, out_tx, batch)));
    let h = thread::spawn(|| {});
    let c = |a: u32, b| a + b;
    let e = move || el.run();
}
";
        let file = parse_ok(src);
        let mut spawn_calls = 0;
        let mut path = Vec::new();
        visit_fns(&file.items, false, &mut path, &mut |_, _, body, _| {
            walk_block(body, &mut |e| {
                if let Expr::Call { callee, .. } = e {
                    if let Expr::Path { segs, .. } = callee.as_ref() {
                        if segs.last().is_some_and(|s| s == "spawn") {
                            spawn_calls += 1;
                        }
                    }
                }
            });
        });
        assert_eq!(spawn_calls, 2);
    }

    #[test]
    fn let_bindings_capture_names() {
        let file = parse_ok("fn f() { let (tx, rx) = ring(); let mut g = m.lock(); }");
        let Item::Fn { body: Some(body), .. } = &file.items[0] else { panic!("fn") };
        let mut names = Vec::new();
        for stmt in &body.stmts {
            if let Stmt::Let { names: n, .. } = stmt {
                names.extend(n.clone());
            }
        }
        assert_eq!(names, ["tx", "rx", "g"]);
    }

    #[test]
    fn real_world_shapes_parse_without_gaps() {
        // Idioms lifted from the actual workspace sources.
        let src = r#"
impl<T: Send> SubmitQueue<T> {
    pub fn submit(&self, item: T, waker: &impl Wake) {
        self.inner.queue.lock().push_back(item);
        if self.inner.sleeping.load(Ordering::SeqCst) { waker.wake(); }
    }
}
fn percentiles(h: &[u64]) -> (f64, f64) {
    let total: u64 = h.iter().sum();
    let p = |q: f64| -> f64 { (total as f64) * q / 100.0 };
    (p(50.0), p(99.0))
}
pub fn start(options: &PipelineOptions) -> EvalPipeline {
    let workers = options.workers.max(1);
    let mut rings = Vec::with_capacity(workers);
    for shard in slices.into_shards() {
        let (tx, rx) = spsc::ring::<Job>(options.ring_capacity.max(1));
        rings.push(tx);
    }
    EvalPipeline { rings, next_idx: 0, shed }
}
const FUSED: &[&str] = &["...", "..=", "::"];
static DEFAULT: Option<&'static str> = None;
type Pair = (u64, u64);
trait Drain: Send { fn alerts(&mut self, alerts: Vec<Alert>); fn end(&mut self) {} }
"#;
        parse_ok(src);
    }

    #[test]
    fn gap_counting_fires_on_unsupported_syntax_but_never_panics() {
        let file = parse_source("fn f() { let x = ; } ??? !!");
        assert!(file.gaps > 0);
    }

    #[test]
    fn soup_never_loops_forever() {
        let file = parse_source("macro_rules! m { ($x:expr) => { $x.unwrap() } }");
        assert_eq!(file.gaps, 0);
        let _ = parse_source("m!(=> => =>); n![,,,]; o!{..}");
    }
}
