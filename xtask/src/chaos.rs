//! `cargo xtask assert-chaos <report.json>` — the CI-side schema and
//! invariant check over the chaos gauntlet's JSON report. Replaces the
//! inline Python that used to live in ci.yml, so the assertions are
//! compiled, unit-tested, and versioned with the schema they check.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use crate::json::{self, Json};

pub fn assert_chaos(path: &Path) -> ExitCode {
    let raw = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask assert-chaos: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("xtask assert-chaos: {} is not valid JSON: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let problems = check_chaos_report(&doc);
    if problems.is_empty() {
        let runs = doc.get("runs").and_then(Json::as_arr).map_or(0, <[_]>::len);
        println!("xtask assert-chaos: schema and invariants hold over {runs} run(s)");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("{}: {p}", path.display());
        }
        eprintln!("xtask assert-chaos: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// Every invariant the chaos report must satisfy. Mirrors what the
/// simulator promises: per-link transport counters in the totals and
/// in every run, a socket smoke that matched the in-process pipeline,
/// live engine counters proving the evented loop actually ran, and a
/// tree gauntlet section (≥ 10 plans, zero violations, re-parent and
/// replay counters that moved) proving the aggregation-tree fault
/// classes actually exercised their recovery machinery.
pub fn check_chaos_report(doc: &Json) -> Vec<String> {
    let mut out = Vec::new();
    let num = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_num);

    let Some(totals) = doc.get("totals") else {
        return vec!["missing `totals` object".to_string()];
    };
    for key in [
        "front_frames_dropped",
        "backlink_reconnects",
        "front_frames_sent",
        "front_updates_sent",
        "front_bytes_sent",
        "updates_per_datagram",
        "engine_wakeups",
        "engine_timer_fires",
        "engine_spurious_readiness",
        "updates_shed",
        "latency_p50_ns",
        "latency_p99_ns",
        "latency_p999_ns",
    ] {
        if totals.get(key).is_none() {
            out.push(format!("totals missing `{key}`"));
        }
    }
    let updates = num(totals, "front_updates_sent").unwrap_or(-1.0);
    let frames = num(totals, "front_frames_sent").unwrap_or(-1.0);
    if !(updates >= frames && frames > 0.0) {
        out.push(format!(
            "expected front_updates_sent >= front_frames_sent > 0, got {updates} and {frames}"
        ));
    }
    if num(totals, "engine_wakeups").unwrap_or(0.0) <= 0.0 {
        out.push("engine_wakeups is zero — the evented socket smoke never polled".to_string());
    }
    let p50 = num(totals, "latency_p50_ns").unwrap_or(0.0);
    let p999 = num(totals, "latency_p999_ns").unwrap_or(0.0);
    if p999 < p50 {
        out.push(format!("latency percentiles not monotone: p999 {p999} < p50 {p50}"));
    }

    match doc.get("socket_smoke") {
        None => out.push("missing `socket_smoke` (evented loopback vs in-process)".to_string()),
        Some(smoke) => {
            match smoke.get("violations").and_then(Json::as_arr) {
                None => out.push("socket_smoke missing `violations` array".to_string()),
                Some(v) if !v.is_empty() => {
                    out.push(format!("socket smoke reported {} violation(s)", v.len()));
                }
                Some(_) => {}
            }
            if smoke.get("transport").is_none() {
                out.push("socket_smoke missing `transport` report".to_string());
            }
        }
    }

    match doc.get("tree") {
        None => out.push("missing `tree` section (aggregation-tree gauntlet)".to_string()),
        Some(tree) => {
            if num(tree, "plans").unwrap_or(0.0) < 10.0 {
                out.push("tree gauntlet ran fewer than 10 plans".to_string());
            }
            if num(tree, "violations").is_none_or(|v| v != 0.0) {
                out.push("tree gauntlet reported violations".to_string());
            }
            match tree.get("totals") {
                None => out.push("tree missing `totals` object".to_string()),
                Some(totals) => {
                    for key in [
                        "updates_routed",
                        "derived_emitted",
                        "derived_forwarded",
                        "derived_duplicates",
                        "reparent_events",
                        "replayed_frames",
                        "frames_to_dead",
                        "root_alerts",
                        "wire_frames",
                        "wire_bytes",
                    ] {
                        if totals.get(key).is_none() {
                            out.push(format!("tree totals missing `{key}`"));
                        }
                    }
                    // The subtree-kill class runs every fifth plan, so
                    // a full sweep must have re-parented and replayed.
                    if num(totals, "reparent_events").unwrap_or(0.0) <= 0.0 {
                        out.push(
                            "tree reparent_events is zero — subtree-kill class never re-parented"
                                .to_string(),
                        );
                    }
                    if num(totals, "replayed_frames").unwrap_or(0.0) <= 0.0 {
                        out.push(
                            "tree replayed_frames is zero — recovery classes replayed nothing"
                                .to_string(),
                        );
                    }
                    if num(totals, "root_alerts").unwrap_or(0.0) <= 0.0 {
                        out.push(
                            "tree root_alerts is zero — no alerts reached the root".to_string(),
                        );
                    }
                }
            }
            match tree.get("runs").and_then(Json::as_arr) {
                None => out.push("tree missing `runs` array".to_string()),
                Some([]) => out.push("tree `runs` is empty".to_string()),
                Some(runs) => {
                    for (i, run) in runs.iter().enumerate() {
                        if run.get("class").is_none() {
                            out.push(format!("tree run {i}: missing `class`"));
                        }
                        match run.get("violations").and_then(Json::as_arr) {
                            None => out.push(format!("tree run {i}: missing `violations` array")),
                            Some(v) if !v.is_empty() => {
                                out.push(format!("tree run {i}: {} violation(s)", v.len()));
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
        }
    }

    match doc.get("runs").and_then(Json::as_arr) {
        None => out.push("missing `runs` array".to_string()),
        Some([]) => out.push("`runs` is empty".to_string()),
        Some(runs) => {
            for (i, run) in runs.iter().enumerate() {
                let Some(t) = run.get("transport") else {
                    out.push(format!("run {i}: missing `transport`"));
                    continue;
                };
                for key in ["mode", "front_links", "ingress", "back_links", "ad"] {
                    if t.get(key).is_none() {
                        out.push(format!("run {i}: transport missing `{key}`"));
                    }
                }
                match t.get("front_links").and_then(Json::as_arr) {
                    None | Some([]) => {
                        out.push(format!("run {i}: drives no front links"));
                    }
                    Some(links) => {
                        // Each entry is a `[dm, ce, stats]` triple.
                        for link in links {
                            let stats = link.as_arr().and_then(|triple| triple.get(2));
                            let complete = ["updates_sent", "bytes_sent"]
                                .iter()
                                .all(|k| stats.is_some_and(|s| s.get(k).is_some()));
                            if !complete {
                                out.push(format!("run {i}: front link lacks per-link counters"));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal report satisfying every invariant `assert_chaos`
    /// checks — the tamper tests below each break one field.
    fn good_report() -> String {
        r#"{
          "totals": {
            "front_frames_dropped": 3, "backlink_reconnects": 1,
            "front_frames_sent": 10, "front_updates_sent": 20,
            "front_bytes_sent": 400, "updates_per_datagram": 2.0,
            "engine_wakeups": 90, "engine_timer_fires": 2,
            "engine_spurious_readiness": 0,
            "updates_shed": 0, "latency_p50_ns": 800,
            "latency_p99_ns": 4000, "latency_p999_ns": 9000
          },
          "socket_smoke": { "violations": [], "transport": { "mode": "Sockets" } },
          "tree": {
            "plans": 10, "violations": 0,
            "totals": {
              "updates_routed": 1800, "derived_emitted": 950,
              "derived_forwarded": 940, "derived_duplicates": 500,
              "reparent_events": 2, "replayed_frames": 115,
              "frames_to_dead": 96, "root_alerts": 430,
              "wire_frames": 1900, "wire_bytes": 91000
            },
            "runs": [
              { "plan": 0, "class": "tree/lossless/no-faults", "violations": [] },
              { "plan": 1, "class": "tree/subtree-kill+reparent", "violations": [] }
            ]
          },
          "runs": [
            { "plan": 0, "transport": {
                "mode": "Sockets", "ingress": [], "back_links": [], "ad": {},
                "front_links": [[0, 1, { "updates_sent": 20, "bytes_sent": 400 }]]
            } }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn chaos_gate_accepts_a_complete_report() {
        let doc = json::parse(&good_report()).expect("fixture parses");
        assert_eq!(check_chaos_report(&doc), Vec::<String>::new());
    }

    #[test]
    fn chaos_gate_rejects_tampered_reports() {
        let tampers = [
            ("\"engine_wakeups\": 90", "\"engine_wakeups\": 0"),
            ("\"front_updates_sent\": 20,", ""),
            ("\"violations\": []", "\"violations\": [\"displayed mismatch\"]"),
            (
                "\"front_links\": [[0, 1, { \"updates_sent\": 20, \"bytes_sent\": 400 }]]",
                "\"front_links\": []",
            ),
            ("\"bytes_sent\": 400 }]]", "\"seen\": 400 }]]"),
            ("\"runs\": [", "\"trials\": ["),
            ("\"updates_shed\": 0,", ""),
            ("\"latency_p99_ns\": 4000,", ""),
            ("\"latency_p999_ns\": 9000", "\"latency_p999_ns\": 10"),
            ("\"tree\": {", "\"forest\": {"),
            ("\"plans\": 10,", "\"plans\": 3,"),
            ("\"violations\": 0,", "\"violations\": 2,"),
            ("\"reparent_events\": 2,", "\"reparent_events\": 0,"),
            ("\"replayed_frames\": 115,", "\"replayed_frames\": 0,"),
            ("\"root_alerts\": 430,", "\"root_alerts\": 0,"),
            ("\"derived_forwarded\": 940,", ""),
            (
                "\"class\": \"tree/subtree-kill+reparent\", \"violations\": []",
                "\"class\": \"tree/subtree-kill+reparent\", \"violations\": [\"lost alert\"]",
            ),
            ("\"plan\": 1, \"class\": \"tree/subtree-kill+reparent\",", "\"plan\": 1,"),
        ];
        for (from, to) in tampers {
            let tampered = good_report().replace(from, to);
            assert_ne!(tampered, good_report(), "tamper `{from}` did not apply");
            let doc = json::parse(&tampered).expect("still valid JSON");
            assert!(!check_chaos_report(&doc).is_empty(), "tamper `{from}` passed the gate");
        }
    }
}
