//! The per-file AST passes: shim discipline, hot-path panic freedom,
//! unsafe audit, and event-loop discipline. Each pass takes a parsed
//! [`File`] (and, for the unsafe audit, the raw token/comment stream)
//! and returns violations; cross-file analyses (lock order, topology)
//! live in their own modules.
//!
//! Every rule here used to be a regex over comment-stripped text
//! (PR 4). The AST versions differ where the text versions were
//! wrong:
//!
//! - **shim** resolves real `use`-trees and expression paths, so
//!   `use std::sync::{Arc, Mutex}` yields two precise violations and a
//!   doc-comment mentioning `std::thread` yields none.
//! - **hot-path** sees actual `#[cfg(test)]` scopes (any nesting, any
//!   position in the file — not just a trailing test module) and now
//!   also covers the other two panic classes the paper's pipeline
//!   cares about: unchecked slice indexing and integer division.
//! - **unsafe** audits at token level and additionally requires an
//!   attached `SAFETY:` comment within [`SAFETY_WINDOW`] lines.
//! - **event-loop** matches call expressions, so a local method that
//!   merely *contains* a banned name no longer trips it.

use std::fmt;

use crate::ast::{visit_consts, visit_fns, walk_block, walk_expr, Expr, File};
use crate::lexer::Lexed;

/// One finding. `rule` is the stable identifier used by allow
/// directives (`// analyze: allow(<rule>): <why>`).
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Files allowed to contain the `unsafe` keyword, with the reason.
/// Adding a file here is a reviewable act: do it in the PR that adds
/// the unsafe code, alongside its `// SAFETY:` comments.
pub const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[
    ("crates/core/src/inline.rs", "MaybeUninit small-vector storage; SAFETY-audited, Miri-covered"),
    (
        "crates/poll/src/sys.rs",
        "raw epoll/kqueue/poll/fcntl syscalls behind safe wrappers; the \
         crate root stays deny(unsafe_code)",
    ),
];

/// How many lines above an `unsafe` token its `SAFETY:` comment may
/// start. Generous enough for a paragraph, tight enough that the
/// comment is visibly *about* the block below it.
pub const SAFETY_WINDOW: usize = 12;

/// rcm-core modules on the alert hot path (panic-free zone).
pub const HOT_PATH: &[&str] =
    &["crates/core/src/evaluator.rs", "crates/core/src/registry.rs", "crates/core/src/history.rs"];

/// Transport modules on the wire hot path: the codec runs per frame on
/// every link, so it counts malformed input and encode failures
/// instead of panicking.
pub const TRANSPORT_HOT_PATH: &[&str] =
    &["crates/transport/src/wire.rs", "crates/transport/src/batch.rs"];

/// Evaluation-pipeline modules on the per-update hot path: the worker
/// rings, the dispatcher/sequencer, and the latency histogram's
/// allocation-free record path all run once per admitted update.
pub const PIPELINE_HOT_PATH: &[&str] =
    &["crates/runtime/src/pipeline.rs", "crates/sync/src/spsc.rs", "crates/core/src/latency.rs"];

pub const RUNTIME_SRC: &str = "crates/runtime/src";

/// The socket transport obeys the same shim discipline as the runtime:
/// it is compiled under `--cfg loom` as an `rcm-runtime` dependency, so
/// any direct `std::sync`/`std::thread` use would silently escape the
/// model checker.
pub const TRANSPORT_SRC: &str = "crates/transport/src";

/// The evented engine's home: one readiness loop that must never
/// block. Everything here runs on the loop thread, so one blocking
/// call stalls every link in the process.
pub const ENGINE_SRC: &str = "crates/transport/src/engine/";

/// Whether `rel` is one of the panic-free hot-path modules.
pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH.contains(&rel)
        || TRANSPORT_HOT_PATH.contains(&rel)
        || PIPELINE_HOT_PATH.contains(&rel)
        || rel.starts_with("crates/core/src/ad/")
}

/// Whether `rel` falls under the rcm_sync shim discipline.
pub fn in_shim_scope(rel: &str) -> bool {
    rel.starts_with(RUNTIME_SRC) || rel.starts_with(TRANSPORT_SRC)
}

/// Visits every expression in the file — function bodies and
/// const/static initializers — with its effective test flag.
fn for_each_expr<'a>(file: &'a File, f: &mut impl FnMut(&'a Expr, bool)) {
    let mut path = Vec::new();
    visit_fns(&file.items, false, &mut path, &mut |_, _, body, in_test| {
        walk_block(body, &mut |e| f(e, in_test));
    });
    visit_consts(&file.items, false, &mut |init, in_test| {
        walk_expr(init, &mut |e| f(e, in_test));
    });
}

// ---------------------------------------------------------------------
// shim discipline
// ---------------------------------------------------------------------

const SHIM_BANNED: &[&str] = &["std::sync", "std::thread", "crossbeam_channel", "parking_lot"];

fn shim_banned_path(path: &str) -> Option<&'static str> {
    SHIM_BANNED
        .iter()
        .find(|&&p| path == p || path.strip_prefix(p).is_some_and(|r| r.starts_with("::")))
        .copied()
}

fn shim_banned_segs(segs: &[String]) -> Option<&'static str> {
    let two = if segs.len() >= 2 { format!("{}::{}", segs[0], segs[1]) } else { String::new() };
    SHIM_BANNED.iter().find(|&&p| segs.first().is_some_and(|s| s == p) || two == p).copied()
}

/// No `std::sync`, `std::thread`, `crossbeam_channel` or `parking_lot`
/// anywhere in the runtime or transport crates (tests included — the
/// loom job compiles those too): every concurrency primitive must come
/// through `rcm_sync` so the whole runtime stays model-checkable under
/// `--cfg loom`. `std::net` is deliberately *not* banned: sockets are
/// the transport crate's whole job and loom has no model for them.
pub fn shim_pass(rel: &str, file: &File) -> Vec<Violation> {
    let mut out = Vec::new();
    if !in_shim_scope(rel) {
        return out;
    }
    let mut flag = |line: usize, what: &str| {
        out.push(Violation {
            file: rel.to_string(),
            line,
            rule: "shim",
            message: format!("`{what}` bypasses rcm_sync; import the shim instead"),
        });
    };
    crate::ast::visit_uses(&file.items, false, &mut |paths, line, _| {
        for path in paths {
            if shim_banned_path(path).is_some() {
                flag(line, path);
            }
        }
    });
    for_each_expr(file, &mut |e, _| match e {
        Expr::Path { segs, line } | Expr::Macro { segs, line, .. } => {
            if shim_banned_segs(segs).is_some() {
                flag(*line, &segs.join("::"));
            }
        }
        _ => {}
    });
    out
}

// ---------------------------------------------------------------------
// hot-path panic freedom
// ---------------------------------------------------------------------

/// True for index expressions that cannot out-of-bounds panic in a way
/// this analyzer should second-guess: literal indices into fixed
/// layouts, masked (`x & MASK`) and wrapped (`x % len`) indices, and
/// full-range slices.
fn index_is_checked(index: &Expr) -> bool {
    match index {
        Expr::Lit { .. } => true,
        Expr::Binary { op, .. } => matches!(op.as_str(), "%" | "&"),
        Expr::MethodCall { name, .. } => name == "min", // clamped: i.min(len - 1)
        Expr::Cast { expr, .. } | Expr::Unary { expr, .. } => index_is_checked(expr),
        _ => false,
    }
}

fn literal_is_nonzero_or_float(text: &str) -> bool {
    let t = text.replace('_', "");
    if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
        return true; // float literal: division cannot panic
    }
    let digits = t.trim_end_matches(|c: char| c.is_ascii_alphabetic() && c != 'x' && c != 'b');
    u128::from_str_radix(
        digits.trim_start_matches("0x").trim_start_matches("0b").trim_start_matches("0o"),
        if digits.starts_with("0x") {
            16
        } else if digits.starts_with("0b") {
            2
        } else if digits.starts_with("0o") {
            8
        } else {
            10
        },
    )
    .map(|v| v != 0)
    .unwrap_or(false)
}

/// Collects the names of consts in this file whose initializer is a
/// provably non-zero (or float) literal — `const SUB_BUCKETS: u64 =
/// 16;` makes `x / SUB_BUCKETS` safe anywhere in the same file.
fn nonzero_consts(items: &[crate::ast::Item], out: &mut Vec<String>) {
    use crate::ast::Item;
    for item in items {
        match item {
            Item::ConstLike { name, init: Some(init), .. } => {
                let proven = match init {
                    Expr::Lit { text, .. } => literal_is_nonzero_or_float(text),
                    // `1 << 20` and friends: a non-zero value shifted
                    // left stays non-zero until it overflows, which
                    // would itself panic in debug before the division.
                    Expr::Binary { op, lhs, .. } if op == "<<" => {
                        matches!(&**lhs, Expr::Lit { text, .. } if literal_is_nonzero_or_float(text))
                    }
                    _ => false,
                };
                if proven {
                    out.push(name.clone());
                }
            }
            Item::Mod { items: Some(items), .. } | Item::ItemGroup { items, .. } => {
                nonzero_consts(items, out);
            }
            _ => {}
        }
    }
}

/// True for division right-hand sides that provably cannot be zero (or
/// are float divisions, which do not panic).
fn divisor_is_checked(rhs: &Expr, consts: &[String]) -> bool {
    match rhs {
        Expr::Lit { text, .. } => literal_is_nonzero_or_float(text),
        // A same-file const with a non-zero literal initializer
        // (`SUB_BUCKETS`, `Self::WIDTH`, …).
        Expr::Path { segs, .. } => segs.last().is_some_and(|name| consts.iter().any(|c| c == name)),
        // `x.max(1)` and friends: clamped away from zero.
        Expr::MethodCall { name, args, .. } => {
            name == "max"
                && args.len() == 1
                && matches!(&args[0], Expr::Lit { text, .. } if literal_is_nonzero_or_float(text))
        }
        // `… as f64`: float division does not panic.
        Expr::Cast { ty, .. } => ty.contains("f64") || ty.contains("f32"),
        Expr::Unary { expr, .. } => divisor_is_checked(expr, consts),
        _ => false,
    }
}

/// Panic-freedom on the hot path, with real scope awareness:
///
/// - `.unwrap()` is banned crate-wide in runtime + transport (tests
///   included) — use `.expect("why")`.
/// - In the hot-path modules, outside `#[cfg(test)]` scopes, the pass
///   additionally bans `.unwrap()`/`.expect(…)`, unchecked slice
///   indexing, and integer division with an unproven divisor.
pub fn hot_path_pass(rel: &str, file: &File) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_runtime = in_shim_scope(rel);
    let hot = is_hot_path(rel);
    if !in_runtime && !hot {
        return out;
    }
    let mut consts = Vec::new();
    nonzero_consts(&file.items, &mut consts);
    for_each_expr(file, &mut |e, in_test| match e {
        Expr::MethodCall { name, args, line, .. } if name == "unwrap" && args.is_empty() => {
            if in_runtime {
                out.push(Violation {
                    file: rel.to_string(),
                    line: *line,
                    rule: "hot-path",
                    message: "`.unwrap()` in the runtime; use `.expect(\"why\")`".to_string(),
                });
            } else if hot && !in_test {
                out.push(Violation {
                    file: rel.to_string(),
                    line: *line,
                    rule: "hot-path",
                    message: "`.unwrap()` on the alert hot path; return the error or assert \
                                  the invariant explicitly"
                        .to_string(),
                });
            }
        }
        Expr::MethodCall { name, line, .. } if name == "expect" && hot && !in_test => {
            out.push(Violation {
                file: rel.to_string(),
                line: *line,
                rule: "hot-path",
                message: "`.expect(…)` on the alert hot path; return the error or assert the \
                              invariant explicitly"
                    .to_string(),
            });
        }
        Expr::Index { index, line, .. } if hot && !in_test => {
            if !index_is_checked(index) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: *line,
                    rule: "hot-path",
                    message: format!(
                        "unchecked index `[{}]` on the hot path; use `.get(…)`, a masked/\
                             wrapped index, or justify with `// analyze: allow(hot-path): …`",
                        index.render()
                    ),
                });
            }
        }
        Expr::Binary { op, rhs, line, .. }
            if hot && !in_test && matches!(op.as_str(), "/" | "%" | "/=" | "%=") =>
        {
            if !divisor_is_checked(rhs, &consts) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: *line,
                    rule: "hot-path",
                    message: format!(
                        "division by `{}` on the hot path; prove the divisor non-zero \
                             (literal, `.max(1)`, float) or justify with `// analyze: \
                             allow(hot-path): …`",
                        rhs.render()
                    ),
                });
            }
        }
        _ => {}
    });
    out
}

// ---------------------------------------------------------------------
// unsafe audit
// ---------------------------------------------------------------------

/// The `unsafe` keyword may appear only in the audited files listed in
/// [`UNSAFE_ALLOWLIST`], and — new with the AST analyzer — every
/// occurrence must have a `SAFETY:` comment starting within
/// [`SAFETY_WINDOW`] lines above it. Token-level: `unsafe_code` in a
/// lint attribute is a different identifier and never matches.
pub fn unsafe_pass(rel: &str, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    let allowed = UNSAFE_ALLOWLIST.iter().any(|&(f, _)| f == rel);
    for tok in &lexed.tokens {
        if tok.kind != crate::lexer::TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        if !allowed {
            out.push(Violation {
                file: rel.to_string(),
                line: tok.line,
                rule: "unsafe",
                message: "`unsafe` outside the audited allowlist (see xtask/src/passes.rs)"
                    .to_string(),
            });
            continue;
        }
        let lo = tok.line.saturating_sub(SAFETY_WINDOW);
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= tok.line && c.text.contains("SAFETY:"));
        if !documented {
            out.push(Violation {
                file: rel.to_string(),
                line: tok.line,
                rule: "unsafe",
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines above it"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// event-loop discipline
// ---------------------------------------------------------------------

/// Methods that block (or hide blocking) a readiness loop, with the
/// non-blocking idiom each must use instead.
const ENGINE_BANNED_METHODS: &[(&str, &str)] = &[
    ("connect_timeout", "blocking connect; use rcm_poll::sys::connect_nonblocking"),
    ("set_read_timeout", "socket timeouts block; deadlines belong on the timer wheel"),
    ("set_write_timeout", "socket timeouts block; deadlines belong on the timer wheel"),
    ("lock", "no locks on the loop; cross-thread state is atomics + the submit queue"),
    ("write_all", "a blocking write loop; park the remainder as a continuation state"),
    ("read_exact", "a blocking read loop; buffer the partial frame in the source"),
];

/// Nothing under `crates/transport/src/engine/` may block the loop
/// thread. Matched at call-expression level: a field or string merely
/// *named* like a banned call no longer trips the rule.
pub fn event_loop_pass(rel: &str, file: &File) -> Vec<Violation> {
    let mut out = Vec::new();
    if !rel.starts_with(ENGINE_SRC) {
        return out;
    }
    let mut flag = |line: usize, what: String, why: &str| {
        out.push(Violation {
            file: rel.to_string(),
            line,
            rule: "event-loop",
            message: format!("`{what}` — {why}"),
        });
    };
    // The whole file is loop-thread code; even its tests must exercise
    // the non-blocking idioms (this matches the PR-4 rule's scope).
    for_each_expr(file, &mut |e, _| match e {
        Expr::MethodCall { name, args, line, .. } => {
            for &(banned, why) in ENGINE_BANNED_METHODS {
                if name == banned && (banned != "lock" || args.is_empty()) {
                    flag(*line, format!(".{name}(…)"), why);
                }
            }
        }
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let tail2 = segs.iter().rev().take(2).rev().map(String::as_str).collect::<Vec<_>>();
                match tail2.as_slice() {
                    ["TcpStream", "connect"] => flag(
                        *line,
                        "TcpStream::connect(…)".to_string(),
                        "blocking connect; use rcm_poll::sys::connect_nonblocking",
                    ),
                    ["TcpStream", "connect_timeout"] => flag(
                        *line,
                        "TcpStream::connect_timeout(…)".to_string(),
                        "blocking connect; use rcm_poll::sys::connect_nonblocking",
                    ),
                    ["thread", "sleep"] => flag(
                        *line,
                        "thread::sleep(…)".to_string(),
                        "a sleeping loop thread stalls every link; park a wheel timer",
                    ),
                    _ => {}
                }
            }
        }
        _ => {}
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let file = parse(&lexed);
        assert_eq!(file.gaps, 0, "fixture must parse cleanly:\n{src}");
        let mut out = shim_pass(rel, &file);
        out.extend(hot_path_pass(rel, &file));
        out.extend(unsafe_pass(rel, &lexed));
        out.extend(event_loop_pass(rel, &file));
        out
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    // ---- shim ------------------------------------------------------

    #[test]
    fn shim_catches_use_trees_and_expression_paths() {
        let bad = "use std::sync::{Arc, Mutex};\nfn f() { std::thread::spawn(|| {}); }\n";
        let got = run("crates/runtime/src/evil.rs", bad);
        assert_eq!(rules(&got).iter().filter(|r| **r == "shim").count(), 3, "{got:?}");
    }

    #[test]
    fn shim_catches_bypass_crates_and_covers_transport() {
        let bad = "use crossbeam_channel::unbounded;\nuse parking_lot::Mutex;\n";
        assert_eq!(run("crates/transport/src/evil.rs", bad).len(), 2);
    }

    #[test]
    fn shim_ignores_prose_and_out_of_scope_crates() {
        let prose = "//! use std::sync::Arc in prose\nfn f() { let _ = \"std::thread\"; }\n";
        assert!(run("crates/runtime/src/fine.rs", prose).is_empty());
        let ok = "use std::sync::Arc;\n";
        assert!(run("crates/sim/src/lib.rs", ok).is_empty());
        // std::net stays legal in the transport: sockets are the point.
        let net = "use std::net::UdpSocket;\n";
        assert!(run("crates/transport/src/fine.rs", net).is_empty());
    }

    #[test]
    fn shim_catches_test_code_too() {
        let bad = "#[cfg(test)]\nmod tests { use std::thread; }\n";
        assert_eq!(rules(&run("crates/runtime/src/evil.rs", bad)), ["shim"]);
    }

    // ---- hot-path --------------------------------------------------

    #[test]
    fn unwrap_is_flagged_crate_wide_in_runtime_even_in_tests() {
        let bad = "#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n";
        assert_eq!(rules(&run("crates/runtime/src/evil.rs", bad)), ["hot-path"]);
    }

    #[test]
    fn hot_path_bans_unwrap_and_expect_outside_tests() {
        let bad = "fn f() { x.unwrap(); y.expect(\"oops\"); }\n";
        for file in [
            "crates/core/src/registry.rs",
            "crates/core/src/ad/ad1.rs",
            "crates/transport/src/wire.rs",
        ] {
            let got = run(file, bad);
            assert_eq!(got.iter().filter(|v| v.rule == "hot-path").count(), 2, "{file}: {got:?}");
        }
    }

    #[test]
    fn hot_path_exempts_cfg_test_scopes_anywhere_in_the_file() {
        // The old regex rule only exempted a *trailing* test module;
        // the AST pass exempts real scopes wherever they sit.
        let ok = "\
#[cfg(test)]
mod early_tests { fn t() { x.unwrap(); } }
fn hot(v: &[u8]) -> u8 { v.first().copied().unwrap_or(0) }
#[cfg(all(test, not(loom)))]
mod tests { fn t() { y.expect(\"t\"); } }
";
        assert!(run("crates/core/src/registry.rs", ok).is_empty());
        // …and code *after* a test module is still checked (the old
        // line-oriented rule would have skipped it).
        let bad = "\
#[cfg(test)]
mod tests { }
fn hot() { x.expect(\"late\"); }
";
        assert_eq!(rules(&run("crates/core/src/registry.rs", bad)), ["hot-path"]);
    }

    #[test]
    fn hot_path_flags_unchecked_indexing_but_not_masked_or_literal() {
        let bad = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        assert_eq!(rules(&run("crates/core/src/history.rs", bad)), ["hot-path"]);
        let ok = "\
fn f(v: &[u8; 4], i: usize) -> u8 { v[0] + v[i & 3] + v[i % 8] + v[i.min(3)] }
fn g(v: &[u8]) -> &[u8] { &v[..] }
";
        assert!(run("crates/core/src/history.rs", ok).is_empty());
        // `v[i % m]` is a safe *index* shape but still an unproven
        // remainder: `m == 0` panics, so the division rule fires.
        let rem = "fn f(v: &[u8], i: usize, m: usize) -> u8 { v[i % m] }\n";
        assert_eq!(rules(&run("crates/core/src/history.rs", rem)), ["hot-path"]);
    }

    #[test]
    fn hot_path_flags_unproven_divisors_but_not_safe_ones() {
        let bad = "fn f(a: u64, b: u64) -> u64 { a / b }\n";
        assert_eq!(rules(&run("crates/core/src/latency.rs", bad)), ["hot-path"]);
        let ok = "\
fn f(a: u64, n: u64, x: f64, y: u64) -> u64 {
    let _pct = x / 100.0;
    let _avg = (a as f64) / (y as f64);
    a / n.max(1) + a % 8
}
";
        assert!(run("crates/core/src/latency.rs", ok).is_empty());
    }

    #[test]
    fn division_by_a_nonzero_same_file_const_is_proven() {
        let ok = "\
const SUB_BUCKETS: u64 = 16;
const CAP: usize = 1 << 20;
fn f(a: u64, c: usize) -> u64 { a / SUB_BUCKETS + (c / CAP) as u64 }
";
        assert!(run("crates/core/src/latency.rs", ok).is_empty());
        // A zero-valued or non-literal const proves nothing.
        let bad = "\
const ZERO: u64 = 0;
fn f(a: u64) -> u64 { a / ZERO }
";
        assert_eq!(rules(&run("crates/core/src/latency.rs", bad)), ["hot-path"]);
        let unknown = "\
fn f(a: u64, b: u64) -> u64 { a / OTHER_CRATE_CONST + b }
";
        assert_eq!(rules(&run("crates/core/src/latency.rs", unknown)), ["hot-path"]);
    }

    // ---- unsafe ----------------------------------------------------

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let bad = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(rules(&run("crates/core/src/history.rs", bad)), ["unsafe"]);
    }

    #[test]
    fn unsafe_in_allowlisted_file_requires_safety_comment() {
        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller upholds validity.\n    unsafe { p.read() }\n}\n";
        assert!(run("crates/core/src/inline.rs", ok).is_empty());
        let bad = "fn f(p: *const u8) -> u8 { unsafe { p.read() } }\n";
        let got = run("crates/core/src/inline.rs", bad);
        assert_eq!(rules(&got), ["unsafe"], "{got:?}");
        assert!(got[0].message.contains("SAFETY:"));
    }

    #[test]
    fn unsafe_code_lint_attribute_is_not_the_keyword() {
        let ok = "#![deny(unsafe_code)]\n#![allow(unsafe_code)]\n";
        assert!(run("crates/core/src/lib.rs", ok).is_empty());
    }

    // ---- event-loop ------------------------------------------------

    #[test]
    fn event_loop_catches_every_blocking_idiom() {
        let seeded = [
            "fn f(addr: A) { let _ = TcpStream::connect(addr); }\n",
            "fn f(addr: A, d: D) { let _ = TcpStream::connect_timeout(&addr, d); }\n",
            "fn f(s: &TcpStream, d: D) { s.set_read_timeout(Some(d)); }\n",
            "fn f(s: &TcpStream, d: D) { s.set_write_timeout(Some(d)); }\n",
            "fn f(d: D) { rcm_sync::thread::sleep(d); }\n",
            "fn f(m: &Mutex<u8>) { m.lock(); }\n",
            "fn f(s: &mut TcpStream, buf: &[u8]) { s.write_all(buf); }\n",
            "fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read_exact(buf); }\n",
        ];
        for bad in seeded {
            let got = run("crates/transport/src/engine/evil.rs", bad);
            assert!(got.iter().any(|v| v.rule == "event-loop"), "missed: {bad}");
        }
    }

    #[test]
    fn event_loop_scopes_to_the_engine_directory_and_calls_only() {
        // The threaded reference implementation one level up blocks on
        // purpose.
        let threaded = "fn f(s: &mut TcpStream, buf: &[u8]) { s.write_all(buf); }\n";
        assert!(run("crates/transport/src/tcp.rs", threaded).is_empty());
        // A *string* or comment naming a banned call is not a call.
        let prose = "// write_all would block here\nfn f() { let _ = \"thread::sleep\"; }\n";
        assert!(run("crates/transport/src/engine/fine.rs", prose).is_empty());
        // Non-blocking partial writes sail through.
        let ok = "fn f(s: &mut TcpStream, buf: &[u8]) -> R { let n = s.write(buf)?; Ok(n) }\n";
        assert!(run("crates/transport/src/engine/fine.rs", ok).is_empty());
    }
}
