//! The `cargo xtask analyze` driver: walks every `.rs` file under
//! `crates/`, lexes and parses it once, and feeds the AST to each
//! analysis pass. Produces the full violation list plus the rendered
//! topology document, so callers (the CLI, the self-tests) decide what
//! to do with them.
//!
//! ## Suppressions
//!
//! A finding can be waived in place with a justified allow directive
//! on the line above (or the line of) the finding:
//!
//! ```text
//! // analyze: allow(hot-path): index bounded by the modulo above
//! let slot = &mut self.slots[idx];
//! ```
//!
//! The rule name must match and the trailing reason is mandatory — an
//! unexplained waiver is itself a violation. Suppressions are
//! deliberately line-scoped: a file-wide waiver would rot silently.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed, TokenKind};
use crate::lock_order;
use crate::parser;
use crate::passes::{self, Violation};
use crate::topology;

/// The committed topology artifact, relative to the repo root.
pub const TOPOLOGY_PATH: &str = "TOPOLOGY.json";

pub struct Report {
    pub violations: Vec<Violation>,
    /// The freshly extracted topology document (JSON text).
    pub topology: String,
    pub files_scanned: usize,
}

/// Runs every pass over the tree rooted at `root`. Pure with respect
/// to the tree: writing `TOPOLOGY.json` is the caller's decision.
pub fn analyze_tree(root: &Path) -> Report {
    let mut violations = Vec::new();
    let mut lock_facts = Vec::new();
    let mut topologies = Vec::new();
    let mut corpus: BTreeSet<String> = BTreeSet::new();
    let mut files_scanned = 0;

    for path in rust_files(&root.join("crates")) {
        let rel = path
            .strip_prefix(root)
            .expect("walked file is under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    file: rel,
                    line: 0,
                    rule: "io",
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        files_scanned += 1;
        let lexed = lexer::lex(&src);
        let file = parser::parse(&lexed);

        if topology::is_corpus(&rel) {
            corpus.extend(
                lexed.tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.clone()),
            );
        }

        let mut found = Vec::new();
        if file.gaps > 0 {
            found.push(Violation {
                file: rel.clone(),
                line: 0,
                rule: "parse",
                message: format!(
                    "{} region(s) the analyzer could not parse — simplify the construct or \
                     extend xtask/src/parser.rs; unparsed code is unanalyzed code",
                    file.gaps
                ),
            });
        }
        found.extend(passes::shim_pass(&rel, &file));
        found.extend(passes::hot_path_pass(&rel, &file));
        found.extend(passes::unsafe_pass(&rel, &lexed));
        found.extend(passes::event_loop_pass(&rel, &file));

        let facts = lock_order::extract(&rel, &file, &lexed);
        found.extend(facts.violations.iter().cloned());
        lock_facts.push(facts);

        topologies.push(topology::extract(&rel, &file, &lexed));

        violations.extend(apply_allows(&rel, &lexed, found));
    }

    // Cross-file analyses run after the walk: the lock graph and the
    // topology invariants only exist at whole-workspace granularity.
    violations.extend(lock_order::check(&lock_facts));
    let (topo_json, topo_violations) = topology::assemble(topologies, &corpus);
    violations.extend(topo_violations);

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Report { violations, topology: topo_json, files_scanned }
}

/// Compares the extracted topology against the committed artifact.
/// Returns a violation on drift (or a missing artifact).
pub fn check_topology_drift(root: &Path, extracted: &str) -> Option<Violation> {
    let committed = fs::read_to_string(root.join(TOPOLOGY_PATH)).unwrap_or_default();
    if committed.trim_end() == extracted.trim_end() {
        return None;
    }
    Some(Violation {
        file: TOPOLOGY_PATH.to_string(),
        line: 0,
        rule: "topology",
        message: if committed.is_empty() {
            "missing — run `cargo xtask analyze --write-topology` and commit the result".to_string()
        } else {
            "stale: the concurrency topology changed; rerun \
             `cargo xtask analyze --write-topology` and review the diff"
                .to_string()
        },
    })
}

/// Filters `found` through the file's `analyze: allow(rule): reason`
/// directives. A directive waives matching-rule violations on its own
/// line and the next; a directive without a reason becomes a violation.
fn apply_allows(rel: &str, lexed: &Lexed, found: Vec<Violation>) -> Vec<Violation> {
    struct Allow {
        rule: String,
        line: usize,
    }
    let mut allows = Vec::new();
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("analyze: allow(") else { continue };
        let rest = &c.text[pos + "analyze: allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: "allow",
                message: "malformed allow directive: missing `)`".to_string(),
            });
            continue;
        };
        let reason = rest[close + 1..].trim_start_matches([':', ' ', '\t']);
        if reason.trim().is_empty() {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: "allow",
                message: "allow directive without a reason — say why the finding is safe"
                    .to_string(),
            });
            continue;
        }
        allows.push(Allow { rule: rest[..close].trim().to_string(), line: c.line });
    }
    for v in found {
        let waived =
            allows.iter().any(|a| a.rule == v.rule && (v.line == a.line || v.line == a.line + 1));
        if !waived {
            out.push(v);
        }
    }
    out
}

/// Recursively collects `.rs` files, sorted for stable output.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // `target/` never lives inside crates/, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn filter(rel: &str, src: &str, found: Vec<Violation>) -> Vec<Violation> {
        apply_allows(rel, &lex(src), found)
    }

    fn v(rule: &'static str, line: usize) -> Violation {
        Violation { file: "f.rs".into(), line, rule, message: "m".into() }
    }

    #[test]
    fn allow_directive_waives_next_line_only_for_its_rule() {
        let src = "\
fn f() {
    // analyze: allow(hot-path): divisor proven nonzero two lines up
    let x = a / b;
}
";
        let kept = filter("f.rs", src, vec![v("hot-path", 3), v("shim", 3), v("hot-path", 4)]);
        let rules: Vec<(&str, usize)> = kept.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(rules, vec![("shim", 3), ("hot-path", 4)], "{kept:?}");
    }

    #[test]
    fn allow_directive_without_reason_is_itself_a_violation() {
        let src = "// analyze: allow(unsafe)\nfn f() {}\n";
        let kept = filter("f.rs", src, vec![v("unsafe", 2)]);
        assert!(kept.iter().any(|x| x.rule == "allow"), "{kept:?}");
        // The unexplained directive does NOT waive the finding.
        assert!(kept.iter().any(|x| x.rule == "unsafe"), "{kept:?}");
    }

    #[test]
    fn topology_drift_is_detected_and_exact_match_is_clean() {
        let dir = std::env::temp_dir().join("xtask-drift-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        fs::write(dir.join(TOPOLOGY_PATH), "{\n  \"schema\": 1\n}\n").expect("write");
        assert!(check_topology_drift(&dir, "{\n  \"schema\": 1\n}\n").is_none());
        let drift = check_topology_drift(&dir, "{\n  \"schema\": 2\n}\n").expect("drift");
        assert_eq!(drift.rule, "topology");
        assert!(drift.message.contains("stale"), "{drift}");
        fs::remove_dir_all(&dir).ok();
    }
}
