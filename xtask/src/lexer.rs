//! A dependency-free lexer for the subset of Rust this workspace uses.
//!
//! The old `cargo xtask lint` matched needles against a
//! comment/string-*stripped* text, which made every rule a heuristic:
//! the stripper mis-lexed raw strings (`r#"..."#` terminated at the
//! first interior `"`), word boundaries were hand-rolled, and scopes
//! (`#[cfg(test)]`, `unsafe { .. }`, use-trees) were invisible. This
//! lexer is the real front line of `cargo xtask analyze`: it produces
//! a token stream (identifiers, lifetimes, literals, multi-character
//! punctuation) with line numbers, and keeps comments *separately* —
//! the `LOCK ORDER:` / `SAFETY:` annotations the passes cross-check
//! are comments, so they must survive lexing instead of being blanked.
//!
//! Guarantees (fuzzed in `xtask/tests/fuzz.rs`):
//! * never panics, on any input;
//! * always terminates (every loop consumes at least one byte);
//! * preserves line numbers exactly (tokens and comments both).

/// What a token is. Keywords are [`TokenKind::Ident`]s — the parser
/// decides what is a keyword, the lexer does not care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal, suffix included: `1`, `0xFF`, `1_000u64`, `1.5e3`.
    Num,
    /// Punctuation. Multi-byte operators that matter to the parser are
    /// fused (`::`, `->`, `=>`, `..`, `..=`, `==`, `<=`, `&&`, …).
    Punct,
}

/// One token: kind, exact source text, 1-based line of its first byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

/// One comment, kept verbatim (marker included) with its start line.
/// Multi-line block comments carry their whole span text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// The lexer's output: code tokens and comments, both line-stamped.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comments whose span covers lines in `[lo, hi]` (1-based,
    /// inclusive) — the annotation passes' lookup primitive.
    pub fn comments_between(&self, lo: usize, hi: usize) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| {
            let span = c.text.lines().count().max(1);
            let last = c.line + span - 1;
            c.line <= hi && last >= lo
        })
    }
}

/// Punctuation sequences fused into one token, longest first. `<<` and
/// `>>` stay split so `Vec<Vec<u8>>` closes two angle scopes.
const FUSED: &[&str] = &[
    "...", "..=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes `src`. Malformed input (unterminated strings, stray
/// bytes) never fails: the offending span is consumed as best-effort
/// tokens and lexing continues — the parser treats the result like any
/// other token soup.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { text: lossy(&b[start..i]), line });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, properly depth-counted (the
                // old stripper got this right; the old *tests* never
                // covered a `/* /* */ */` containing a needle).
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment { text: lossy(&b[start..i]), line: start_line });
            }
            b'"' => {
                let (end, newlines) = scan_string(b, i, false);
                out.tokens.push(Token { kind: TokenKind::Str, text: lossy(&b[i..end]), line });
                line += newlines;
                i = end;
            }
            b'\'' => {
                let (tok, end) = scan_quote(b, i, line);
                out.tokens.push(tok);
                i = end;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &b[start..i];
                // String/char prefixes: r"", r#"", b"", b'', br"", br#"".
                let next = b.get(i).copied();
                let raw_start = matches!(next, Some(b'"') | Some(b'#'));
                match ident {
                    b"r" | b"br" | b"rb" if raw_start => {
                        let (end, newlines) = scan_raw_string(b, i);
                        if end > i {
                            out.tokens.push(Token {
                                kind: TokenKind::Str,
                                text: lossy(&b[start..end]),
                                line,
                            });
                            line += newlines;
                            i = end;
                            continue;
                        }
                        // `r#ident` (raw identifier) or stray `#`:
                        // fall through, emit `r` as an ident.
                        out.tokens.push(Token { kind: TokenKind::Ident, text: lossy(ident), line });
                    }
                    b"b" if next == Some(b'"') => {
                        let (end, newlines) = scan_string(b, i, false);
                        out.tokens.push(Token {
                            kind: TokenKind::Str,
                            text: lossy(&b[start..end]),
                            line,
                        });
                        line += newlines;
                        i = end;
                    }
                    b"b" if next == Some(b'\'') => {
                        let (tok, end) = scan_quote(b, i, line);
                        out.tokens.push(Token {
                            kind: tok.kind,
                            text: lossy(&b[start..end]),
                            line,
                        });
                        i = end;
                    }
                    _ => {
                        out.tokens.push(Token { kind: TokenKind::Ident, text: lossy(ident), line })
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i = scan_number(b, i);
                out.tokens.push(Token { kind: TokenKind::Num, text: lossy(&b[start..i]), line });
            }
            _ => {
                // Punctuation (or a stray non-ASCII byte, consumed as
                // one opaque punct so lexing always advances).
                let rest = &b[i..];
                let fused = FUSED.iter().find(|op| rest.starts_with(op.as_bytes()));
                let len = match fused {
                    Some(op) => op.len(),
                    None => utf8_len(c),
                };
                let end = (i + len).min(b.len());
                out.tokens.push(Token { kind: TokenKind::Punct, text: lossy(&b[i..end]), line });
                i = end;
            }
        }
    }
    out
}

fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scans a `"…"` string starting at the opening quote (or at the
/// prefix-less quote of `b"…"`). Returns (end index past the closing
/// quote, newline count). Unterminated strings end at EOF.
fn scan_string(b: &[u8], start: usize, _raw: bool) -> (usize, usize) {
    let mut i = start + 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Scans a raw string starting at the byte after the `r`/`br` prefix
/// (so at `#` or `"`). Returns (end index, newlines), or (start, 0) if
/// this is not actually a raw string (e.g. `r#match` raw identifiers).
///
/// This is the fix for the old stripper's raw-string bug: the closing
/// delimiter is a `"` followed by *exactly as many* `#` as the opener,
/// so `r#"say "hi"#` and `r##"a "#" b"##` lex as single literals.
fn scan_raw_string(b: &[u8], start: usize) -> (usize, usize) {
    let mut i = start;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return (start, 0); // raw identifier (`r#match`), not a string
    }
    i += 1;
    let mut newlines = 0;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return (i + 1 + hashes, newlines);
        }
        if b[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (i, newlines)
}

/// Scans from a `'`: either a char literal (`'x'`, `'\n'`, `'\u{1F}'`)
/// or a lifetime (`'a`, `'static`, `'_`). Returns the token and the
/// end index.
fn scan_quote(b: &[u8], start: usize, line: usize) -> (Token, usize) {
    let mut i = start + 1;
    match b.get(i) {
        Some(b'\\') => {
            // Escaped char literal: consume to the closing quote
            // (bounded — escapes are at most `\u{10FFFF}` long).
            i += 2;
            let limit = (start + 12).min(b.len());
            while i < limit && b.get(i) != Some(&b'\'') {
                i += 1;
            }
            let end = if b.get(i) == Some(&b'\'') { i + 1 } else { i };
            (Token { kind: TokenKind::Char, text: lossy(&b[start..end]), line }, end)
        }
        Some(&c) if c == b'_' || c.is_ascii_alphabetic() => {
            // `'x'` is a char; `'x` followed by more ident chars or
            // anything but `'` is a lifetime.
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j == i + 1 && b.get(j) == Some(&b'\'') {
                (Token { kind: TokenKind::Char, text: lossy(&b[start..j + 1]), line }, j + 1)
            } else {
                (Token { kind: TokenKind::Lifetime, text: lossy(&b[start..j]), line }, j)
            }
        }
        Some(_) => {
            // `'('` style char literal of one non-ident byte.
            let close = (i + 1 < b.len() && b[i + 1] == b'\'').then_some(i + 2);
            match close {
                Some(end) => {
                    (Token { kind: TokenKind::Char, text: lossy(&b[start..end]), line }, end)
                }
                None => (Token { kind: TokenKind::Punct, text: "'".to_string(), line }, i),
            }
        }
        None => (Token { kind: TokenKind::Punct, text: "'".to_string(), line }, i),
    }
}

/// Scans a numeric literal: integer/float bodies, `_` separators,
/// `0x`/`0o`/`0b` radices, exponents, type suffixes. A `.` is part of
/// the number only when followed by a digit (so `1..2` and `x.0` lex
/// as range / tuple-field punctuation, not malformed floats).
fn scan_number(b: &[u8], start: usize) -> usize {
    let mut i = start;
    let radix_alpha = i + 1 < b.len()
        && b[i] == b'0'
        && matches!(b[i + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
    if radix_alpha {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i.max(start + 1);
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i.max(start + 1)
}

/// Reconstructs the comment/string-stripped view of `src` the old lint
/// matched against — retained because it makes the raw-string fix
/// directly testable against the old stripper's failure cases, and as
/// a migration aid for out-of-tree tooling. Comments and literal
/// contents become spaces; newlines survive so line numbers stay true.
pub fn strip_comments_and_strings(src: &str) -> String {
    let lexed = lex(src);
    let mut out: Vec<String> = src.lines().map(|l| " ".repeat(l.len())).collect();
    if src.is_empty() {
        return String::new();
    }
    let mut emit = |line: usize, text: &str| {
        // Re-place token text at the first unused span on its line.
        // Column positions are not tracked, so this is *shape*
        // preserving (line + order), which is all the tests need.
        if let Some(slot) = out.get_mut(line - 1) {
            let used = slot.trim_end().len();
            let pad = if used == 0 { 0 } else { used + 1 };
            let mut s = slot[..pad.min(slot.len())].to_string();
            if pad > s.len() {
                s.push(' ');
            }
            s.push_str(text);
            *slot = s;
        }
    };
    for tok in &lexed.tokens {
        match tok.kind {
            TokenKind::Str => emit(tok.line, "\"\""),
            TokenKind::Char => emit(tok.line, "''"),
            _ => emit(tok.line, &tok.text.replace('\n', " ")),
        }
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        assert_eq!(
            texts("fn f(x: u32) -> u32 { x + 1 }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "+", "1", "}"]
        );
    }

    #[test]
    fn fused_punctuation_keeps_assignment_unambiguous() {
        assert_eq!(
            texts("a == b <= c => d != e"),
            ["a", "==", "b", "<=", "c", "=>", "d", "!=", "e"]
        );
        assert_eq!(texts("x += 1; y = 2"), ["x", "+=", "1", ";", "y", "=", "2"]);
        // `>>` stays split so nested generics close one level at a time.
        assert_eq!(texts("Vec<Vec<u8>>"), ["Vec", "<", "Vec", "<", "u8", ">", ">"]);
    }

    // -- the raw-string regression suite (the old stripper's bug) -----

    #[test]
    fn raw_string_with_interior_quote_is_one_token() {
        // The old stripper terminated at `"hi` and leaked `.unwrap()`
        // into the matched text.
        let src = r##"let s = r#"say "hi".unwrap()"# ; s.len()"##;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert!(toks[3].1.contains("unwrap"), "literal text stays inside the token");
        assert_eq!(toks[4].1, ";");
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("unwrap"), "stripped view must not leak literal contents");
    }

    #[test]
    fn raw_string_hash_counts_must_match() {
        let src = "r##\"a \"# b\"## + r\"plain\" + r#\"q\"#";
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert_eq!(strs[0].1, "r##\"a \"# b\"##");
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        assert_eq!(texts("r#match"), ["r", "#", "match"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" b'x' br#"raw"#"##);
        assert_eq!(toks[0], (TokenKind::Str, "b\"bytes\"".to_string()));
        assert_eq!(toks[1], (TokenKind::Char, "b'x'".to_string()));
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    // -- nested block comments (the other old-stripper hazard) --------

    #[test]
    fn nested_block_comments_stay_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(texts(src), ["a", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn block_comment_lines_advance_line_numbers() {
        let src = "/* one\ntwo\nthree */ fn f() {}\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0], Token { kind: TokenKind::Ident, text: "fn".into(), line: 3 });
        let let_tok = lexed.tokens.iter().find(|t| t.text == "let").expect("let token");
        assert_eq!(let_tok.line, 4);
    }

    #[test]
    fn multiline_strings_advance_line_numbers() {
        let src = "let s = \"a\nb\nc\";\nfn g() {}";
        let lexed = lex(src);
        let f = lexed.tokens.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let nl = '\\n'; let u = '_'; }");
        let lifes: Vec<_> =
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).map(|t| t.1.clone()).collect();
        assert_eq!(lifes, ["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|t| t.0 == TokenKind::Char).map(|t| t.1.clone()).collect();
        assert_eq!(chars, ["'q'", "'\\n'", "'_'"]);
        assert_eq!(kinds("'static")[0].0, TokenKind::Lifetime);
    }

    #[test]
    fn numbers_with_radix_suffix_and_ranges() {
        assert_eq!(
            texts("0xFFu8 1_000 1.5e-3f64 1..2 x.0"),
            ["0xFFu8", "1_000", "1.5e-3f64", "1", "..", "2", "x", ".", "0"]
        );
    }

    #[test]
    fn comments_are_kept_with_their_lines() {
        let src = "// LOCK ORDER: a -> b\nfn f() {} // trailing SAFETY: no\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("LOCK ORDER"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn comments_between_covers_block_spans() {
        let src = "/* SAFETY:\nspans\nlines */\nunsafe {}";
        let lexed = lex(src);
        assert!(lexed.comments_between(3, 3).any(|c| c.text.contains("SAFETY")));
        assert!(lexed.comments_between(4, 4).next().is_none());
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"unterminated", "r#\"open", "/* open", "'", "b\"", "r###", "0x", "1e"] {
            let _ = lex(src);
            let _ = strip_comments_and_strings(src);
        }
    }

    #[test]
    fn stripping_never_leaks_literal_or_comment_text() {
        let src = concat!(
            "//! use std::sync::Arc; parking_lot too\n",
            "// std::thread::spawn in prose\n",
            "fn f() { let _ = \"std::sync::Mutex .unwrap() unsafe\"; }\n",
            "/* unsafe { } crossbeam_channel */\n",
            "let r = r#\".unwrap() in raw\"#;\n",
        );
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("unwrap"), "{stripped}");
        assert!(!stripped.contains("std::sync"), "{stripped}");
        assert!(!stripped.contains("crossbeam"), "{stripped}");
        assert!(stripped.contains("fn f"), "{stripped}");
        assert_eq!(stripped.lines().count(), src.lines().count(), "line structure preserved");
    }
}
