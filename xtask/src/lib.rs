//! Workspace automation tasks (`cargo xtask …`).
//!
//! The crate is dependency-free by design: everything here builds with
//! `std` alone so the analyzer can run in hermetic environments (no
//! registry access) and stays fast enough to gate CI.

pub mod analyze;
pub mod ast;
pub mod chaos;
pub mod json;
pub mod lexer;
pub mod lock_order;
pub mod parser;
pub mod passes;
pub mod topology;
