//! Lock-order analysis: extracts a lock acquisition graph from nested
//! `.lock()` scopes across `crates/runtime`, `crates/transport` and
//! `crates/poll`, cross-checks it against the `LOCK ORDER:` comments,
//! and fails on any cycle or undeclared edge.
//!
//! ## Model
//!
//! Locks are identified by the *name* of the place being locked — the
//! last field/path segment before `.lock()` (`self.inner.queue.lock()`
//! → `queue`). Name-based identity is what makes the graph global:
//! the same mutex reached from two files unifies, and two different
//! mutexes that share a name conservatively unify too (a false *merge*
//! can only add edges, never hide one).
//!
//! Guard lifetimes follow Rust's scoping rules, intraprocedurally:
//!
//! - `let g = m.lock();` holds `m` until the end of the enclosing
//!   block (or an explicit `drop(g)`).
//! - A `.lock()` buried deeper in an expression (`m.lock().push(x)`)
//!   is a temporary: held to the end of the statement.
//! - `if`/`while` condition temporaries release before the branch
//!   body; `match` scrutinee and `for` iterator temporaries live for
//!   the whole construct (as in the language).
//!
//! Every acquisition made while another lock is held records a
//! `held → new` edge. Edges come only from non-`#[cfg(test)]` code;
//! the *annotation requirement* (any locking file must carry a
//! `LOCK ORDER:` comment) covers test code too, matching the PR-4
//! rule.
//!
//! ## Annotation grammar
//!
//! The annotation is the comment block starting at the line containing
//! `LOCK ORDER:` plus immediately following comment lines. Two forms:
//!
//! - **Leaf declaration** — prose containing `leaf`, `no locks`,
//!   `no mutexes`, `single lock` or `never nested`: the file promises
//!   to never hold two locks at once. Any discovered edge violates it.
//! - **Edge declarations** — `a -> b` (chains `a -> b -> c` allowed):
//!   the file's nesting discipline. Discovered edges must each be
//!   declared; declared edges join the global graph even if currently
//!   unexercised, so stale annotations that *would* deadlock still
//!   fail the cycle check.

use crate::ast::{visit_fns, Block, Expr, File, Stmt};
use crate::lexer::Lexed;
use crate::passes::Violation;

/// Files subject to the lock-order analysis.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/runtime/src")
        || rel.starts_with("crates/transport/src")
        || rel.starts_with("crates/poll/src")
}

/// A discovered `from → to` acquisition edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
}

/// Everything the per-file extraction learns; [`check`] combines the
/// facts of all files into the global verdict.
#[derive(Debug, Default)]
pub struct LockFacts {
    pub rel: String,
    /// Any `.lock()` call anywhere in the file, tests included —
    /// triggers the annotation requirement.
    pub locks_anywhere: bool,
    pub annotated: bool,
    pub leaf_only: bool,
    pub declared: Vec<(String, String)>,
    pub edges: Vec<Edge>,
    /// Same-name nesting, caught during extraction.
    pub violations: Vec<Violation>,
}

pub fn extract(rel: &str, file: &File, lexed: &Lexed) -> LockFacts {
    let mut facts = LockFacts { rel: rel.to_string(), ..LockFacts::default() };
    if !in_scope(rel) {
        // Out-of-scope files (benches, sims, the model-checker's own
        // internals) contribute nothing to the lock graph.
        return facts;
    }

    // `.lock()` presence at token level (tests, macros, everything).
    for w in lexed.tokens.windows(4) {
        if w[0].text == "." && w[1].text == "lock" && w[2].text == "(" && w[3].text == ")" {
            facts.locks_anywhere = true;
            break;
        }
    }

    parse_annotation(lexed, &mut facts);

    let mut path = Vec::new();
    visit_fns(&file.items, false, &mut path, &mut |_, _, body, in_test| {
        if in_test {
            return;
        }
        let mut scanner = Scanner {
            rel,
            held: Vec::new(),
            sticky: None,
            edges: &mut facts.edges,
            violations: &mut facts.violations,
        };
        scanner.block(body);
    });
    facts
}

fn parse_annotation(lexed: &Lexed, facts: &mut LockFacts) {
    let Some(pos) = lexed.comments.iter().position(|c| c.text.contains("LOCK ORDER:")) else {
        return;
    };
    facts.annotated = true;
    let mut text = String::new();
    let mut prev_line = lexed.comments[pos].line;
    text.push_str(lexed.comments[pos].text.split("LOCK ORDER:").nth(1).unwrap_or(""));
    for c in &lexed.comments[pos + 1..] {
        if c.line > prev_line + 1 {
            break;
        }
        prev_line = c.line;
        text.push(' ');
        text.push_str(&c.text);
    }
    let lower = text.to_lowercase();
    facts.leaf_only = ["leaf", "no locks", "no mutexes", "single lock", "never nested"]
        .iter()
        .any(|needle| lower.contains(needle));
    // Edge declarations: `a -> b` (chains allowed). Words are the
    // identifier-ish runs on either side of each arrow.
    let mut rest = text.as_str();
    while let Some(idx) = rest.find("->") {
        let lhs = ident_before(&rest[..idx]);
        let rhs = ident_after(&rest[idx + 2..]);
        if let (Some(a), Some(b)) = (lhs, rhs) {
            facts.declared.push((a, b));
        }
        rest = &rest[idx + 2..];
    }
}

fn ident_before(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let start =
        trimmed.rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).map_or(0, |i| i + 1);
    let word = &trimmed[start..];
    (!word.is_empty()).then(|| word.to_string())
}

fn ident_after(s: &str) -> Option<String> {
    let trimmed = s.trim_start();
    let end =
        trimmed.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')).unwrap_or(trimmed.len());
    let word = &trimmed[..end];
    (!word.is_empty()).then(|| word.to_string())
}

/// A lock currently held at this point of the scan.
struct Held {
    lock: String,
    guards: Vec<String>,
    /// Block-scoped (`let g = m.lock()`) vs statement temporary.
    sticky: bool,
    released: bool,
}

struct Scanner<'a> {
    rel: &'a str,
    held: Vec<Held>,
    /// Pointer identity of the expression whose `.lock()` result is
    /// being `let`-bound — that acquisition becomes block-scoped.
    sticky: Option<(*const Expr, Vec<String>)>,
    edges: &'a mut Vec<Edge>,
    violations: &'a mut Vec<Violation>,
}

impl Scanner<'_> {
    fn block(&mut self, b: &Block) {
        let base = self.held.len();
        for stmt in &b.stmts {
            let stmt_base = self.held.len();
            match stmt {
                Stmt::Let { names, init, else_block, .. } => {
                    if let Some(init) = init {
                        let root = strip_wrappers(init);
                        if is_lock_call(root) {
                            self.sticky = Some((root as *const Expr, names.clone()));
                        }
                        self.expr(init);
                        self.sticky = None;
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => self.expr(e),
                Stmt::Item(_) => {}
            }
            self.release_temps(stmt_base);
        }
        self.held.truncate(base);
    }

    /// Drops non-sticky (temporary) acquisitions made at or above
    /// `from` on the held stack.
    fn release_temps(&mut self, from: usize) {
        let mut i = from;
        while i < self.held.len() {
            if self.held[i].sticky {
                i += 1;
            } else {
                self.held.remove(i);
            }
        }
    }

    fn acquire(&mut self, lock: String, line: usize, sticky: bool, guards: Vec<String>) {
        for h in self.held.iter().filter(|h| !h.released) {
            if h.lock == lock {
                self.violations.push(Violation {
                    file: self.rel.to_string(),
                    line,
                    rule: "lock-order",
                    message: format!(
                        "`{lock}` locked while already held (self-deadlock with one thread)"
                    ),
                });
            } else {
                self.edges.push(Edge {
                    from: h.lock.clone(),
                    to: lock.clone(),
                    file: self.rel.to_string(),
                    line,
                });
            }
        }
        self.held.push(Held { lock, guards, sticky, released: false });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::MethodCall { recv, name, args, line } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                if name == "lock" && args.is_empty() {
                    let lock = lock_name(recv);
                    let sticky = self
                        .sticky
                        .as_ref()
                        .is_some_and(|(ptr, _)| std::ptr::eq(*ptr, e as *const Expr));
                    let guards = if sticky {
                        self.sticky.as_ref().map(|(_, g)| g.clone()).unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    self.acquire(lock, *line, sticky, guards);
                }
            }
            Expr::Call { callee, args, .. } => {
                // `drop(guard)` releases a held lock by guard name.
                if let (Expr::Path { segs, .. }, [Expr::Path { segs: arg, .. }]) =
                    (callee.as_ref(), args.as_slice())
                {
                    if segs.last().is_some_and(|s| s == "drop") && arg.len() == 1 {
                        let g = &arg[0];
                        if let Some(h) =
                            self.held.iter_mut().rev().find(|h| h.guards.iter().any(|n| n == g))
                        {
                            h.released = true;
                            return;
                        }
                    }
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Index { recv, index, .. } => {
                self.expr(recv);
                self.expr(index);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
                self.expr(expr);
            }
            Expr::Block(b) | Expr::Unsafe { block: b, .. } | Expr::Loop { body: b, .. } => {
                self.block(b);
            }
            Expr::If { cond, then, els, .. } => {
                let before = self.held.len();
                self.expr(cond);
                // Condition temporaries drop before the branch runs.
                self.release_temps(before);
                self.block(then);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            Expr::While { cond, body, .. } => {
                let before = self.held.len();
                self.expr(cond);
                self.release_temps(before);
                self.block(body);
            }
            Expr::For { iter, body, .. } => {
                // The iterator temporary lives for the whole loop.
                self.expr(iter);
                self.block(body);
            }
            Expr::Match { scrutinee, arms, .. } => {
                // Scrutinee temporaries live across the arms.
                self.expr(scrutinee);
                for arm in arms {
                    let before = self.held.len();
                    self.expr(arm);
                    self.release_temps(before);
                }
            }
            Expr::Closure { body, .. } => {
                // Analyzed as if called inline under the current held
                // set — conservative for closures that run elsewhere,
                // exact for the `map/retain/with` idioms.
                let before = self.held.len();
                self.expr(body);
                self.held.truncate(before);
            }
            Expr::Macro { parts, .. } => {
                for p in parts {
                    self.expr(p);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.expr(i);
                }
            }
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    self.expr(f);
                }
            }
            Expr::Jump { value: Some(v), .. } => self.expr(v),
            Expr::Path { .. }
            | Expr::Lit { .. }
            | Expr::Jump { value: None, .. }
            | Expr::Raw { .. } => {}
        }
    }
}

/// Strips the layers that don't change which expression produces the
/// bound value (`let g = m.lock()?;` still binds the guard… close
/// enough: `?` on a guard is not an idiom here, but `&`/casts are).
fn strip_wrappers(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            strip_wrappers(expr)
        }
        _ => e,
    }
}

fn is_lock_call(e: &Expr) -> bool {
    matches!(e, Expr::MethodCall { name, args, .. } if name == "lock" && args.is_empty())
}

/// The identity of the locked place: the innermost meaningful name in
/// the receiver chain.
fn lock_name(recv: &Expr) -> String {
    match recv {
        Expr::Field { name, .. } => name.clone(),
        Expr::Path { segs, .. } => segs.last().cloned().unwrap_or_else(|| "?".into()),
        Expr::MethodCall { name, .. } => name.clone(),
        Expr::Call { callee, .. } => lock_name(callee),
        Expr::Index { recv, .. }
        | Expr::Unary { expr: recv, .. }
        | Expr::Try { expr: recv, .. }
        | Expr::Cast { expr: recv, .. } => lock_name(recv),
        _ => "?".to_string(),
    }
}

/// The global verdict over every file's facts: annotation presence,
/// per-file edge/leaf conformance, and the whole-workspace cycle
/// check over declared ∪ discovered edges.
pub fn check(all: &[LockFacts]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut graph: Vec<(String, String, String, usize)> = Vec::new(); // from, to, file, line

    for facts in all {
        out.extend(facts.violations.iter().cloned());
        if facts.locks_anywhere && !facts.annotated {
            out.push(Violation {
                file: facts.rel.clone(),
                line: 1,
                rule: "lock-order",
                message: "file takes a Mutex but has no `LOCK ORDER:` comment".to_string(),
            });
        }
        for e in &facts.edges {
            if facts.leaf_only {
                out.push(Violation {
                    file: e.file.clone(),
                    line: e.line,
                    rule: "lock-order",
                    message: format!(
                        "nested acquisition `{} -> {}` contradicts this file's leaf-only \
                         LOCK ORDER annotation",
                        e.from, e.to
                    ),
                });
            } else if !facts.declared.iter().any(|(a, b)| a == &e.from && b == &e.to) {
                out.push(Violation {
                    file: e.file.clone(),
                    line: e.line,
                    rule: "lock-order",
                    message: format!(
                        "undeclared lock edge `{} -> {}`; declare it in the LOCK ORDER comment",
                        e.from, e.to
                    ),
                });
            }
            graph.push((e.from.clone(), e.to.clone(), e.file.clone(), e.line));
        }
        for (a, b) in &facts.declared {
            graph.push((a.clone(), b.clone(), facts.rel.clone(), 1));
        }
    }

    if let Some(cycle) = find_cycle(&graph) {
        out.push(Violation {
            file: cycle.1,
            line: cycle.2,
            rule: "lock-order",
            message: format!(
                "lock acquisition cycle across the workspace: {} (declared ∪ discovered edges)",
                cycle.0
            ),
        });
    }
    out
}

/// DFS cycle detection over the name graph. Returns the cycle rendered
/// as `a -> b -> a` plus a witness file/line.
fn find_cycle(graph: &[(String, String, String, usize)]) -> Option<(String, String, usize)> {
    let mut nodes: Vec<&str> = Vec::new();
    for (a, b, _, _) in graph {
        if !nodes.contains(&a.as_str()) {
            nodes.push(a);
        }
        if !nodes.contains(&b.as_str()) {
            nodes.push(b);
        }
    }
    nodes.sort_unstable();
    let index = |n: &str| nodes.iter().position(|&x| x == n).unwrap_or(usize::MAX);
    let n = nodes.len();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        v: usize,
        nodes: &[&str],
        graph: &[(String, String, String, usize)],
        index: &dyn Fn(&str) -> usize,
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<(Vec<usize>, String, usize)> {
        state[v] = 1;
        stack.push(v);
        for (a, b, file, line) in graph {
            if index(a) != v {
                continue;
            }
            let w = index(b);
            if state[w] == 1 {
                let start = stack.iter().position(|&x| x == w).unwrap_or(0);
                let mut cycle = stack[start..].to_vec();
                cycle.push(w);
                return Some((cycle, file.clone(), *line));
            }
            if state[w] == 0 {
                if let Some(found) = dfs(w, nodes, graph, index, state, stack) {
                    return Some(found);
                }
            }
        }
        stack.pop();
        state[v] = 2;
        None
    }

    for v in 0..n {
        if state[v] == 0 {
            if let Some((cycle, file, line)) = dfs(v, &nodes, graph, &index, &mut state, &mut stack)
            {
                let text = cycle.iter().map(|&i| nodes[i]).collect::<Vec<_>>().join(" -> ");
                return Some((text, file, line));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn facts(rel: &str, src: &str) -> LockFacts {
        let lexed = lex(src);
        let file = parse(&lexed);
        assert_eq!(file.gaps, 0, "fixture must parse cleanly:\n{src}");
        extract(rel, &file, &lexed)
    }

    fn edge_pairs(f: &LockFacts) -> Vec<(String, String)> {
        f.edges.iter().map(|e| (e.from.clone(), e.to.clone())).collect()
    }

    #[test]
    fn guard_bindings_hold_until_block_end() {
        let f = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: a -> b\nfn f() { let g = self.a.lock(); self.b.lock().push(1); }\n",
        );
        assert_eq!(edge_pairs(&f), [("a".to_string(), "b".to_string())]);
        assert!(f.violations.is_empty());
    }

    #[test]
    fn statement_temporaries_release_at_semicolon() {
        let f = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: leaf only.\nfn f() { self.a.lock().push(1); self.b.lock().push(2); }\n",
        );
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
// LOCK ORDER: leaf only (guards dropped before the next lock).
fn f() {
    let g = self.a.lock();
    g.push(1);
    drop(g);
    self.b.lock().push(2);
}
";
        let f = facts("crates/runtime/src/x.rs", src);
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn same_name_nesting_is_a_self_deadlock() {
        let f = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: q only.\nfn f() { let g = self.q.lock(); self.q.lock().push(1); }\n",
        );
        assert_eq!(f.violations.len(), 1, "{f:?}");
        assert!(f.violations[0].message.contains("self-deadlock"));
    }

    #[test]
    fn temporaries_within_one_statement_do_nest() {
        let f = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: a -> b\nfn f() { merge(self.a.lock().v, self.b.lock().v); }\n",
        );
        assert_eq!(edge_pairs(&f), [("a".to_string(), "b".to_string())]);
    }

    #[test]
    fn test_code_contributes_no_edges_but_does_demand_the_annotation() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { let a = x.lock(); let b = y.lock(); }
}
";
        let f = facts("crates/runtime/src/x.rs", src);
        assert!(f.edges.is_empty());
        assert!(f.locks_anywhere);
        assert!(!f.annotated);
        let vs = check(&[f]);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("no `LOCK ORDER:`"));
    }

    #[test]
    fn leaf_annotations_reject_any_nesting() {
        let f = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: single lock, never nested.\nfn f() { let g = a.lock(); b.lock().push(1); }\n",
        );
        let vs = check(&[f]);
        assert!(vs.iter().any(|v| v.message.contains("leaf-only")), "{vs:?}");
    }

    #[test]
    fn undeclared_edges_are_flagged_and_declared_ones_pass() {
        let bad = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: registry -> history\nfn f() { let g = registry.lock(); journal.lock().push(1); }\n",
        );
        let vs = check(&[bad]);
        assert!(
            vs.iter().any(|v| v.message.contains("undeclared lock edge `registry -> journal`")),
            "{vs:?}"
        );
        let good = facts(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: registry -> journal\nfn f() { let g = registry.lock(); journal.lock().push(1); }\n",
        );
        assert!(check(&[good]).is_empty());
    }

    #[test]
    fn cross_file_ab_ba_cycle_is_detected() {
        // The acceptance-criteria scenario: file 1 locks A then B,
        // file 2 locks B then A — both locally declared, globally
        // deadlock-prone.
        let f1 = facts(
            "crates/runtime/src/one.rs",
            "// LOCK ORDER: alpha -> beta\nfn f() { let g = alpha.lock(); beta.lock().push(1); }\n",
        );
        let f2 = facts(
            "crates/transport/src/two.rs",
            "// LOCK ORDER: beta -> alpha\nfn g() { let h = beta.lock(); alpha.lock().push(1); }\n",
        );
        let vs = check(&[f1, f2]);
        let cycle = vs.iter().find(|v| v.message.contains("cycle")).expect("cycle detected");
        assert!(
            cycle.message.contains("alpha -> beta -> alpha")
                || cycle.message.contains("beta -> alpha -> beta"),
            "{}",
            cycle.message
        );
    }

    #[test]
    fn declared_but_unexercised_cycles_still_fail() {
        // Stale annotations form the cycle on their own.
        let mut f1 = LockFacts { rel: "a.rs".into(), annotated: true, ..Default::default() };
        f1.declared.push(("x".into(), "y".into()));
        let mut f2 = LockFacts { rel: "b.rs".into(), annotated: true, ..Default::default() };
        f2.declared.push(("y".into(), "x".into()));
        let vs = check(&[f1, f2]);
        assert!(vs.iter().any(|v| v.message.contains("cycle")), "{vs:?}");
    }

    #[test]
    fn annotation_chains_declare_multiple_edges() {
        let f = facts("crates/runtime/src/x.rs", "// LOCK ORDER: a -> b -> c\nfn f() {}\n");
        assert_eq!(
            f.declared,
            [("a".to_string(), "b".to_string()), ("b".to_string(), "c".to_string())]
        );
    }

    #[test]
    fn lock_names_resolve_through_fields_calls_and_paths() {
        let src = "\
// LOCK ORDER: queue -> STATS -> stdout
fn f() {
    let g = self.inner.queue.lock();
    let s = STATS.lock();
    let o = std::io::stdout().lock();
}
";
        let f = facts("crates/runtime/src/x.rs", src);
        assert_eq!(
            edge_pairs(&f),
            [
                ("queue".to_string(), "STATS".to_string()),
                ("queue".to_string(), "stdout".to_string()),
                ("STATS".to_string(), "stdout".to_string()),
            ]
        );
    }

    #[test]
    fn condition_temporaries_do_not_leak_into_the_branch() {
        let src = "\
// LOCK ORDER: leaf only.
fn f() {
    if self.a.lock().is_empty() {
        self.b.lock().push(1);
    }
}
";
        let f = facts("crates/runtime/src/x.rs", src);
        assert!(edge_pairs(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn for_iterator_locks_are_held_for_the_loop_body() {
        let src = "\
// LOCK ORDER: subs -> waker
fn f() {
    for s in self.subs.lock().iter() {
        s.waker.lock().wake();
    }
}
";
        let f = facts("crates/runtime/src/x.rs", src);
        assert_eq!(edge_pairs(&f), [("subs".to_string(), "waker".to_string())]);
    }
}
