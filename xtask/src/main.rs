//! `cargo xtask lint` — the repository's custom static-analysis pass —
//! plus `cargo xtask assert-chaos <report.json>`, the CI-side schema
//! and invariant check over the chaos gauntlet's JSON report.
//!
//! Five rules, all of them invariants the compiler cannot express:
//!
//! 1. **Shim discipline** (`shim`): no `std::sync::*`, `std::thread`,
//!    `crossbeam_channel` or `parking_lot` references in
//!    `crates/runtime/src` or `crates/transport/src` — every
//!    concurrency primitive must come through `rcm_sync`, so the whole
//!    runtime (transport included: the loom job compiles it as a
//!    runtime dependency) stays model-checkable under `--cfg loom`.
//!    `std::net` is deliberately *not* banned: sockets are the
//!    transport crate's whole job and loom has no model for them.
//! 2. **Hot-path panic freedom** (`hot-path`): no `.unwrap()` /
//!    `.expect(` in the evaluator, registry, history or `ad/*` modules
//!    of `rcm-core`, nor in the transport's wire codec and batch
//!    policy ([`TRANSPORT_HOT_PATH`] — they run per frame on every
//!    link), outside their `#[cfg(test)]` tails — a poisoned alert or
//!    malformed frame must surface as a value, not a node crash. The
//!    runtime and transport crates additionally ban `.unwrap()`
//!    everywhere (use `.expect` with a message).
//! 3. **Unsafe allowlist** (`unsafe`): the `unsafe` keyword may appear
//!    only in the audited files listed in [`UNSAFE_ALLOWLIST`]; new
//!    unsafe code requires updating the allowlist in the same PR, which
//!    makes it reviewable.
//! 4. **Lock-order annotations** (`lock-order`): every runtime source
//!    file that takes a `Mutex` must carry a `LOCK ORDER:` comment
//!    stating its ordering discipline, so deadlock reasoning is local.
//! 5. **Event-loop discipline** (`event-loop`): nothing under
//!    `crates/transport/src/engine/` may block the loop thread — no
//!    blocking connects, no socket timeouts, no `thread::sleep`, no
//!    locks, no `write_all`/`read_exact` retry loops. Deadlines belong
//!    on the timer wheel; partial I/O parks as a state-machine
//!    continuation; cross-thread state is atomics plus the submit
//!    queue ([`ENGINE_NEEDLES`]).
//!
//! Comments and string literals are stripped before matching, so prose
//! and panic messages never trip a rule. The scanner is deliberately
//! line-oriented and dependency-free: it must run in seconds on CI and
//! build with nothing but std.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain the `unsafe` keyword, with the reason.
/// Adding a file here is a reviewable act: do it in the PR that adds
/// the unsafe code, alongside its `// SAFETY:` comments.
const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[
    ("crates/core/src/inline.rs", "MaybeUninit small-vector storage; SAFETY-audited, Miri-covered"),
    (
        "crates/poll/src/sys.rs",
        "raw epoll/kqueue/poll/fcntl syscalls behind safe wrappers; the \
         crate root stays deny(unsafe_code)",
    ),
];

/// rcm-core modules on the alert hot path (panic-free zone).
const HOT_PATH: &[&str] =
    &["crates/core/src/evaluator.rs", "crates/core/src/registry.rs", "crates/core/src/history.rs"];

/// Transport modules on the wire hot path: the codec runs per frame on
/// every link, so it counts malformed input and encode failures
/// instead of panicking. Same rule as [`HOT_PATH`].
const TRANSPORT_HOT_PATH: &[&str] =
    &["crates/transport/src/wire.rs", "crates/transport/src/batch.rs"];

/// Evaluation-pipeline modules on the per-update hot path: the worker
/// rings, the dispatcher/sequencer, and the latency histogram's
/// allocation-free record path all run once per admitted update, so a
/// panic there kills a shard worker mid-stream. Same rule as
/// [`HOT_PATH`].
const PIPELINE_HOT_PATH: &[&str] =
    &["crates/runtime/src/pipeline.rs", "crates/sync/src/spsc.rs", "crates/core/src/latency.rs"];

const RUNTIME_SRC: &str = "crates/runtime/src";

/// The socket transport obeys the same shim discipline as the runtime:
/// it is compiled under `--cfg loom` as an `rcm-runtime` dependency, so
/// any direct `std::sync`/`std::thread` use would silently escape the
/// model checker.
const TRANSPORT_SRC: &str = "crates/transport/src";

/// The evented engine's home: one readiness loop that must never
/// block. Everything here runs on the loop thread, so one blocking
/// call stalls every link in the process.
const ENGINE_SRC: &str = "crates/transport/src/engine/";

/// Constructs that block (or hide blocking) a readiness loop, with the
/// non-blocking idiom each must use instead.
const ENGINE_NEEDLES: &[(&str, &str)] = &[
    ("TcpStream::connect(", "blocking connect; use rcm_poll::sys::connect_nonblocking"),
    ("connect_timeout(", "blocking connect; use rcm_poll::sys::connect_nonblocking"),
    (".set_read_timeout(", "socket timeouts block; deadlines belong on the timer wheel"),
    (".set_write_timeout(", "socket timeouts block; deadlines belong on the timer wheel"),
    ("thread::sleep(", "a sleeping loop thread stalls every link; park a wheel timer"),
    (".lock()", "no locks on the loop; cross-thread state is atomics + the submit queue"),
    ("write_all(", "a blocking write loop; park the remainder as a continuation state"),
    ("read_exact(", "a blocking read loop; buffer the partial frame in the source"),
];

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => lint(),
        Some("assert-chaos") => match args.get(1) {
            Some(path) => assert_chaos(Path::new(path)),
            None => {
                eprintln!("usage: cargo xtask assert-chaos <chaos.json>");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint, assert-chaos");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // xtask lives at <repo>/xtask, so the repo root is one level up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repository")
        .to_path_buf();
    let violations = run_all_rules(&root);
    if violations.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn run_all_rules(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in rust_files(&root.join("crates")) {
        let rel = file
            .strip_prefix(root)
            .expect("walked file is under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let raw = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    file: rel,
                    line: 0,
                    rule: "io",
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let stripped = strip_comments_and_strings(&raw);
        violations.extend(check_file(&rel, &raw, &stripped));
    }
    violations
}

/// Every rule, applied to one file. Code rules match against the
/// comment/string-stripped text; the lock-order rule looks for its
/// annotation in the raw text (the annotation *is* a comment).
/// Separated from I/O so the negative tests below can feed synthetic
/// sources straight in.
fn check_file(rel: &str, raw: &str, stripped: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_runtime = rel.starts_with(RUNTIME_SRC) || rel.starts_with(TRANSPORT_SRC);
    let hot_path = HOT_PATH.contains(&rel)
        || TRANSPORT_HOT_PATH.contains(&rel)
        || PIPELINE_HOT_PATH.contains(&rel)
        || rel.starts_with("crates/core/src/ad/");

    if in_runtime {
        for (idx, line) in stripped.lines().enumerate() {
            for needle in ["std::sync::", "std::thread", "crossbeam_channel", "parking_lot"] {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "shim",
                        message: format!("`{needle}` bypasses rcm_sync; import the shim instead"),
                    });
                }
            }
            if line.contains(".unwrap()") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "hot-path",
                    message: "`.unwrap()` in the runtime; use `.expect(\"why\")`".to_string(),
                });
            }
        }
        if stripped.contains(".lock()") && !raw.contains("LOCK ORDER:") {
            out.push(Violation {
                file: rel.to_string(),
                line: 1,
                rule: "lock-order",
                message: "file takes a Mutex but has no `LOCK ORDER:` comment".to_string(),
            });
        }
    }

    if rel.starts_with(ENGINE_SRC) {
        for (idx, line) in stripped.lines().enumerate() {
            for &(needle, why) in ENGINE_NEEDLES {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "event-loop",
                        message: format!("`{needle}` — {why}"),
                    });
                }
            }
        }
    }

    if hot_path {
        // Repo convention: the `#[cfg(test)] mod tests` block is the
        // file's tail, so everything after the first `#[cfg(test)]` is
        // test code and exempt.
        for (idx, line) in stripped.lines().enumerate() {
            // Both spellings of the test-module gate: plain and the
            // loom-aware `#[cfg(all(test, not(loom)))]`.
            if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
                break;
            }
            for needle in [".unwrap()", ".expect("] {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "hot-path",
                        message: format!(
                            "`{needle}` on the alert hot path; return the error or assert the \
                             invariant explicitly"
                        ),
                    });
                }
            }
        }
    }

    if !UNSAFE_ALLOWLIST.iter().any(|&(allowed, _)| allowed == rel) {
        for (idx, line) in stripped.lines().enumerate() {
            if contains_word(line, "unsafe") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "unsafe",
                    message: "`unsafe` outside the audited allowlist (see xtask/src/main.rs)"
                        .to_string(),
                });
            }
        }
    }

    out
}

/// Whether `word` occurs in `line` with non-identifier characters (or
/// the line boundary) on both sides — so `unsafe_code` in a lint
/// attribute does not count as the keyword `unsafe`.
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let ok_before = begin == 0 || !is_ident(bytes[begin - 1]);
        let ok_after = end == bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        start = begin + 1;
    }
    false
}

/// Recursively collects `.rs` files, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // `target/` never lives inside crates/, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Replaces comments and string/char-literal contents with spaces,
/// preserving newlines so violation line numbers stay true.
fn strip_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal (raw strings are handled by the same
                // escape-free walk when prefixed r/r#: the `#` and `r`
                // pass through harmlessly as normal chars).
                let raw = i > 0 && (bytes[i - 1] == b'r' || bytes[i - 1] == b'#');
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if !raw && bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a
                // few bytes; a lifetime has no closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes.get(i + 2).and_then(|_| {
                        (i + 3..(i + 6).min(bytes.len())).find(|&j| bytes[j] == b'\'')
                    })
                } else {
                    // `'x'` only — `'ab` is a lifetime.
                    (bytes.get(i + 2) == Some(&b'\'')).then_some(i + 2)
                };
                if let Some(end) = close {
                    out.push(b'\'');
                    out.resize(out.len() + (end - i - 1), b' ');
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("stripping preserves UTF-8 (non-ASCII only inside spans)")
}

// ---------------------------------------------------------------------
// assert-chaos: the CI gate over the chaos gauntlet's JSON report.
// Replaces the inline Python that used to live in ci.yml, so the
// assertions are compiled, unit-tested, and versioned with the schema
// they check.
// ---------------------------------------------------------------------

fn assert_chaos(path: &Path) -> ExitCode {
    let raw = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask assert-chaos: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("xtask assert-chaos: {} is not valid JSON: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let problems = check_chaos_report(&doc);
    if problems.is_empty() {
        let runs = doc.get("runs").and_then(json::Json::as_arr).map_or(0, <[_]>::len);
        println!("xtask assert-chaos: schema and invariants hold over {runs} run(s)");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("{}: {p}", path.display());
        }
        eprintln!("xtask assert-chaos: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

/// Every invariant the chaos report must satisfy. Mirrors what the
/// simulator promises: per-link transport counters in the totals and
/// in every run, a socket smoke that matched the in-process pipeline,
/// and live engine counters proving the evented loop actually ran.
fn check_chaos_report(doc: &json::Json) -> Vec<String> {
    use json::Json;
    let mut out = Vec::new();
    let num = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_num);

    let Some(totals) = doc.get("totals") else {
        return vec!["missing `totals` object".to_string()];
    };
    for key in [
        "front_frames_dropped",
        "backlink_reconnects",
        "front_frames_sent",
        "front_updates_sent",
        "front_bytes_sent",
        "updates_per_datagram",
        "engine_wakeups",
        "engine_timer_fires",
        "engine_spurious_readiness",
        "updates_shed",
        "latency_p50_ns",
        "latency_p99_ns",
        "latency_p999_ns",
    ] {
        if totals.get(key).is_none() {
            out.push(format!("totals missing `{key}`"));
        }
    }
    let updates = num(totals, "front_updates_sent").unwrap_or(-1.0);
    let frames = num(totals, "front_frames_sent").unwrap_or(-1.0);
    if !(updates >= frames && frames > 0.0) {
        out.push(format!(
            "expected front_updates_sent >= front_frames_sent > 0, got {updates} and {frames}"
        ));
    }
    if num(totals, "engine_wakeups").unwrap_or(0.0) <= 0.0 {
        out.push("engine_wakeups is zero — the evented socket smoke never polled".to_string());
    }
    let p50 = num(totals, "latency_p50_ns").unwrap_or(0.0);
    let p999 = num(totals, "latency_p999_ns").unwrap_or(0.0);
    if p999 < p50 {
        out.push(format!("latency percentiles not monotone: p999 {p999} < p50 {p50}"));
    }

    match doc.get("socket_smoke") {
        None => out.push("missing `socket_smoke` (evented loopback vs in-process)".to_string()),
        Some(smoke) => {
            match smoke.get("violations").and_then(Json::as_arr) {
                None => out.push("socket_smoke missing `violations` array".to_string()),
                Some(v) if !v.is_empty() => {
                    out.push(format!("socket smoke reported {} violation(s)", v.len()));
                }
                Some(_) => {}
            }
            if smoke.get("transport").is_none() {
                out.push("socket_smoke missing `transport` report".to_string());
            }
        }
    }

    match doc.get("runs").and_then(Json::as_arr) {
        None => out.push("missing `runs` array".to_string()),
        Some([]) => out.push("`runs` is empty".to_string()),
        Some(runs) => {
            for (i, run) in runs.iter().enumerate() {
                let Some(t) = run.get("transport") else {
                    out.push(format!("run {i}: missing `transport`"));
                    continue;
                };
                for key in ["mode", "front_links", "ingress", "back_links", "ad"] {
                    if t.get(key).is_none() {
                        out.push(format!("run {i}: transport missing `{key}`"));
                    }
                }
                match t.get("front_links").and_then(Json::as_arr) {
                    None | Some([]) => {
                        out.push(format!("run {i}: drives no front links"));
                    }
                    Some(links) => {
                        // Each entry is a `[dm, ce, stats]` triple.
                        for link in links {
                            let stats = link.as_arr().and_then(|triple| triple.get(2));
                            let complete = ["updates_sent", "bytes_sent"]
                                .iter()
                                .all(|k| stats.is_some_and(|s| s.get(k).is_some()));
                            if !complete {
                                out.push(format!("run {i}: front link lacks per-link counters"));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// A dependency-free JSON reader — just enough for the chaos report.
/// xtask builds with nothing but std (it gates CI before any cache is
/// warm), so pulling serde here is not an option.
mod json {
    /// A parsed JSON value. Numbers are `f64` — every counter the
    /// chaos report carries fits losslessly below 2^53.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup; `None` for non-objects.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { b: src.as_bytes(), i: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(value)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.b.get(self.i).is_some_and(|b| b" \t\r\n".contains(b)) {
                self.i += 1;
            }
        }

        fn eat(&mut self, byte: u8) -> Result<(), String> {
            self.skip_ws();
            if self.b.get(self.i) == Some(&byte) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at offset {}", byte as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.keyword("true", Json::Bool(true)),
                Some(b'f') => self.keyword("false", Json::Bool(false)),
                Some(b'n') => self.keyword("null", Json::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(value)
            } else {
                Err(format!("bad keyword at offset {}", self.i))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            while self.b.get(self.i).is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b)) {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.b.get(self.i) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .b
                                    .get(self.i + 1..self.i + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("bad \\u escape")?;
                                // Surrogate pairs don't occur in the
                                // report; map them to U+FFFD.
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            Some(&c) => out.push(c as char),
                            None => return Err("unterminated escape".to_string()),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte.
                        let rest = std::str::from_utf8(&self.b[self.i..])
                            .map_err(|_| "invalid UTF-8".to_string())?;
                        let ch = rest.chars().next().expect("non-empty by match arm");
                        out.push(ch);
                        self.i += ch.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.eat(b':')?;
                pairs.push((key, self.value()?));
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, src, &strip_comments_and_strings(src))
    }

    // ---- negative tests: each rule demonstrably fires --------------

    #[test]
    fn shim_rule_catches_direct_std_sync() {
        let bad = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2, "{got:?}");
    }

    #[test]
    fn shim_rule_catches_bypassing_the_shim_crates() {
        let bad = "use crossbeam_channel::unbounded;\nuse parking_lot::Mutex;\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2);
    }

    #[test]
    fn shim_rule_covers_the_transport_crate() {
        // The transport crate ships real sockets but still may not
        // bypass rcm_sync: the loom job compiles it too.
        let bad = "use std::thread;\nfn f(m: &std::sync::Mutex<u8>) { m.lock(); }\n";
        let got = check("crates/transport/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2, "{got:?}");
        assert!(got.iter().any(|v| v.rule == "lock-order"), "{got:?}");
        // std::net stays legal there — sockets are the point.
        let ok = "use std::net::UdpSocket;\nfn f(s: &UdpSocket) { let _ = s; }\n";
        assert!(check("crates/transport/src/fine.rs", ok).is_empty());
    }

    #[test]
    fn runtime_unwrap_is_flagged_even_in_tests() {
        let bad = "fn f() { Some(1).unwrap(); }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert!(got.iter().any(|v| v.rule == "hot-path"), "{got:?}");
    }

    #[test]
    fn hot_path_rule_catches_unwrap_and_expect() {
        let bad = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"oops\"); }\n";
        for file in ["crates/core/src/registry.rs", "crates/core/src/ad/ad1.rs"] {
            let got = check(file, bad);
            assert_eq!(got.iter().filter(|v| v.rule == "hot-path").count(), 2, "{file}");
        }
    }

    #[test]
    fn hot_path_rule_covers_the_wire_codec() {
        // The frame codec runs per datagram on every link: `.expect(`
        // is banned outside the test tail, exactly as in rcm-core's
        // hot-path modules.
        let bad = "fn f() { y.expect(\"oops\"); }\n";
        for file in ["crates/transport/src/wire.rs", "crates/transport/src/batch.rs"] {
            let got = check(file, bad);
            assert!(got.iter().any(|v| v.rule == "hot-path"), "{file}: {got:?}");
        }
        // The links themselves may expect() — only unwrap() is banned
        // crate-wide.
        let ok = "fn f() { y.expect(\"socket closed\"); }\n";
        assert!(check("crates/transport/src/udp.rs", ok).is_empty());
    }

    #[test]
    fn hot_path_rule_exempts_the_test_tail() {
        let ok = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(check("crates/core/src/registry.rs", ok).is_empty());
    }

    #[test]
    fn hot_path_rule_covers_the_evaluation_pipeline() {
        // The worker rings, dispatcher/sequencer, and histogram record
        // path run once per admitted update: `.expect(` is banned
        // outside the test tail, like every other hot-path module.
        let bad = "fn f() { y.expect(\"oops\"); }\n";
        for file in [
            "crates/runtime/src/pipeline.rs",
            "crates/sync/src/spsc.rs",
            "crates/core/src/latency.rs",
        ] {
            let got = check(file, bad);
            assert!(got.iter().any(|v| v.rule == "hot-path"), "{file}: {got:?}");
        }
        // The loom-aware test-tail spelling exempts test code too.
        let ok = "fn f() {}\n#[cfg(all(test, not(loom)))]\nmod tests {\n fn t() { x.expect(\"t\"); }\n}\n";
        assert!(check("crates/sync/src/spsc.rs", ok).is_empty());
    }

    #[test]
    fn pipeline_worker_files_obey_the_shim_discipline() {
        // A worker or sequencer thread spawned outside rcm_sync would
        // silently escape the loom model checker.
        let bad = "fn f() { std::thread::spawn(|| {}); }\n";
        let got = check("crates/runtime/src/pipeline.rs", bad);
        assert!(got.iter().any(|v| v.rule == "shim"), "{got:?}");
    }

    #[test]
    fn unsafe_rule_catches_new_unsafe() {
        let bad = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let got = check("crates/core/src/history.rs", bad);
        assert!(got.iter().any(|v| v.rule == "unsafe"), "{got:?}");
    }

    #[test]
    fn unsafe_rule_honors_the_allowlist() {
        let audited = "fn f() { unsafe { ptr.read() } }\n";
        let got = check("crates/core/src/inline.rs", audited);
        assert!(!got.iter().any(|v| v.rule == "unsafe"));
    }

    #[test]
    fn lock_order_rule_requires_the_annotation() {
        let bad = "fn f(m: &Mutex<u32>) { *m.lock() += 1; }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert!(got.iter().any(|v| v.rule == "lock-order"));
        let ok =
            "// LOCK ORDER: single lock, never nested.\nfn f(m: &Mutex<u32>) { *m.lock() += 1; }\n";
        assert!(check("crates/runtime/src/evil.rs", ok).is_empty());
    }

    #[test]
    fn event_loop_rule_catches_every_blocking_idiom() {
        let seeded = [
            "fn f() { let _ = TcpStream::connect(addr); }\n",
            "fn f() { let _ = TcpStream::connect_timeout(&addr, d); }\n",
            "fn f(s: &TcpStream) { s.set_read_timeout(Some(d)); }\n",
            "fn f(s: &TcpStream) { s.set_write_timeout(Some(d)); }\n",
            "fn f() { rcm_sync::thread::sleep(d); }\n",
            "fn f(m: &Mutex<u8>) { m.lock(); }\n",
            "fn f(s: &mut TcpStream) { s.write_all(&buf); }\n",
            "fn f(s: &mut TcpStream) { s.read_exact(&mut buf); }\n",
        ];
        for bad in seeded {
            let got = check("crates/transport/src/engine/evil.rs", bad);
            assert!(got.iter().any(|v| v.rule == "event-loop"), "missed: {bad}");
        }
    }

    #[test]
    fn event_loop_rule_scopes_to_the_engine_directory() {
        // The threaded reference implementation lives one level up and
        // blocks on purpose — the rule must not leak onto it.
        let threaded = "fn f(s: &mut TcpStream) { s.write_all(&buf); }\n";
        let got = check("crates/transport/src/tcp.rs", threaded);
        assert!(!got.iter().any(|v| v.rule == "event-loop"), "{got:?}");
        // And non-blocking engine code sails through.
        let ok = "fn f(s: &mut TcpStream) { let n = s.write(&buf)?; }\n";
        assert!(check("crates/transport/src/engine/fine.rs", ok).is_empty());
    }

    // ---- assert-chaos: the report gate fires on tampered reports ----

    /// A minimal report satisfying every invariant `assert_chaos`
    /// checks — the tamper tests below each break one field.
    fn good_report() -> String {
        r#"{
          "totals": {
            "front_frames_dropped": 3, "backlink_reconnects": 1,
            "front_frames_sent": 10, "front_updates_sent": 20,
            "front_bytes_sent": 400, "updates_per_datagram": 2.0,
            "engine_wakeups": 90, "engine_timer_fires": 2,
            "engine_spurious_readiness": 0,
            "updates_shed": 0, "latency_p50_ns": 800,
            "latency_p99_ns": 4000, "latency_p999_ns": 9000
          },
          "socket_smoke": { "violations": [], "transport": { "mode": "Sockets" } },
          "runs": [
            { "plan": 0, "transport": {
                "mode": "Sockets", "ingress": [], "back_links": [], "ad": {},
                "front_links": [[0, 1, { "updates_sent": 20, "bytes_sent": 400 }]]
            } }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn chaos_gate_accepts_a_complete_report() {
        let doc = json::parse(&good_report()).expect("fixture parses");
        assert_eq!(check_chaos_report(&doc), Vec::<String>::new());
    }

    #[test]
    fn chaos_gate_rejects_tampered_reports() {
        let tampers = [
            ("\"engine_wakeups\": 90", "\"engine_wakeups\": 0"),
            ("\"front_updates_sent\": 20,", ""),
            ("\"violations\": []", "\"violations\": [\"displayed mismatch\"]"),
            (
                "\"front_links\": [[0, 1, { \"updates_sent\": 20, \"bytes_sent\": 400 }]]",
                "\"front_links\": []",
            ),
            ("\"bytes_sent\": 400 }]]", "\"seen\": 400 }]]"),
            ("\"runs\": [", "\"trials\": ["),
            ("\"updates_shed\": 0,", ""),
            ("\"latency_p99_ns\": 4000,", ""),
            ("\"latency_p999_ns\": 9000", "\"latency_p999_ns\": 10"),
        ];
        for (from, to) in tampers {
            let tampered = good_report().replace(from, to);
            assert_ne!(tampered, good_report(), "tamper `{from}` did not apply");
            let doc = json::parse(&tampered).expect("still valid JSON");
            assert!(!check_chaos_report(&doc).is_empty(), "tamper `{from}` passed the gate");
        }
    }

    #[test]
    fn json_reader_handles_the_report_grammar() {
        use json::Json;
        let doc = json::parse(r#"{"a": [1, -2.5, true, null, "s\nA"], "b": {}}"#).expect("parses");
        let arr = doc.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Str("s\nA".to_string()));
        assert_eq!(doc.get("b"), Some(&Json::Obj(Vec::new())));
        assert!(json::parse("{\"unterminated\": ").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    // ---- false-positive guards -------------------------------------

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let ok = concat!(
            "//! use std::sync::Arc; parking_lot too\n",
            "// std::thread::spawn in prose\n",
            "fn f() { let _ = \"std::sync::Mutex .unwrap() unsafe\"; }\n",
            "/* unsafe { } crossbeam_channel */\n",
        );
        assert!(check("crates/runtime/src/fine.rs", ok).is_empty(), "prose is not code");
    }

    #[test]
    fn unsafe_code_attribute_is_not_the_keyword() {
        let ok = "#![deny(unsafe_code)]\n#![allow(unsafe_code)]\n";
        assert!(check("crates/core/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let s = strip_comments_and_strings("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("'a"), "{s}");
        let c = strip_comments_and_strings("let q = 'q'; let nl = '\\n';");
        assert!(!c.contains('q') || c.starts_with("let q"), "{c}");
    }

    #[test]
    fn rules_scope_to_their_crates() {
        // std::sync is fine outside the runtime crate.
        let ok = "use std::sync::Arc;\nfn f() { x.unwrap(); }\n";
        assert!(check("crates/sim/src/lib.rs", ok).is_empty());
    }

    // ---- whole-tree run: the lint must pass on this repository -----

    #[test]
    fn the_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("repo root").to_path_buf();
        let violations = run_all_rules(&root);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
