//! `cargo xtask lint` — the repository's custom static-analysis pass.
//!
//! Four rules, all of them invariants the compiler cannot express:
//!
//! 1. **Shim discipline** (`shim`): no `std::sync::*`, `std::thread`,
//!    `crossbeam_channel` or `parking_lot` references in
//!    `crates/runtime/src` or `crates/transport/src` — every
//!    concurrency primitive must come through `rcm_sync`, so the whole
//!    runtime (transport included: the loom job compiles it as a
//!    runtime dependency) stays model-checkable under `--cfg loom`.
//!    `std::net` is deliberately *not* banned: sockets are the
//!    transport crate's whole job and loom has no model for them.
//! 2. **Hot-path panic freedom** (`hot-path`): no `.unwrap()` /
//!    `.expect(` in the evaluator, registry, history or `ad/*` modules
//!    of `rcm-core`, nor in the transport's wire codec and batch
//!    policy ([`TRANSPORT_HOT_PATH`] — they run per frame on every
//!    link), outside their `#[cfg(test)]` tails — a poisoned alert or
//!    malformed frame must surface as a value, not a node crash. The
//!    runtime and transport crates additionally ban `.unwrap()`
//!    everywhere (use `.expect` with a message).
//! 3. **Unsafe allowlist** (`unsafe`): the `unsafe` keyword may appear
//!    only in the audited files listed in [`UNSAFE_ALLOWLIST`]; new
//!    unsafe code requires updating the allowlist in the same PR, which
//!    makes it reviewable.
//! 4. **Lock-order annotations** (`lock-order`): every runtime source
//!    file that takes a `Mutex` must carry a `LOCK ORDER:` comment
//!    stating its ordering discipline, so deadlock reasoning is local.
//!
//! Comments and string literals are stripped before matching, so prose
//! and panic messages never trip a rule. The scanner is deliberately
//! line-oriented and dependency-free: it must run in seconds on CI and
//! build with nothing but std.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain the `unsafe` keyword, with the reason.
/// Adding a file here is a reviewable act: do it in the PR that adds
/// the unsafe code, alongside its `// SAFETY:` comments.
const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[(
    "crates/core/src/inline.rs",
    "MaybeUninit small-vector storage; SAFETY-audited, Miri-covered",
)];

/// rcm-core modules on the alert hot path (panic-free zone).
const HOT_PATH: &[&str] =
    &["crates/core/src/evaluator.rs", "crates/core/src/registry.rs", "crates/core/src/history.rs"];

/// Transport modules on the wire hot path: the codec runs per frame on
/// every link, so it counts malformed input and encode failures
/// instead of panicking. Same rule as [`HOT_PATH`].
const TRANSPORT_HOT_PATH: &[&str] =
    &["crates/transport/src/wire.rs", "crates/transport/src/batch.rs"];

const RUNTIME_SRC: &str = "crates/runtime/src";

/// The socket transport obeys the same shim discipline as the runtime:
/// it is compiled under `--cfg loom` as an `rcm-runtime` dependency, so
/// any direct `std::sync`/`std::thread` use would silently escape the
/// model checker.
const TRANSPORT_SRC: &str = "crates/transport/src";

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    // xtask lives at <repo>/xtask, so the repo root is one level up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repository")
        .to_path_buf();
    let violations = run_all_rules(&root);
    if violations.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn run_all_rules(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in rust_files(&root.join("crates")) {
        let rel = file
            .strip_prefix(root)
            .expect("walked file is under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let raw = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    file: rel,
                    line: 0,
                    rule: "io",
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let stripped = strip_comments_and_strings(&raw);
        violations.extend(check_file(&rel, &raw, &stripped));
    }
    violations
}

/// Every rule, applied to one file. Code rules match against the
/// comment/string-stripped text; the lock-order rule looks for its
/// annotation in the raw text (the annotation *is* a comment).
/// Separated from I/O so the negative tests below can feed synthetic
/// sources straight in.
fn check_file(rel: &str, raw: &str, stripped: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_runtime = rel.starts_with(RUNTIME_SRC) || rel.starts_with(TRANSPORT_SRC);
    let hot_path = HOT_PATH.contains(&rel)
        || TRANSPORT_HOT_PATH.contains(&rel)
        || rel.starts_with("crates/core/src/ad/");

    if in_runtime {
        for (idx, line) in stripped.lines().enumerate() {
            for needle in ["std::sync::", "std::thread", "crossbeam_channel", "parking_lot"] {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "shim",
                        message: format!("`{needle}` bypasses rcm_sync; import the shim instead"),
                    });
                }
            }
            if line.contains(".unwrap()") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "hot-path",
                    message: "`.unwrap()` in the runtime; use `.expect(\"why\")`".to_string(),
                });
            }
        }
        if stripped.contains(".lock()") && !raw.contains("LOCK ORDER:") {
            out.push(Violation {
                file: rel.to_string(),
                line: 1,
                rule: "lock-order",
                message: "file takes a Mutex but has no `LOCK ORDER:` comment".to_string(),
            });
        }
    }

    if hot_path {
        // Repo convention: the `#[cfg(test)] mod tests` block is the
        // file's tail, so everything after the first `#[cfg(test)]` is
        // test code and exempt.
        for (idx, line) in stripped.lines().enumerate() {
            if line.contains("#[cfg(test)]") {
                break;
            }
            for needle in [".unwrap()", ".expect("] {
                if line.contains(needle) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "hot-path",
                        message: format!(
                            "`{needle}` on the alert hot path; return the error or assert the \
                             invariant explicitly"
                        ),
                    });
                }
            }
        }
    }

    if !UNSAFE_ALLOWLIST.iter().any(|&(allowed, _)| allowed == rel) {
        for (idx, line) in stripped.lines().enumerate() {
            if contains_word(line, "unsafe") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "unsafe",
                    message: "`unsafe` outside the audited allowlist (see xtask/src/main.rs)"
                        .to_string(),
                });
            }
        }
    }

    out
}

/// Whether `word` occurs in `line` with non-identifier characters (or
/// the line boundary) on both sides — so `unsafe_code` in a lint
/// attribute does not count as the keyword `unsafe`.
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let ok_before = begin == 0 || !is_ident(bytes[begin - 1]);
        let ok_after = end == bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        start = begin + 1;
    }
    false
}

/// Recursively collects `.rs` files, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // `target/` never lives inside crates/, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Replaces comments and string/char-literal contents with spaces,
/// preserving newlines so violation line numbers stay true.
fn strip_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal (raw strings are handled by the same
                // escape-free walk when prefixed r/r#: the `#` and `r`
                // pass through harmlessly as normal chars).
                let raw = i > 0 && (bytes[i - 1] == b'r' || bytes[i - 1] == b'#');
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if !raw && bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a
                // few bytes; a lifetime has no closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes.get(i + 2).and_then(|_| {
                        (i + 3..(i + 6).min(bytes.len())).find(|&j| bytes[j] == b'\'')
                    })
                } else {
                    // `'x'` only — `'ab` is a lifetime.
                    (bytes.get(i + 2) == Some(&b'\'')).then_some(i + 2)
                };
                if let Some(end) = close {
                    out.push(b'\'');
                    out.resize(out.len() + (end - i - 1), b' ');
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("stripping preserves UTF-8 (non-ASCII only inside spans)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_file(rel, src, &strip_comments_and_strings(src))
    }

    // ---- negative tests: each rule demonstrably fires --------------

    #[test]
    fn shim_rule_catches_direct_std_sync() {
        let bad = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2, "{got:?}");
    }

    #[test]
    fn shim_rule_catches_bypassing_the_shim_crates() {
        let bad = "use crossbeam_channel::unbounded;\nuse parking_lot::Mutex;\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2);
    }

    #[test]
    fn shim_rule_covers_the_transport_crate() {
        // The transport crate ships real sockets but still may not
        // bypass rcm_sync: the loom job compiles it too.
        let bad = "use std::thread;\nfn f(m: &std::sync::Mutex<u8>) { m.lock(); }\n";
        let got = check("crates/transport/src/evil.rs", bad);
        assert_eq!(got.iter().filter(|v| v.rule == "shim").count(), 2, "{got:?}");
        assert!(got.iter().any(|v| v.rule == "lock-order"), "{got:?}");
        // std::net stays legal there — sockets are the point.
        let ok = "use std::net::UdpSocket;\nfn f(s: &UdpSocket) { let _ = s; }\n";
        assert!(check("crates/transport/src/fine.rs", ok).is_empty());
    }

    #[test]
    fn runtime_unwrap_is_flagged_even_in_tests() {
        let bad = "fn f() { Some(1).unwrap(); }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert!(got.iter().any(|v| v.rule == "hot-path"), "{got:?}");
    }

    #[test]
    fn hot_path_rule_catches_unwrap_and_expect() {
        let bad = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"oops\"); }\n";
        for file in ["crates/core/src/registry.rs", "crates/core/src/ad/ad1.rs"] {
            let got = check(file, bad);
            assert_eq!(got.iter().filter(|v| v.rule == "hot-path").count(), 2, "{file}");
        }
    }

    #[test]
    fn hot_path_rule_covers_the_wire_codec() {
        // The frame codec runs per datagram on every link: `.expect(`
        // is banned outside the test tail, exactly as in rcm-core's
        // hot-path modules.
        let bad = "fn f() { y.expect(\"oops\"); }\n";
        for file in ["crates/transport/src/wire.rs", "crates/transport/src/batch.rs"] {
            let got = check(file, bad);
            assert!(got.iter().any(|v| v.rule == "hot-path"), "{file}: {got:?}");
        }
        // The links themselves may expect() — only unwrap() is banned
        // crate-wide.
        let ok = "fn f() { y.expect(\"socket closed\"); }\n";
        assert!(check("crates/transport/src/udp.rs", ok).is_empty());
    }

    #[test]
    fn hot_path_rule_exempts_the_test_tail() {
        let ok = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(check("crates/core/src/registry.rs", ok).is_empty());
    }

    #[test]
    fn unsafe_rule_catches_new_unsafe() {
        let bad = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let got = check("crates/core/src/history.rs", bad);
        assert!(got.iter().any(|v| v.rule == "unsafe"), "{got:?}");
    }

    #[test]
    fn unsafe_rule_honors_the_allowlist() {
        let audited = "fn f() { unsafe { ptr.read() } }\n";
        let got = check("crates/core/src/inline.rs", audited);
        assert!(!got.iter().any(|v| v.rule == "unsafe"));
    }

    #[test]
    fn lock_order_rule_requires_the_annotation() {
        let bad = "fn f(m: &Mutex<u32>) { *m.lock() += 1; }\n";
        let got = check("crates/runtime/src/evil.rs", bad);
        assert!(got.iter().any(|v| v.rule == "lock-order"));
        let ok =
            "// LOCK ORDER: single lock, never nested.\nfn f(m: &Mutex<u32>) { *m.lock() += 1; }\n";
        assert!(check("crates/runtime/src/evil.rs", ok).is_empty());
    }

    // ---- false-positive guards -------------------------------------

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let ok = concat!(
            "//! use std::sync::Arc; parking_lot too\n",
            "// std::thread::spawn in prose\n",
            "fn f() { let _ = \"std::sync::Mutex .unwrap() unsafe\"; }\n",
            "/* unsafe { } crossbeam_channel */\n",
        );
        assert!(check("crates/runtime/src/fine.rs", ok).is_empty(), "prose is not code");
    }

    #[test]
    fn unsafe_code_attribute_is_not_the_keyword() {
        let ok = "#![deny(unsafe_code)]\n#![allow(unsafe_code)]\n";
        assert!(check("crates/core/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let s = strip_comments_and_strings("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("'a"), "{s}");
        let c = strip_comments_and_strings("let q = 'q'; let nl = '\\n';");
        assert!(!c.contains('q') || c.starts_with("let q"), "{c}");
    }

    #[test]
    fn rules_scope_to_their_crates() {
        // std::sync is fine outside the runtime crate.
        let ok = "use std::sync::Arc;\nfn f() { x.unwrap(); }\n";
        assert!(check("crates/sim/src/lib.rs", ok).is_empty());
    }

    // ---- whole-tree run: the lint must pass on this repository -----

    #[test]
    fn the_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("repo root").to_path_buf();
        let violations = run_all_rules(&root);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
