//! `cargo xtask analyze` — the repository's AST-level static analyzer —
//! plus `cargo xtask assert-chaos <report.json>`, the CI-side schema
//! and invariant check over the chaos gauntlet's JSON report.
//!
//! The analyzer lexes and parses every source file (xtask/src/lexer.rs,
//! xtask/src/parser.rs — dependency-free, std only) and runs six pass
//! families over the ASTs:
//!
//! 1. **Shim discipline** (`shim`): no `std::sync`, `std::thread`,
//!    `crossbeam_channel` or `parking_lot` reachable from
//!    `crates/runtime/src` or `crates/transport/src` — resolved from
//!    real `use` trees and path expressions, so the whole runtime
//!    stays model-checkable under `--cfg loom`.
//! 2. **Hot-path panic freedom** (`hot-path`): no `.unwrap()` /
//!    `.expect(` / unchecked slice indexing / unproven division on the
//!    per-update and per-frame hot paths, with real `#[cfg(test)]`
//!    scope tracking instead of the old "everything after the first
//!    test attribute" heuristic.
//! 3. **Unsafe audit** (`unsafe`): the `unsafe` keyword may appear only
//!    in allowlisted files, and every occurrence there must carry a
//!    `SAFETY:` comment within the preceding few lines.
//! 4. **Event-loop discipline** (`event-loop`): nothing under
//!    `crates/transport/src/engine/` may block the loop thread —
//!    detected at call-expression level, not by substring.
//! 5. **Lock order** (`lock-order`): every file that takes a `Mutex`
//!    declares its discipline in a `LOCK ORDER:` comment; nested
//!    guard scopes are traced to a lock acquisition graph, which must
//!    match the declarations and stay acyclic across the workspace.
//! 6. **Concurrency topology** (`topology`): the spawn/channel/ring
//!    graph is extracted to `TOPOLOGY.json`; bounded handoffs must
//!    have a shed/backpressure path and be loom-modeled, and the
//!    committed artifact must not drift.
//!
//! `cargo xtask lint` remains as a deprecated alias so stale CI
//! configs and muscle memory keep working.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze;
use xtask::chaos;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") | None => run_analyze(&args[args.len().min(1)..]),
        Some("lint") => {
            eprintln!("note: `xtask lint` is deprecated; use `xtask analyze`");
            run_analyze(&args[1..])
        }
        Some("assert-chaos") => match args.get(1) {
            Some(path) => chaos::assert_chaos(Path::new(path)),
            None => {
                eprintln!("usage: cargo xtask assert-chaos <chaos.json>");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: analyze, assert-chaos");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut write_topology = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write-topology" => write_topology = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown analyze flag `{other}`; available: --write-topology, --root");
                return ExitCode::from(2);
            }
        }
    }
    // xtask lives at <repo>/xtask, so the repo root is one level up;
    // `--root` exists for the self-tests and the tamper-rejection CI
    // step, which analyze synthetic trees.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask sits inside the repository")
            .to_path_buf()
    });

    let mut report = analyze::analyze_tree(&root);
    if write_topology {
        if let Err(e) = std::fs::write(root.join(analyze::TOPOLOGY_PATH), &report.topology) {
            eprintln!("cannot write {}: {e}", analyze::TOPOLOGY_PATH);
            return ExitCode::from(2);
        }
        println!("xtask analyze: wrote {}", analyze::TOPOLOGY_PATH);
    } else if let Some(drift) = analyze::check_topology_drift(&root, &report.topology) {
        report.violations.push(drift);
    }

    if report.violations.is_empty() {
        println!("xtask analyze: clean ({} files)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!("xtask analyze: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}
