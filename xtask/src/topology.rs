//! Concurrency-topology extraction: the spawn/channel/SPSC-ring graph
//! of the runtime, transport and poll crates — who spawns what, who
//! sends to whom, bounded vs unbounded — emitted as a deterministic
//! JSON document (`TOPOLOGY.json`) and checked for two invariants:
//!
//! 1. **Every bounded ring has a shed or backpressure path.** A
//!    bounded queue with no `shed`/`push_wait`/`is_full` discipline in
//!    its file silently turns into either a deadlock or an unbounded
//!    queue, depending on which bug you wrote.
//! 2. **Bounded handoffs are loom-modeled.** Each bounded channel kind
//!    must appear in the model-checking corpus
//!    (`crates/runtime/tests/loom.rs`, `crates/sync/tests/model.rs`);
//!    a new handoff primitive that nobody modeled is exactly the code
//!    this workspace's whole correctness story says must not exist.
//!
//! Extraction is intraprocedural and name-based, like the lock pass:
//! a channel is a `spsc::ring(…)` / `chan::unbounded()` /
//! `SubmitQueue::new()` construction site; its producer/consumer are
//! the spawn targets whose closures capture the respective endpoint
//! (directly, or via a local collection the endpoint was `push`ed
//! into). Endpoints that stay with the constructing function are
//! reported as `caller`. Test code (`#[cfg(test)]` scopes) is
//! excluded — the graph is the production topology.

use std::collections::BTreeSet;

use crate::ast::{visit_fns, walk_block, walk_expr, Block, Expr, File, Stmt};
use crate::lexer::{Lexed, TokenKind};
use crate::passes::Violation;

/// Files whose topology is extracted. The sync crate is deliberately
/// out: it *provides* the primitives (its internals would read as
/// phantom channels), it does not participate in the graph.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/runtime/src")
        || rel.starts_with("crates/transport/src")
        || rel.starts_with("crates/poll/src")
}

/// Files whose identifier set forms the loom-model corpus.
pub fn is_corpus(rel: &str) -> bool {
    rel.ends_with("tests/loom.rs") || rel.ends_with("tests/model.rs")
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Spawn {
    pub file: String,
    pub fn_path: String,
    pub target: String,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Channel {
    pub file: String,
    pub fn_path: String,
    /// `spsc.ring` | `chan.unbounded` | `submit.queue`.
    pub kind: String,
    pub bounded: bool,
    /// Rendered capacity expression for bounded rings.
    pub capacity: Option<String>,
    pub producer: String,
    pub consumer: String,
    /// How the bounded ring behaves at capacity (`shed`,
    /// `backpressure`, `bounded-check`) — `None` when nothing in the
    /// file handles fullness.
    pub full_policy: Option<String>,
    pub loom_modeled: bool,
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct FileTopology {
    pub spawns: Vec<Spawn>,
    pub channels: Vec<Channel>,
}

/// One channel-endpoint pair bound by a `let`, e.g.
/// `let (tx, rx) = spsc::ring(cap)`.
struct Site {
    kind: &'static str,
    bounded: bool,
    capacity: Option<String>,
    tx: Option<String>,
    rx: Option<String>,
    line: usize,
}

fn classify(callee_segs: &[String]) -> Option<(&'static str, bool)> {
    let last = callee_segs.last().map(String::as_str)?;
    let prev = callee_segs.len().checked_sub(2).map(|i| callee_segs[i].as_str());
    match (prev, last) {
        (_, "ring") => Some(("spsc.ring", true)),
        (_, "unbounded") => Some(("chan.unbounded", false)),
        (Some("SubmitQueue"), "new") => Some(("submit.queue", false)),
        _ => None,
    }
}

pub fn extract(rel: &str, file: &File, lexed: &Lexed) -> FileTopology {
    let mut topo = FileTopology::default();
    if !in_scope(rel) {
        return topo;
    }
    let full_policy = file_full_policy(lexed);

    let mut path = Vec::new();
    visit_fns(&file.items, false, &mut path, &mut |path, name, body, in_test| {
        if in_test {
            return;
        }
        let fn_path = if path.is_empty() {
            name.to_string()
        } else {
            format!("{}::{}", path.join("::"), name)
        };
        scan_fn(rel, &fn_path, body, &full_policy, &mut topo);
    });
    topo
}

/// The file's at-capacity discipline, by identifier evidence: any
/// `shed`-flavored name wins (pre-admission load shedding), then
/// blocking `push_wait`, then a bare `is_full` check.
fn file_full_policy(lexed: &Lexed) -> Option<String> {
    let has = |pred: &dyn Fn(&str) -> bool| {
        lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident && pred(&t.text))
    };
    if has(&|t| t.contains("shed")) {
        Some("shed".to_string())
    } else if has(&|t| t == "push_wait") {
        Some("backpressure".to_string())
    } else if has(&|t| t == "is_full") {
        Some("bounded-check".to_string())
    } else {
        None
    }
}

fn scan_fn(
    rel: &str,
    fn_path: &str,
    body: &Block,
    full_policy: &Option<String>,
    topo: &mut FileTopology,
) {
    let mut sites: Vec<Site> = Vec::new();
    let mut spawns: Vec<(String, String)> = Vec::new(); // target, closure text
    let mut aliases: Vec<(String, String)> = Vec::new(); // collection -> endpoint

    // Pass 1: every `let` destructure anywhere in the body, keyed by
    // the pointer of its initializer's root expression — so a ring
    // constructed inside a `for` loop still gets its endpoint names.
    let mut lets: Vec<(*const Expr, &[String])> = Vec::new();
    collect_lets(body, &mut lets);

    // Pass 2: channel constructions, spawns, and push-aliases.
    scan_block(body, &lets, &mut sites, &mut spawns, &mut aliases);

    for (target, _) in &spawns {
        topo.spawns.push(Spawn {
            file: rel.to_string(),
            fn_path: fn_path.to_string(),
            target: target.clone(),
        });
    }

    // An endpoint reaches a spawned thread if the closure text
    // mentions the endpoint (or a collection it was pushed into).
    let owner_of = |endpoint: &Option<String>| -> String {
        let Some(name) = endpoint else { return "?".to_string() };
        let mut needles: Vec<&str> = vec![name];
        needles.extend(aliases.iter().filter(|(_, e)| e == name).map(|(coll, _)| coll.as_str()));
        for (target, text) in &spawns {
            if needles.iter().any(|n| contains_word(text, n)) {
                return target.clone();
            }
        }
        "caller".to_string()
    };

    for site in sites {
        topo.channels.push(Channel {
            file: rel.to_string(),
            fn_path: fn_path.to_string(),
            kind: site.kind.to_string(),
            bounded: site.bounded,
            capacity: site.capacity,
            producer: owner_of(&site.tx),
            consumer: owner_of(&site.rx),
            full_policy: if site.bounded { full_policy.clone() } else { None },
            loom_modeled: false, // filled in by `assemble`
            line: site.line,
        });
    }
}

/// Records `(init-root pointer, bound names)` for every `let` with an
/// initializer, at any nesting depth. The fn body's own statements are
/// recorded directly; blocks owned by control-flow expressions are
/// found via [`walk_expr`], which visits each owning node exactly once.
fn collect_lets<'a>(body: &'a Block, out: &mut Vec<(*const Expr, &'a [String])>) {
    fn shallow<'a>(b: &'a Block, out: &mut Vec<(*const Expr, &'a [String])>) {
        for stmt in &b.stmts {
            if let Stmt::Let { names, init: Some(init), .. } = stmt {
                out.push((strip(init), names));
            }
        }
    }
    shallow(body, out);
    walk_block(body, &mut |e| match e {
        Expr::Block(b)
        | Expr::Unsafe { block: b, .. }
        | Expr::Loop { body: b, .. }
        | Expr::While { body: b, .. }
        | Expr::For { body: b, .. }
        | Expr::If { then: b, .. } => shallow(b, out),
        _ => {}
    });
}

fn scan_block(
    body: &Block,
    lets: &[(*const Expr, &[String])],
    sites: &mut Vec<Site>,
    spawns: &mut Vec<(String, String)>,
    aliases: &mut Vec<(String, String)>,
) {
    walk_block(body, &mut |e| match e {
        Expr::Call { callee, args, line } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                // Channel construction.
                if let Some((kind, bounded)) = classify(segs) {
                    // Endpoints only when this call is the direct
                    // initializer of a two-name `let` destructure.
                    let here = e as *const Expr;
                    let names = lets.iter().find(|(p, _)| std::ptr::eq(*p, here));
                    let (tx, rx) = match names {
                        Some((_, names)) if names.len() == 2 => {
                            (Some(names[0].clone()), Some(names[1].clone()))
                        }
                        _ => (None, None),
                    };
                    sites.push(Site {
                        kind,
                        bounded,
                        capacity: (kind == "spsc.ring")
                            .then(|| args.first().map(Expr::render).unwrap_or_default()),
                        tx,
                        rx,
                        line: *line,
                    });
                }
                // Thread spawn.
                let tail: Vec<&str> = segs.iter().rev().take(2).rev().map(String::as_str).collect();
                if tail == ["thread", "spawn"] {
                    let (target, text) = spawn_target(args.first());
                    spawns.push((target, text));
                }
            }
        }
        // `coll.push(endpoint)` — remember the alias so a spawn that
        // captures the collection counts as capturing the endpoint.
        Expr::MethodCall { recv, name, args, .. } if name == "push" && args.len() == 1 => {
            if let (Some(coll), Expr::Path { segs, .. }) = (leaf_name(recv), &args[0]) {
                if segs.len() == 1 {
                    aliases.push((coll, segs[0].clone()));
                }
            }
        }
        _ => {}
    });
}

fn strip(e: &Expr) -> *const Expr {
    match e {
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => strip(expr),
        _ => e as *const Expr,
    }
}

fn leaf_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => segs.last().cloned(),
        Expr::Field { name, .. } => Some(name.clone()),
        _ => None,
    }
}

/// The human-readable target of a spawn: the root call of the closure
/// body when there is one (`worker_body`, `el.run()`), otherwise a
/// compact render. The second return is the spawn argument's
/// space-joined identifier set, used for endpoint-capture matching
/// (`render` collapses closures, so it cannot serve here).
fn spawn_target(arg: Option<&Expr>) -> (String, String) {
    let Some(arg) = arg else { return ("?".to_string(), String::new()) };
    let mut idents = Vec::new();
    walk_expr(arg, &mut |e| match e {
        Expr::Path { segs, .. } => idents.extend(segs.iter().cloned()),
        Expr::Field { name, .. } | Expr::MethodCall { name, .. } => idents.push(name.clone()),
        _ => {}
    });
    let text = idents.join(" ");
    let target = match arg {
        Expr::Closure { body, .. } => match body.as_ref() {
            Expr::Call { callee, .. } => callee.render(),
            Expr::MethodCall { recv, name, .. } => format!("{}.{}", recv.render(), name),
            Expr::Block(b) => block_target(b),
            other => other.render(),
        },
        other => other.render(),
    };
    (target, text)
}

/// For `move || { …statements… }` spawns: the first call target inside
/// the block, or `block` when the body is loop-shaped.
fn block_target(b: &Block) -> String {
    for stmt in &b.stmts {
        let e = match stmt {
            Stmt::Expr(e) => e,
            Stmt::Let { init: Some(e), .. } => e,
            _ => continue,
        };
        let mut found = None;
        walk_expr(e, &mut |x| {
            if found.is_none() {
                match x {
                    Expr::Call { callee, .. } => found = Some(callee.render()),
                    Expr::MethodCall { recv, name, .. } => {
                        found = Some(format!("{}.{}", recv.render(), name));
                    }
                    _ => {}
                }
            }
        });
        if let Some(t) = found {
            return t;
        }
    }
    "block".to_string()
}

fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let ok_before = begin == 0 || !is_ident(bytes[begin - 1]);
        let ok_after = end == bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        start = begin + 1;
    }
    false
}

/// Combines per-file extractions into the final document + the
/// invariant verdicts. `corpus` is the identifier set of the
/// loom-model corpus files.
pub fn assemble(mut all: Vec<FileTopology>, corpus: &BTreeSet<String>) -> (String, Vec<Violation>) {
    let mut spawns: Vec<Spawn> = all.iter_mut().flat_map(|t| t.spawns.drain(..)).collect();
    let mut channels: Vec<Channel> = all.into_iter().flat_map(|t| t.channels).collect();
    spawns.sort();
    spawns.dedup();
    for c in &mut channels {
        c.loom_modeled = match c.kind.as_str() {
            "spsc.ring" => corpus.contains("spsc") && corpus.contains("ring"),
            "submit.queue" => corpus.contains("SubmitQueue"),
            _ => corpus.contains("unbounded"),
        };
    }
    channels.sort();
    channels.dedup();

    let mut violations = Vec::new();
    for c in &channels {
        if c.bounded && c.full_policy.is_none() {
            violations.push(Violation {
                file: c.file.clone(),
                line: c.line,
                rule: "topology",
                message: format!(
                    "bounded `{}` (capacity {}) with no shed/backpressure path in its file — \
                     fullness must be handled where the ring lives",
                    c.kind,
                    c.capacity.as_deref().unwrap_or("?")
                ),
            });
        }
        if (c.bounded || c.kind == "submit.queue") && !c.loom_modeled {
            violations.push(Violation {
                file: c.file.clone(),
                line: c.line,
                rule: "topology",
                message: format!(
                    "`{}` handoff is not loom-modeled: add a model covering it to \
                     crates/runtime/tests/loom.rs or crates/sync/tests/model.rs",
                    c.kind
                ),
            });
        }
    }

    (render_json(&spawns, &channels), violations)
}

fn render_json(spawns: &[Spawn], channels: &[Channel]) -> String {
    use std::fmt::Write;
    let esc = crate::json::escape;
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n  \"spawns\": [");
    for (i, sp) in spawns.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{ \"file\": \"{}\", \"fn\": \"{}\", \"target\": \"{}\" }}",
            if i == 0 { "" } else { "," },
            esc(&sp.file),
            esc(&sp.fn_path),
            esc(&sp.target)
        );
    }
    s.push_str(if spawns.is_empty() { "],\n" } else { "\n  ],\n" });
    s.push_str("  \"channels\": [");
    for (i, c) in channels.iter().enumerate() {
        let cap = match &c.capacity {
            Some(cap) => format!("\"{}\"", esc(cap)),
            None => "null".to_string(),
        };
        let policy = match &c.full_policy {
            Some(p) => format!("\"{}\"", esc(p)),
            None => "null".to_string(),
        };
        let _ = write!(
            s,
            "{}\n    {{ \"file\": \"{}\", \"fn\": \"{}\", \"kind\": \"{}\", \"bounded\": {}, \
             \"capacity\": {}, \"producer\": \"{}\", \"consumer\": \"{}\", \
             \"full_policy\": {}, \"loom_modeled\": {} }}",
            if i == 0 { "" } else { "," },
            esc(&c.file),
            esc(&c.fn_path),
            esc(&c.kind),
            c.bounded,
            cap,
            esc(&c.producer),
            esc(&c.consumer),
            policy,
            c.loom_modeled
        );
    }
    s.push_str(if channels.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn topo(rel: &str, src: &str) -> FileTopology {
        let lexed = lex(src);
        let file = parse(&lexed);
        assert_eq!(file.gaps, 0, "fixture must parse cleanly:\n{src}");
        extract(rel, &file, &lexed)
    }

    fn corpus(idents: &[&str]) -> BTreeSet<String> {
        idents.iter().map(|s| s.to_string()).collect()
    }

    const PIPELINE_LIKE: &str = "\
fn start(shards: Vec<S>, drain: D) {
    let mut rings = Vec::new();
    let mut outs = Vec::new();
    for shard in shards {
        let (tx, rx) = spsc::ring::<Job>(cap.max(1));
        let (out_tx, out_rx) = unbounded::<Out>();
        rings.push(tx);
        outs.push(out_rx);
        joins.push(rcm_sync::thread::spawn(move || worker_body(shard, rx, out_tx)));
    }
    let seq = rcm_sync::thread::spawn(move || sequencer_body(outs, drain));
    let shed = count_shed();
}
";

    #[test]
    fn ring_and_channel_sites_are_extracted_with_endpoints() {
        let t = topo("crates/runtime/src/pipeline.rs", PIPELINE_LIKE);
        assert_eq!(t.channels.len(), 2, "{t:?}");
        let ring = t.channels.iter().find(|c| c.kind == "spsc.ring").expect("ring");
        assert!(ring.bounded);
        assert_eq!(ring.capacity.as_deref(), Some("cap.max(1)"));
        assert_eq!(ring.consumer, "worker_body", "rx moves into the worker spawn");
        assert_eq!(ring.producer, "caller", "tx stays with the dispatcher");
        assert_eq!(ring.full_policy.as_deref(), Some("shed"));
        let out = t.channels.iter().find(|c| c.kind == "chan.unbounded").expect("chan");
        assert!(!out.bounded);
        assert_eq!(out.producer, "worker_body", "out_tx moves into the worker");
        assert_eq!(out.consumer, "sequencer_body", "out_rx reaches the sequencer via `outs`");
        assert_eq!(t.spawns.len(), 2);
    }

    #[test]
    fn test_code_is_excluded_from_the_graph() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { let (tx, rx) = unbounded::<u8>(); }
}
";
        let t = topo("crates/runtime/src/x.rs", src);
        assert!(t.channels.is_empty() && t.spawns.is_empty());
    }

    #[test]
    fn submit_queue_and_method_spawn_targets() {
        let src = "\
fn build() -> EventLoop {
    EventLoop { commands: SubmitQueue::new(), tick: 0 }
}
fn run_handle(el: EventLoop) -> H {
    rcm_sync::thread::spawn(move || el.run())
}
";
        let t = topo("crates/transport/src/engine/event_loop.rs", src);
        assert_eq!(t.channels.len(), 1);
        assert_eq!(t.channels[0].kind, "submit.queue");
        assert_eq!(t.spawns.len(), 1);
        assert_eq!(t.spawns[0].target, "el.run");
    }

    #[test]
    fn bounded_ring_without_shed_path_violates() {
        let src = "fn f() { let (tx, rx) = spsc::ring::<u8>(8); }\n";
        let t = topo("crates/runtime/src/x.rs", src);
        let (_, vs) = assemble(vec![t], &corpus(&["spsc", "ring", "unbounded", "SubmitQueue"]));
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("no shed/backpressure path"));
    }

    #[test]
    fn unmodeled_bounded_handoffs_violate() {
        let t = topo("crates/runtime/src/pipeline.rs", PIPELINE_LIKE);
        // Corpus without `ring`: the SPSC handoff is unmodeled.
        let (_, vs) = assemble(vec![t], &corpus(&["unbounded", "SubmitQueue"]));
        assert!(vs.iter().any(|v| v.message.contains("not loom-modeled")), "{vs:?}");
        // Full corpus: clean.
        let t = topo("crates/runtime/src/pipeline.rs", PIPELINE_LIKE);
        let (_, vs) = assemble(vec![t], &corpus(&["spsc", "ring", "unbounded", "SubmitQueue"]));
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let t1 = topo("crates/runtime/src/pipeline.rs", PIPELINE_LIKE);
        let t2 = topo("crates/runtime/src/pipeline.rs", PIPELINE_LIKE);
        let c = corpus(&["spsc", "ring", "unbounded", "SubmitQueue"]);
        let (a, _) = assemble(vec![t1], &c);
        let (b, _) = assemble(vec![t2], &c);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": 1"));
        assert!(a.ends_with("}\n"));
        // Parseable by our own reader.
        crate::json::parse(&a).expect("valid JSON");
    }

    #[test]
    fn out_of_scope_files_produce_nothing() {
        let t = topo("crates/sync/src/lib.rs", "fn f() { let (a, b) = unbounded::<u8>(); }\n");
        assert!(t.channels.is_empty());
    }
}
