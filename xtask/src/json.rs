//! A dependency-free JSON reader — just enough for the chaos report
//! and the topology document. xtask builds with nothing but std (it
//! gates CI before any cache is warm), so pulling serde here is not an
//! option.

/// A parsed JSON value. Numbers are `f64` — every counter the
/// chaos report carries fits losslessly below 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (the
/// writer-side counterpart of [`parse`], used by the topology emitter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document (trailing garbage is an error).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(value)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.b.get(self.i).is_some_and(|b| b" \t\r\n".contains(b)) {
            self.i += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&byte) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", byte as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b)) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            // Surrogate pairs don't occur in the
                            // report; map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().expect("non-empty by match arm");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_handles_the_report_grammar() {
        let doc = parse(r#"{"a": [1, -2.5, true, null, "s\nA"], "b": {}}"#).expect("parses");
        let arr = doc.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Str("s\nA".to_string()));
        assert_eq!(doc.get("b"), Some(&Json::Obj(Vec::new())));
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escape_round_trips_through_the_reader() {
        let nasty = "quote \" slash \\ newline \n tab \t bell \u{7} text";
        let doc = parse(&format!("\"{}\"", escape(nasty))).expect("escaped string parses");
        assert_eq!(doc, Json::Str(nasty.to_string()));
    }
}
