//! End-to-end self-tests for `cargo xtask analyze`: each analysis pass
//! is exercised against a synthetic workspace with a seeded violation
//! (proving the pass *fires*) and a corrected twin (proving it shuts
//! up), plus the acceptance gate — the real repository must be clean.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::analyze::{analyze_tree, check_topology_drift, TOPOLOGY_PATH};

/// Builds a throwaway workspace tree under the target-adjacent temp
/// dir and cleans it up on drop.
struct Tree {
    root: PathBuf,
}

impl Tree {
    fn new(name: &str, files: &[(&str, &str)]) -> Tree {
        let root =
            std::env::temp_dir().join(format!("xtask-analyze-{name}-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        for (rel, src) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("files live under crates/")).expect("mkdir");
            fs::write(path, src).expect("write fixture");
        }
        Tree { root }
    }

    fn violations(&self) -> Vec<String> {
        analyze_tree(&self.root).violations.iter().map(|v| v.to_string()).collect()
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

fn rules(violations: &[String]) -> Vec<&str> {
    let mut rules: Vec<&str> = violations
        .iter()
        .map(|v| {
            let open = v.find('[').expect("violation format");
            let close = v.find(']').expect("violation format");
            &v[open + 1..close]
        })
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

// ---- shim discipline -----------------------------------------------

#[test]
fn seeded_shim_violation_fails_and_fixed_tree_passes() {
    let bad = Tree::new(
        "shim-bad",
        &[(
            "crates/runtime/src/evil.rs",
            "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n",
        )],
    );
    assert_eq!(rules(&bad.violations()), ["shim"], "{:?}", bad.violations());

    let good = Tree::new(
        "shim-good",
        &[(
            "crates/runtime/src/fine.rs",
            "use rcm_sync::Mutex;\nfn f() { rcm_sync::thread::spawn(|| {}); }\n",
        )],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

#[test]
fn shim_violation_inside_a_use_group_is_resolved() {
    let bad = Tree::new(
        "shim-group",
        &[("crates/transport/src/evil.rs", "use std::{io, sync::atomic::AtomicU64};\n")],
    );
    assert_eq!(rules(&bad.violations()), ["shim"], "{:?}", bad.violations());
}

// ---- hot-path panic freedom ----------------------------------------

#[test]
fn seeded_hot_path_violations_fail_and_test_code_is_exempt() {
    let bad = Tree::new(
        "hot-bad",
        &[(
            "crates/core/src/registry.rs",
            "fn f(v: &[u8], i: usize) -> u8 { v[i] }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["hot-path"], "{got:?}");
    assert_eq!(got.len(), 2, "index and unwrap both fire: {got:?}");

    let good = Tree::new(
        "hot-good",
        &[(
            "crates/core/src/registry.rs",
            "fn f(v: &[u8], i: usize) -> Option<&u8> { v.get(i) }\n\
             #[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}\n",
        )],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

#[test]
fn seeded_division_violation_fails_and_proven_divisor_passes() {
    let bad = Tree::new(
        "div-bad",
        &[("crates/core/src/latency.rs", "fn f(a: u64, b: u64) -> u64 { a / b }\n")],
    );
    assert_eq!(rules(&bad.violations()), ["hot-path"], "{:?}", bad.violations());

    let good = Tree::new(
        "div-good",
        &[("crates/core/src/latency.rs", "fn f(a: u64, b: u64) -> u64 { a / b.max(1) }\n")],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

// ---- unsafe audit ---------------------------------------------------

#[test]
fn seeded_unsafe_outside_allowlist_fails() {
    let bad = Tree::new(
        "unsafe-bad",
        &[(
            "crates/core/src/history.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        )],
    );
    assert_eq!(rules(&bad.violations()), ["unsafe"], "{:?}", bad.violations());
}

#[test]
fn seeded_unsafe_in_allowlisted_file_without_safety_comment_fails() {
    let bad = Tree::new(
        "safety-bad",
        &[("crates/core/src/inline.rs", "fn f(p: *const u8) -> u8 { unsafe { p.read() } }\n")],
    );
    assert_eq!(rules(&bad.violations()), ["unsafe"], "{:?}", bad.violations());

    let good = Tree::new(
        "safety-good",
        &[(
            "crates/core/src/inline.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller upholds validity.\n    unsafe { p.read() }\n}\n",
        )],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

// ---- event-loop discipline ------------------------------------------

#[test]
fn seeded_blocking_call_in_the_engine_fails() {
    let bad = Tree::new(
        "loop-bad",
        &[(
            "crates/transport/src/engine/evil.rs",
            "fn f(s: &mut std::net::TcpStream, buf: &[u8]) { s.write_all(buf).ok(); }\n",
        )],
    );
    assert_eq!(rules(&bad.violations()), ["event-loop"], "{:?}", bad.violations());
}

#[test]
fn blocking_calls_outside_the_engine_directory_are_legal() {
    let good = Tree::new(
        "loop-good",
        &[(
            "crates/transport/src/tcp.rs",
            "fn f(s: &mut std::net::TcpStream, buf: &[u8]) { s.write_all(buf).ok(); }\n",
        )],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

// ---- lock order ------------------------------------------------------

/// The acceptance-criteria scenario: file A locks `a` then `b`, file B
/// locks `b` then `a`, both declaring their own edge honestly — the
/// cross-file cycle must still be detected.
#[test]
fn injected_lock_order_cycle_across_files_fails() {
    let bad = Tree::new(
        "cycle-bad",
        &[
            (
                "crates/runtime/src/x.rs",
                "// LOCK ORDER: a -> b\n\
                 fn f(a: &Mutex<u8>, b: &Mutex<u8>) { let ga = a.lock(); let gb = b.lock(); }\n",
            ),
            (
                "crates/transport/src/y.rs",
                "// LOCK ORDER: b -> a\n\
                 fn g(a: &Mutex<u8>, b: &Mutex<u8>) { let gb = b.lock(); let ga = a.lock(); }\n",
            ),
        ],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["lock-order"], "{got:?}");
    assert!(got.iter().any(|v| v.contains("cycle")), "{got:?}");

    // Same files, same declarations, but y.rs takes them in the
    // declared a -> b order: acyclic, clean.
    let good = Tree::new(
        "cycle-good",
        &[
            (
                "crates/runtime/src/x.rs",
                "// LOCK ORDER: a -> b\n\
                 fn f(a: &Mutex<u8>, b: &Mutex<u8>) { let ga = a.lock(); let gb = b.lock(); }\n",
            ),
            (
                "crates/transport/src/y.rs",
                "// LOCK ORDER: a -> b\n\
                 fn g(a: &Mutex<u8>, b: &Mutex<u8>) { let ga = a.lock(); let gb = b.lock(); }\n",
            ),
        ],
    );
    assert_eq!(good.violations(), Vec::<String>::new());
}

#[test]
fn undeclared_nested_acquisition_fails_even_without_a_cycle() {
    let bad = Tree::new(
        "edge-bad",
        &[(
            "crates/runtime/src/x.rs",
            "// LOCK ORDER: leaf file, single lock.\n\
             fn f(a: &Mutex<u8>, b: &Mutex<u8>) { let ga = a.lock(); let gb = b.lock(); }\n",
        )],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["lock-order"], "{got:?}");
}

#[test]
fn locking_file_without_annotation_fails() {
    let bad = Tree::new(
        "ann-bad",
        &[("crates/poll/src/x.rs", "fn f(m: &Mutex<u8>) { let g = m.lock(); }\n")],
    );
    assert_eq!(rules(&bad.violations()), ["lock-order"], "{:?}", bad.violations());
}

// ---- topology --------------------------------------------------------

#[test]
fn bounded_ring_without_shed_or_backpressure_fails() {
    let bad = Tree::new(
        "topo-bad",
        &[
            ("crates/runtime/src/x.rs", "fn f() { let (tx, rx) = spsc::ring::<u8>(64); }\n"),
            ("crates/runtime/tests/loom.rs", "fn m() { let (tx, rx) = spsc::ring::<u8>(2); }\n"),
        ],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["topology"], "{got:?}");
    assert!(got.iter().any(|v| v.contains("shed")), "{got:?}");
}

#[test]
fn unmodeled_bounded_handoff_fails() {
    // A bounded ring with a shed path but no loom model anywhere.
    let bad = Tree::new(
        "topo-unmodeled",
        &[(
            "crates/runtime/src/x.rs",
            "fn f() -> bool { let (tx, rx) = spsc::ring::<u8>(64); would_shed(&tx) }\n",
        )],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["topology"], "{got:?}");
    assert!(got.iter().any(|v| v.contains("loom")), "{got:?}");
}

#[test]
fn topology_drift_fails_and_write_then_check_round_trips() {
    let tree = Tree::new(
        "topo-drift",
        &[
            (
                "crates/runtime/src/x.rs",
                "fn f() -> bool { let (tx, rx) = spsc::ring::<u8>(64); count_shed() }\n",
            ),
            ("crates/runtime/tests/loom.rs", "fn m() { let (tx, rx) = spsc::ring::<u8>(2); }\n"),
        ],
    );
    let report = analyze_tree(&tree.root);
    assert_eq!(report.violations.len(), 0, "{:?}", report.violations);

    // No artifact yet: drift.
    let missing = check_topology_drift(&tree.root, &report.topology).expect("missing artifact");
    assert!(missing.to_string().contains("missing"), "{missing}");

    // Write it: clean.
    fs::write(tree.root.join(TOPOLOGY_PATH), &report.topology).expect("write artifact");
    assert!(check_topology_drift(&tree.root, &report.topology).is_none());

    // Tamper with the committed copy: drift again.
    fs::write(tree.root.join(TOPOLOGY_PATH), report.topology.replace("64", "65")).expect("tamper");
    let drift = check_topology_drift(&tree.root, &report.topology).expect("tampered artifact");
    assert!(drift.to_string().contains("stale"), "{drift}");
}

// ---- parse gaps ------------------------------------------------------

#[test]
fn unparseable_code_is_reported_not_ignored() {
    let bad = Tree::new("gap-bad", &[("crates/runtime/src/x.rs", "fn f() { let x = @@@; }\n")]);
    assert_eq!(rules(&bad.violations()), ["parse"], "{:?}", bad.violations());
}

// ---- allow directives ------------------------------------------------

#[test]
fn allow_directive_with_reason_waives_and_reasonless_fails() {
    let good = Tree::new(
        "allow-good",
        &[(
            "crates/core/src/registry.rs",
            "fn f(v: &[u8], i: usize) -> u8 {\n\
             \x20   // analyze: allow(hot-path): i is masked by the caller\n\
             \x20   v[i]\n}\n",
        )],
    );
    assert_eq!(good.violations(), Vec::<String>::new());

    let bad = Tree::new(
        "allow-bad",
        &[(
            "crates/core/src/registry.rs",
            "fn f(v: &[u8], i: usize) -> u8 {\n\
             \x20   // analyze: allow(hot-path)\n\
             \x20   v[i]\n}\n",
        )],
    );
    let got = bad.violations();
    assert_eq!(rules(&got), ["allow", "hot-path"], "{got:?}");
}

// ---- the acceptance gate: this repository is clean -------------------

#[test]
fn the_tree_is_clean_and_the_committed_topology_is_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("repo root").to_path_buf();
    let report = analyze_tree(&root);
    assert_eq!(
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
        Vec::<String>::new()
    );
    assert!(report.files_scanned > 100, "walk found the workspace");
    if let Some(drift) = check_topology_drift(&root, &report.topology) {
        panic!("{drift}");
    }
}
