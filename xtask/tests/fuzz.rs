//! Fuzz self-tests for the analyzer's lexer and parser: on arbitrary
//! byte soup they must never panic and always terminate. Two layers:
//! a dependency-free xorshift fuzzer that always runs (even when the
//! registry is unreachable and proptest cannot build), and a proptest
//! layer that shrinks counterexamples when it is available.

use xtask::lexer::{lex, strip_comments_and_strings};
use xtask::parser::{parse, parse_source};

/// Deterministic xorshift64* byte soup — no dependencies, fixed seeds,
/// so a failure reproduces exactly from the test name alone.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next() >> 24) as u8).collect()
    }

    /// Rust-flavored soup: tokens that exercise the lexer's tricky
    /// states (raw strings, lifetimes, nested comments, shifts) far
    /// more often than uniform bytes would.
    fn rusty(&mut self, tokens: usize) -> String {
        const VOCAB: &[&str] = &[
            "fn",
            "let",
            "match",
            "unsafe",
            "const",
            "impl",
            "use",
            "mod",
            "loop",
            "if",
            "else",
            "move",
            "r#\"",
            "\"#",
            "r#type",
            "'a",
            "'\\n'",
            "\"str\\\"",
            "/*",
            "*/",
            "//",
            "<<",
            ">>",
            "<",
            ">",
            "::<",
            "{",
            "}",
            "(",
            ")",
            "[",
            "]",
            ";",
            ",",
            "->",
            "=>",
            "#[",
            "]",
            "..",
            "..=",
            "x",
            "0x1f",
            "1u64",
            "0",
            "|",
            "||",
            "&",
            "&&",
            ".lock()",
            ".await",
            "£",
            "\u{1F980}",
        ];
        let mut out = String::new();
        for _ in 0..tokens {
            out.push_str(VOCAB[(self.next() as usize) % VOCAB.len()]);
            if self.next() % 3 == 0 {
                out.push(' ');
            }
            if self.next() % 11 == 0 {
                out.push('\n');
            }
        }
        out
    }
}

#[test]
fn lexer_and_parser_survive_uniform_byte_soup() {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for round in 0..256 {
        let len = (rng.next() % 512) as usize;
        let soup = String::from_utf8_lossy(&rng.bytes(len)).into_owned();
        let lexed = lex(&soup);
        let file = parse(&lexed);
        // Termination is the assertion (reaching here at all); the
        // item list must also be sane enough to iterate.
        assert!(file.items.len() <= soup.len() + 1, "round {round}");
    }
}

#[test]
fn lexer_and_parser_survive_rust_flavored_soup() {
    let mut rng = XorShift(0x0123_4567_89ab_cdef);
    for round in 0..256 {
        let tokens = (rng.next() % 192) as usize;
        let soup = rng.rusty(tokens);
        let file = parse_source(&soup);
        let _ = strip_comments_and_strings(&soup);
        assert!(file.gaps <= soup.len() + 1, "round {round}");
    }
}

#[test]
fn deeply_nested_input_terminates_without_overflow() {
    // The parser caps expression nesting; these inputs hit the cap.
    for open in ["(", "[", "{", "if x {", "&"] {
        let soup = format!("fn f() {{ let x = {}1; }}", open.repeat(2_000));
        let _ = parse_source(&soup);
    }
    // Item groups recurse outside the expression grammar and have
    // their own depth cap.
    let soup = "mod m { ".repeat(2_000);
    let _ = parse_source(&soup);
    let soup = format!("fn f() {{ x{}; }}", ".m(1)".repeat(5_000));
    let _ = parse_source(&soup);
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Arbitrary UTF-8: lex + parse never panic, and stripping
        /// preserves line structure (the property the old regex lint
        /// depended on and the new passes still use for SAFETY
        /// comment windows).
        #[test]
        fn arbitrary_source_never_panics(src in "\\PC*") {
            let lexed = lex(&src);
            let _ = parse(&lexed);
            let stripped = strip_comments_and_strings(&src);
            prop_assert_eq!(stripped.lines().count(), src.lines().count());
        }

        /// Token lines reported by the lexer stay within the file.
        #[test]
        fn token_lines_are_in_range(src in "[a-zA-Z0-9 \"'{}()\\[\\];,#!/*\n<>-]{0,400}") {
            let lines = src.lines().count().max(1);
            let lexed = lex(&src);
            for t in &lexed.tokens {
                prop_assert!(t.line >= 1 && t.line <= lines + 1);
            }
            for c in &lexed.comments {
                prop_assert!(c.line >= 1 && c.line <= lines + 1);
            }
        }
    }
}
