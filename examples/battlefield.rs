//! The battlefield motivation (paper §1): soldiers must be alerted
//! whenever a missile is fired — missing an alert is unacceptable, so
//! the Condition Evaluator is replicated.
//!
//! Runs the availability experiment: missed-alert fraction as CE
//! replicas crash randomly, for 1–4 replicas.
//!
//! ```text
//! cargo run --example battlefield
//! ```

use rcm::sim::availability::{measure, AvailabilityConfig};

fn main() {
    println!("Missile-launch monitoring under CE crashes");
    println!("(fraction of launches the soldier never hears about)\n");

    let downtimes = [0.1, 0.25, 0.4];
    print!("{:<10}", "replicas");
    for d in downtimes {
        print!(" {:>12}", format!("downtime {d}"));
    }
    println!();

    let mut last_row: Vec<f64> = Vec::new();
    for replicas in 1..=4 {
        print!("{replicas:<10}");
        let mut row = Vec::new();
        for downtime in downtimes {
            let point = measure(AvailabilityConfig {
                replicas,
                downtime,
                link_loss: 0.05,
                updates: 80,
                runs: 30,
                seed: 1944,
            });
            row.push(point.missed_fraction());
            print!(" {:>12.4}", point.missed_fraction());
        }
        println!();
        // Each added replica must not make things worse (allowing a
        // little Monte-Carlo noise).
        if !last_row.is_empty() {
            for (prev, cur) in last_row.iter().zip(&row) {
                assert!(
                    cur <= &(prev + 0.03),
                    "adding a replica increased the missed fraction: {prev} -> {cur}"
                );
            }
        }
        last_row = row;
    }

    println!();
    println!(
        "A single monitoring server misses a large share of launches when \
         it can crash; each added replica multiplies the miss probability \
         by roughly the downtime fraction."
    );
}
