//! The introduction's stock example: "sharp price drops" (more than
//! twenty percent between two consecutive quotes) under replication.
//!
//! Reproduces the paper's §1 confusion scenario — quotes 100, 50, 52;
//! CE2 misses the 50 — and shows how the AD algorithm choice changes
//! what the investor sees:
//!
//! * **AD-1** shows BOTH drop alerts (the investor thinks the price
//!   crashed twice);
//! * **AD-3/AD-4** show exactly one drop, because the second alert
//!   requires quote 2 to be simultaneously received and missed.
//!
//! ```text
//! cargo run --example stock_alerts
//! ```

use rcm::core::ad::{apply_filter, Ad1, Ad3, Ad4, AlertFilter};
use rcm::core::condition::SharpDrop;
use rcm::core::{transduce, Alert, CeId, Update, VarId};
use rcm::props::{check_consistent_single, check_ordered};

fn main() {
    let stock = VarId::new(0);
    let condition = SharpDrop::new(stock, 0.2);

    // The DM (a stock trading center) sends three quotes.
    let quotes = vec![
        Update::new(stock, 1, 100.0),
        Update::new(stock, 2, 50.0),
        Update::new(stock, 3, 52.0),
    ];

    // CE1 receives everything; CE2's front link loses the second quote.
    let u1 = quotes.clone();
    let u2 = vec![quotes[0], quotes[2]];
    let a1 = transduce(&condition, CeId::new(1), &u1);
    let a2 = transduce(&condition, CeId::new(2), &u2);

    println!("CE1 saw quotes 100, 50, 52  → alerts: {}", render(&a1));
    println!("CE2 saw quotes 100, 52      → alerts: {}", render(&a2));
    println!();

    // Alerts arrive at the AD interleaved; CE1's drop first.
    let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();

    for (name, mut filter) in [
        ("AD-1", Box::new(Ad1::new()) as Box<dyn AlertFilter>),
        ("AD-3", Box::new(Ad3::new(stock))),
        ("AD-4", Box::new(Ad4::new(stock))),
    ] {
        let shown = apply_filter(&mut *filter, &arrivals);
        let consistent = check_consistent_single(&condition, &[u1.clone(), u2.clone()], &shown);
        let ordered = check_ordered(&shown, &[stock]);
        println!(
            "{name}: investor sees {} drop alert(s) {} — ordered: {}, consistent: {}",
            shown.len(),
            render(&shown),
            ordered.ok,
            consistent.ok,
        );
        match name {
            "AD-1" => {
                assert_eq!(shown.len(), 2);
                assert!(!consistent.ok, "the two alerts need quote 2 in conflicting states");
            }
            _ => {
                assert_eq!(shown.len(), 1);
                assert!(consistent.ok);
            }
        }
    }

    println!();
    println!(
        "AD-1 leaves the investor believing there were two separate crashes; \
         the consistency-enforcing displayers show the single drop any \
         non-replicated system could have reported."
    );
}

fn render(alerts: &[Alert]) -> String {
    let parts: Vec<String> = alerts
        .iter()
        .map(|a| format!("drop@quote{}", a.seqno(VarId::new(0)).expect("single var").get()))
        .collect();
    format!("[{}]", parts.join(", "))
}
