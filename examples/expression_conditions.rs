//! Tour of the condition expression language: the paper's conditions
//! written as text, compiled, classified and evaluated.
//!
//! ```text
//! cargo run --example expression_conditions
//! ```

use rcm::core::condition::expr::CompiledCondition;
use rcm::core::condition::{Condition, ConditionExt, Triggering};
use rcm::core::{Evaluator, Update, VarRegistry};

fn main() {
    let mut registry = VarRegistry::new();

    let sources = [
        // The paper's named conditions.
        ("c1 (threshold)", "temp[0].value > 3000"),
        ("c2 (aggressive rise)", "temp[0].value - temp[-1].value > 200"),
        ("c3 (conservative rise)", "temp[0].value - temp[-1].value > 200 && consecutive(temp)"),
        ("cm (two reactors)", "abs(temp[0].value - temp2[0].value) > 100"),
        // Beyond the paper's examples:
        ("sharp drop (intro)", "(price[-1].value - price[0].value) / price[-1].value > 0.2"),
        (
            "bounded high watermark",
            "load[0].value >= max_over(load, 4) && load[0].value > load[-1].value",
        ),
        ("smoothed threshold", "avg_over(load, 3) > 80"),
        ("seqno arithmetic", "temp[0].seqno == temp[-1].seqno + 1 && temp[0].value > 3000"),
    ];

    println!("{:<24} {:<10} {:<14} variables", "name", "degree", "triggering");
    for (name, src) in sources {
        let cond = CompiledCondition::compile(src, &mut registry)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let vars = cond.variables();
        let max_degree = vars.iter().map(|&v| cond.degree(v)).max().unwrap_or(0);
        let class = if cond.is_non_historical() {
            "non-hist."
        } else {
            match cond.triggering() {
                Triggering::Conservative => "conservative",
                Triggering::Aggressive => "aggressive",
            }
        };
        let var_names: Vec<&str> = vars.iter().filter_map(|&v| registry.name(v)).collect();
        println!("{:<24} {:<10} {:<14} {:?}", name, max_degree, class, var_names);
    }

    // Run one of them end to end: the bounded high watermark on a noisy
    // climb. Alerts fire exactly when a reading tops the last four.
    println!("\nbounded high watermark over a noisy climb:");
    let cond = CompiledCondition::compile(
        "load[0].value >= max_over(load, 4) && load[0].value > load[-1].value",
        &mut registry,
    )
    .expect("checked above");
    let load = registry.lookup("load").expect("registered");
    let mut ce = Evaluator::new(cond);
    let readings = [50.0, 62.0, 58.0, 71.0, 69.0, 66.0, 84.0, 80.0, 91.0];
    let mut fired = Vec::new();
    for (i, &v) in readings.iter().enumerate() {
        if ce.ingest(Update::new(load, i as u64 + 1, v)).is_some() {
            fired.push((i + 1, v));
        }
    }
    for (seq, v) in &fired {
        println!("  new local maximum at reading {seq}: {v}");
    }
    assert_eq!(fired, vec![(4, 71.0), (7, 84.0), (9, 91.0)]);
}
