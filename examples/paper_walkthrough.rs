//! Replays the paper's worked Examples 1–3 step by step, printing each
//! decision exactly as the text describes it.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use rcm::core::ad::{Ad1, Ad2, Ad3, AlertFilter};
use rcm::core::condition::{Cmp, Threshold};
use rcm::core::{transduce, Alert, CeId, Update, VarId};

fn main() {
    example_1();
    example_2();
    example_3();
}

fn offer(filter: &mut dyn AlertFilter, alert: &Alert) -> &'static str {
    if filter.offer(alert).is_deliver() {
        "display"
    } else {
        "discard"
    }
}

/// Example 1 (§3): c1 over U = ⟨1x(2900), 2x(3100), 3x(3200)⟩; 2x is
/// lost at CE2; Algorithm AD-1 merges the streams.
fn example_1() {
    println!("=== Example 1: duplicate elimination under loss (AD-1) ===");
    let x = VarId::new(0);
    let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
    let u = vec![Update::new(x, 1, 2900.0), Update::new(x, 2, 3100.0), Update::new(x, 3, 3200.0)];
    let u1 = u.clone();
    let u2 = vec![u[0], u[2]];
    let a1 = transduce(&c1, CeId::new(1), &u1);
    let a2 = transduce(&c1, CeId::new(2), &u2);
    println!(
        "  A1 = T(U1) = ⟨a1, a2⟩ with a1.H = ⟨2x⟩, a2.H = ⟨3x⟩: {:?}",
        a1.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!(
        "  A2 = T(U2) = ⟨a3⟩ with a3.H = ⟨3x⟩: {:?}",
        a2.iter().map(ToString::to_string).collect::<Vec<_>>()
    );

    // Arrival order a1, a3, then a2 — the paper's walkthrough.
    let mut ad = Ad1::new();
    println!("  arrival a1 → {}", offer(&mut ad, &a1[0]));
    println!("  arrival a3 → {}", offer(&mut ad, &a2[0]));
    println!("  arrival a2 → {} (identical to a3)", offer(&mut ad, &a1[1]));
    println!("  A = ⟨a1, a3⟩ — two alerts reach the user\n");
}

/// Example 2 (§4.2): AD-2 sacrifices completeness for orderedness.
fn example_2() {
    println!("=== Example 2: AD-2 drops a late alert (incompleteness) ===");
    let x = VarId::new(0);
    let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
    let u1 = vec![Update::new(x, 1, 3100.0)];
    let u2 = vec![Update::new(x, 2, 3200.0)];
    let a1 = transduce(&c1, CeId::new(1), &u1);
    let a2 = transduce(&c1, CeId::new(2), &u2);

    let mut ad = Ad2::new(x);
    println!("  arrival a2 (seqno 2) → {}", offer(&mut ad, &a2[0]));
    println!("  arrival a1 (seqno 1) → {} (out of order)", offer(&mut ad, &a1[0]));
    println!("  A = ⟨a2⟩, but T(U1 ⊔ U2) has two alerts — ordered yet incomplete\n");
}

/// Example 3 (§4.3): AD-3's Received/Missed conflict test.
fn example_3() {
    println!("=== Example 3: AD-3 rejects a conflicting alert ===");
    let x = VarId::new(0);
    // A degree-2 condition that always fires once defined, so the
    // histories are exactly the paper's ⟨3x, 1x⟩ and ⟨3x, 2x⟩.
    let always = rcm::core::condition::DeltaRise::new(x, f64::NEG_INFINITY);
    let u1 = vec![Update::new(x, 1, 0.0), Update::new(x, 3, 0.0)]; // CE1 missed 2x
    let u2 = vec![Update::new(x, 2, 0.0), Update::new(x, 3, 0.0)]; // CE2 missed 1x
    let a1 = transduce(&always, CeId::new(1), &u1);
    let a2 = transduce(&always, CeId::new(2), &u2);
    let alert_a1 = a1.last().expect("CE1 alerts at 3x");
    let alert_a2 = a2.last().expect("CE2 alerts at 3x");

    let mut ad = Ad3::new(x);
    println!("  arrival a1 with H = ⟨3x, 1x⟩ → {}", offer(&mut ad, alert_a1));
    println!("    Received = {{1, 3}}, Missed = {{2}}");
    println!("  arrival a2 with H = ⟨3x, 2x⟩ → {} (2 is in Missed)", offer(&mut ad, alert_a2));
    println!("  displaying both would need update 2 received AND missed — inconsistent");
}
