//! Quickstart: monitor a reactor temperature with two replicated
//! Condition Evaluators and see duplicate suppression in action.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use rcm::core::ad::Ad1;
use rcm::core::condition::{Cmp, Threshold};
use rcm::core::VarId;
use rcm::runtime::{MonitorSystem, VarFeed};

fn main() {
    // One real-world variable: the reactor temperature.
    let temp = VarId::new(0);

    // c1 from the paper: "reactor temperature is over 3000 degrees".
    let condition = Arc::new(Threshold::new(temp, Cmp::Gt, 3000.0));

    // Two replicated CEs, exact-duplicate removal at the Alert
    // Displayer, and a scripted set of readings (Example 1's trace).
    let system = MonitorSystem::builder(condition)
        .replicas(2)
        .feed(VarFeed::new(temp, vec![2900.0, 3100.0, 3200.0]))
        .filter(|_| Box::new(Ad1::new()))
        .on_alert(|alert| println!("ALERT {alert}"))
        .start()
        .expect("valid configuration");

    let report = system.wait();

    println!();
    println!(
        "updates ingested per replica: {:?}",
        report.ingested.iter().map(Vec::len).collect::<Vec<_>>()
    );
    println!("alerts arriving at the AD:    {}", report.arrivals.len());
    println!("alerts shown to the user:     {}", report.displayed.len());
    println!();
    println!(
        "Both replicas alerted on updates 2 and 3; AD-1 recognized the \
         replicas' alerts as identical (same update histories), so the \
         user saw each alert once."
    );
    assert_eq!(report.arrivals.len(), 4);
    assert_eq!(report.displayed.len(), 2);
}
