//! Durable Alert Displayer: the AD checkpoints its filter state, dies,
//! restarts from the snapshot, and keeps its consistency guarantee —
//! the paper's AD-3 only works because the AD *remembers* what it
//! declared received and missed, so a real deployment must persist
//! that state.
//!
//! ```text
//! cargo run --example durable_displayer
//! ```

use rcm::core::ad::{Ad3, AlertFilter};
use rcm::core::condition::DeltaRise;
use rcm::core::{transduce, Alert, CeId, Update, VarId};

fn main() {
    let x = VarId::new(0);
    // Aggressive delta condition — the one whose replicated alerts can
    // genuinely conflict (Theorem 4).
    let c2 = DeltaRise::new(x, 200.0);

    // Theorem 4's trace: CE1 saw everything, CE2 missed update 2.
    let u = vec![Update::new(x, 1, 400.0), Update::new(x, 2, 700.0), Update::new(x, 3, 720.0)];
    let a1 = transduce(&c2, CeId::new(1), &u); // alert on 2 (H = ⟨2,1⟩)
    let a2 = transduce(&c2, CeId::new(2), &[u[0], u[2]]); // alert on 3 (H = ⟨3,1⟩)

    let mut ad = Ad3::new(x);
    show(&mut ad, &a1[0]);

    // --- the display process restarts -------------------------------
    let snapshot = serde_json::to_string(&ad).expect("filter state serializes");
    println!("\n[AD restarting — persisted state: {snapshot}]\n");
    drop(ad);
    let mut ad: Ad3 = serde_json::from_str(&snapshot).expect("state restores");
    // -----------------------------------------------------------------

    // CE2's conflicting alert arrives *after* the restart. A forgetful
    // AD would display it, showing the user two contradictory rises; the
    // restored one still knows update 2 was declared received.
    show(&mut ad, &a2[0]);

    println!(
        "\nThe restored displayer rejected the conflicting alert: its \
         Received/Missed memory survived the restart, so the user's view \
         stayed consistent. A fresh (forgetful) Ad3 would have shown both:"
    );
    let mut forgetful = Ad3::new(x);
    show(&mut forgetful, &a2[0]);
}

fn show(ad: &mut Ad3, alert: &Alert) {
    let decision = ad.offer(alert);
    println!(
        "alert {alert} → {}",
        if decision.is_deliver() { "DISPLAY" } else { "discard (conflict)" }
    );
}
