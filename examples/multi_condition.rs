//! Multiple conditions (paper Appendix D): two interdependent
//! conditions A = "reactor x is hotter than y" and B = "y is hotter
//! than x", monitored together.
//!
//! Demonstrates both constructions from the appendix:
//!
//! * **separate CEs** (Fig. D-7(c)): the AD demultiplexes the alert
//!   streams with [`PerCondition`] and runs one filter instance per
//!   condition;
//! * **co-located CEs** (Fig. D-7(d)/D-8): the two conditions reduce to
//!   the single disjunction `C = A ∨ B`.
//!
//! ```text
//! cargo run --example multi_condition
//! ```

use rcm::core::ad::{apply_filter, Ad5, PerCondition};
use rcm::core::condition::{Condition, Or, Triggering};
use rcm::core::{Alert, CeId, CondId, Evaluator, HistorySet, Update, VarId};

/// Condition "left reactor is strictly hotter than right".
#[derive(Debug, Clone)]
struct Hotter {
    left: VarId,
    right: VarId,
}

impl Condition for Hotter {
    fn name(&self) -> String {
        format!("{} hotter than {}", self.left, self.right)
    }
    fn variables(&self) -> Vec<VarId> {
        let mut v = vec![self.left, self.right];
        v.sort_unstable();
        v
    }
    fn degree(&self, var: VarId) -> usize {
        usize::from(var == self.left || var == self.right)
    }
    fn triggering(&self) -> Triggering {
        Triggering::Conservative
    }
    fn eval(&self, h: &HistorySet) -> bool {
        match (h.value(self.left, 0), h.value(self.right, 0)) {
            (Some(l), Some(r)) => l > r,
            _ => false,
        }
    }
}

fn main() {
    let x = VarId::new(0);
    let y = VarId::new(1);
    let cond_a = Hotter { left: x, right: y };
    let cond_b = Hotter { left: y, right: x };

    // Example 4's trace: both reactors at 2000, then both rise to 2100 —
    // but A's CE sees the x change first while B's CE sees y first.
    let updates_for_a = vec![
        Update::new(x, 1, 2000.0),
        Update::new(y, 1, 2000.0),
        Update::new(x, 2, 2100.0), // A triggers here: x=2100 > y=2000
        Update::new(y, 2, 2100.0),
    ];
    let updates_for_b = vec![
        Update::new(x, 1, 2000.0),
        Update::new(y, 1, 2000.0),
        Update::new(y, 2, 2100.0), // B triggers here: y=2100 > x=2000
        Update::new(x, 2, 2100.0),
    ];

    // --- Separate CEs per condition (Fig. D-7(c)) -------------------
    let a_alerts = run_ce(&cond_a, CondId::new(0), CeId::new(0), &updates_for_a);
    let b_alerts = run_ce(&cond_b, CondId::new(1), CeId::new(1), &updates_for_b);
    println!("condition A ({}) alerts: {}", cond_a.name(), a_alerts.len());
    println!("condition B ({}) alerts: {}", cond_b.name(), b_alerts.len());
    println!(
        "\nBoth fire even though the reactors were never simultaneously \
         unequal for long — Example 4's conflicting picture."
    );

    // The AD demultiplexes per condition and applies AD-5 to each
    // stream independently.
    let arrivals: Vec<Alert> = a_alerts.iter().chain(b_alerts.iter()).cloned().collect();
    let mut demux = PerCondition::new(|_cond| Ad5::new([x, y]));
    let shown = apply_filter(&mut demux, &arrivals);
    println!(
        "\nSeparate-CE displayer (per-condition AD-5): {} alert(s) shown, \
         {} condition stream(s)",
        shown.len(),
        demux.streams()
    );
    assert_eq!(demux.streams(), 2);

    // --- Co-located CEs: C = A ∨ B (Fig. D-8) -----------------------
    let combined = Or::new(cond_a.clone(), cond_b.clone());
    // A co-located CE sees ONE interleaving, so the disjunction cannot
    // paint the conflicting picture: at any instant only one of A, B
    // can hold.
    let c_alerts = run_ce(&combined, CondId::new(2), CeId::new(2), &updates_for_a);
    println!(
        "\nCo-located construction C = A ∨ B over a single interleaving: \
         {} alert(s)",
        c_alerts.len()
    );
    assert_eq!(c_alerts.len(), 1, "only the x-first flank fires in this interleaving");

    println!(
        "\nAppendix D's two reductions make multi-condition systems \
         analyzable with the single-condition machinery."
    );
}

fn run_ce<C: Condition>(cond: &C, cond_id: CondId, ce: CeId, updates: &[Update]) -> Vec<Alert> {
    let mut ev = Evaluator::with_ids(cond, cond_id, ce);
    updates.iter().filter_map(|&u| ev.ingest(u)).collect()
}
