//! A reactor farm monitored end to end through the simulator: lossy
//! sensor links, three CE replicas, and a comparison of all four
//! single-variable AD algorithms on identical executions.
//!
//! The monitored condition is the paper's `c3`: "temperature has risen
//! more than 200 degrees since the last reading taken at the DM"
//! (conservative), written in the condition expression language.
//!
//! ```text
//! cargo run --example reactor_farm
//! ```

use std::sync::Arc;

use rcm::core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, AlertFilter};
use rcm::core::condition::expr::CompiledCondition;
use rcm::core::VarRegistry;
use rcm::props::{check_complete_single, check_consistent_single, check_ordered};
use rcm::sim::{run, DelaySpec, LossSpec, RandomWalk, Scenario, VarWorkload};

fn main() {
    let mut registry = VarRegistry::new();
    let c3 = CompiledCondition::compile(
        "core_temp[0].value - core_temp[-1].value > 200 && consecutive(core_temp)",
        &mut registry,
    )
    .expect("valid condition source");
    let temp = registry.lookup("core_temp").expect("registered by compile");

    println!("condition: {}", c3.source());
    println!();

    let scenario = Scenario {
        condition: Arc::new(c3.clone()),
        replicas: 3,
        workloads: vec![VarWorkload {
            var: temp,
            updates: 80,
            period: 10,
            offset: 0,
            model: Box::new(RandomWalk::new(2800.0, 260.0, 2000.0, 3600.0)),
        }],
        // Each replica's sensor link drops bursts independently.
        front_loss: vec![LossSpec::Burst { target: 0.2, burst_len: 3.0 }],
        front_delay: vec![DelaySpec::Uniform(0, 4)],
        back_delay: vec![DelaySpec::Uniform(0, 30)],
        outages: vec![],
        ad_outages: vec![],
        link_salt: 0,
        seed: 2026,
    };
    let result = run(scenario);

    println!(
        "emitted {} readings; replicas ingested {:?} (lost {}, reordered {})",
        result.stats.updates_emitted,
        result.inputs.iter().map(Vec::len).collect::<Vec<_>>(),
        result.stats.updates_lost,
        result.stats.updates_reordered,
    );
    println!("alert arrivals at the control-room display: {}", result.arrivals.len());
    println!();
    println!(
        "{:<6} {:>7}   {:>7} {:>8} {:>10}",
        "AD", "shown", "ordered", "complete", "consistent"
    );

    for (name, mut filter) in [
        ("AD-1", Box::new(Ad1::new()) as Box<dyn AlertFilter>),
        ("AD-2", Box::new(Ad2::new(temp))),
        ("AD-3", Box::new(Ad3::new(temp))),
        ("AD-4", Box::new(Ad4::new(temp))),
    ] {
        let shown = apply_filter(&mut *filter, &result.arrivals);
        let ordered = check_ordered(&shown, &[temp]).ok;
        let complete = check_complete_single(&c3, &result.inputs, &shown).ok;
        let consistent = check_consistent_single(&c3, &result.inputs, &shown).ok;
        println!(
            "{:<6} {:>7}   {:>7} {:>8} {:>10}",
            name,
            shown.len(),
            ordered,
            complete,
            consistent
        );
        // Conservative condition: every algorithm keeps consistency
        // (Theorem 3 and the AD-3/AD-4 guarantees).
        assert!(consistent);
        if name == "AD-2" || name == "AD-4" {
            assert!(ordered);
        }
    }

    println!();
    println!(
        "With a conservative condition every displayer stays consistent; \
         the orderedness-enforcing ones trade a few alerts for ordered \
         output (the paper's Table 2 trade-off)."
    );
}
