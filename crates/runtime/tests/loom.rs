//! Model-checked concurrency tests for the threaded runtime.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where every
//! `rcm_sync` primitive resolves to the bundled deterministic model
//! checker: each test body runs under **every** thread interleaving
//! within the preemption bound (see `rcm_sync::model`), so the
//! assertions are schedule-universal, not one-lucky-run facts.
//!
//! Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p rcm-runtime --test loom --release
//! ```
#![cfg(loom)]

use std::time::Duration;

use rcm_core::{Update, VarId};
use rcm_net::Backoff;
use rcm_runtime::{BackLink, IngestGate, RetainedWindow};
use rcm_sync::chan::{unbounded, Sender};
use rcm_sync::model::model;
use rcm_sync::{spsc, thread, Arc, Mutex};
use rcm_transport::engine::{SubmitQueue, Wake};

fn u(s: u64) -> Update {
    Update::new(VarId::new(0), s, s as f64)
}

/// Supervisor-restart handoff: a recovering CE replays the DM's
/// retained window through its ingest gate while the live feed keeps
/// arriving. Under every interleaving of replay and live delivery the
/// gate must admit each seqno exactly once, in order — the crash must
/// cause neither duplicate ingestion nor a gap.
#[test]
fn restart_replay_admits_each_seqno_exactly_once() {
    let executions = model(|| {
        let window = RetainedWindow::new(8);
        let (tx, rx) = unbounded::<Update>();
        let dm_window = window.clone();
        let dm = thread::spawn(move || {
            for s in 1..=4 {
                dm_window.push(u(s));
                tx.send(u(s)).expect("CE alive");
            }
        });

        let mut gate = IngestGate::new();
        let mut admitted = Vec::new();
        // Live ingest until the scripted kill point (2 deliveries)...
        for _ in 0..2 {
            if let Ok(up) = rx.recv() {
                if gate.admit(&up) {
                    admitted.push(up.seqno.get());
                }
            }
        }
        // ...crash: histories are lost, the gate survives (it belongs
        // to the supervisor). Replay the retained window — which the DM
        // may still be appending to — through the same gate.
        for up in window.snapshot() {
            if gate.admit(&up) {
                admitted.push(up.seqno.get());
            }
        }
        // Back live: drain the rest of the feed.
        while let Ok(up) = rx.recv() {
            if gate.admit(&up) {
                admitted.push(up.seqno.get());
            }
        }
        dm.join().expect("DM exits cleanly");

        assert_eq!(admitted, vec![1, 2, 3, 4], "exactly-once, in order");
        assert_eq!(gate.cursor(VarId::new(0)), Some(4));
    });
    assert!(executions > 1, "replay must race the live feed, got {executions} schedules");
}

/// Back-link severance: while the link is down, sends are queued and
/// the unacked tail is re-sent on reconnect — concurrently with the AD
/// draining the channel. Under every schedule the receiver must see
/// every message at least once, with first occurrences in send order
/// (duplicates are exact copies of already-seen messages).
#[test]
fn severed_backlink_is_lossless_and_ordered_under_all_schedules() {
    model(|| {
        let (tx, rx) = unbounded::<u64>();
        let ce = thread::spawn(move || {
            let backoff = Backoff::new(Duration::from_micros(50), Duration::from_millis(2), 7);
            let mut link =
                BackLink::new(tx, backoff).with_severs(vec![(1, Duration::from_micros(200))]);
            for m in 1..=3 {
                link.send(m);
            }
            link.flush();
            link.stats_handle()
        });

        let got: Vec<u64> = rx.into_iter().collect();
        let stats = ce.join().expect("CE exits cleanly");

        // First occurrences reconstruct the send order exactly.
        let mut firsts = Vec::new();
        for &m in &got {
            if !firsts.contains(&m) {
                firsts.push(m);
            }
        }
        assert_eq!(firsts, vec![1, 2, 3], "lossless and ordered; got {got:?}");
        let s = stats.lock();
        assert_eq!(s.severs, 1);
        assert_eq!(s.reconnects, 1);
    });
}

/// Alert numbering across a modeled replica kill: two CE replicas emit
/// `(replica, alert_index)` pairs to one AD; replica 0 crashes
/// mid-stream and restarts with its histories wiped but its emission
/// counter intact (that is the supervisor contract). Under every
/// interleaving of the surviving replica and the restarting one, the
/// AD must observe each replica's indexes strictly ascending.
#[test]
fn alert_numbering_is_monotonic_across_a_replica_kill() {
    let executions = model(|| {
        let (tx, rx) = unbounded::<(u32, u64)>();

        // Supervisor-held state for replica 0: the emission counter
        // survives the kill; the history buffer does not.
        let counter0 = Arc::new(Mutex::new(0u64));
        let c0 = Arc::clone(&counter0);
        let tx0 = tx.clone();
        let ce0 = thread::spawn(move || {
            // First incarnation: two alerts, then a scripted kill.
            let mut history = vec![0u64];
            for _ in 0..2 {
                let mut n = c0.lock();
                history.push(*n);
                tx0.send((0, *n)).expect("AD alive");
                *n += 1;
            }
            drop(history); // the crash wipes in-memory histories
                           // Restart: fresh histories, same counter.
            let mut history = Vec::new();
            for _ in 0..2 {
                let mut n = c0.lock();
                history.push(*n);
                tx0.send((0, *n)).expect("AD alive");
                *n += 1;
            }
            assert_eq!(history.len(), 2);
        });
        let ce1 = thread::spawn(move || {
            for i in 0..3 {
                tx.send((1, i)).expect("AD alive");
            }
        });

        let mut last: [Option<u64>; 2] = [None, None];
        for (ce, idx) in rx.into_iter() {
            let slot = &mut last[ce as usize];
            assert!(
                slot.is_none_or(|prev| idx > prev),
                "replica {ce} regressed: {idx} after {slot:?}"
            );
            *slot = Some(idx);
        }
        ce0.join().expect("ce0");
        ce1.join().expect("ce1");
        assert_eq!(last, [Some(3), Some(2)], "every alert arrived");
    });
    assert!(executions > 1, "replica streams must interleave, got {executions} schedules");
}

/// The event loop's submit/wake handoff, exhaustively: a caller thread
/// submits commands while the loop thread runs its real sleep protocol
/// (drain → `prepare_sleep` → blocked wait → `wake_done` → drain).
/// The classic lost-wakeup bug — producer pushes between the
/// consumer's last drain and its sleep, and the wake is skipped —
/// must be impossible under **every** interleaving: the waker channel
/// is kept open after the producer exits, so a lost wakeup parks the
/// consumer forever with work queued, which the model checker reports
/// as a deadlocked schedule instead of a lucky pass.
#[test]
fn submit_wake_handoff_never_strands_a_command() {
    /// The loom stand-in for the event loop's self-pipe waker: wake =
    /// make the blocked "readiness wait" (a channel recv) return.
    struct ChanWaker(Sender<()>);
    impl Wake for ChanWaker {
        fn wake(&self) {
            let _ = self.0.send(());
        }
    }

    let executions = model(|| {
        let queue: SubmitQueue<u64> = SubmitQueue::new();
        let (wake_tx, wake_rx) = unbounded::<()>();
        let producer_queue = queue.clone();
        let producer = thread::spawn(move || {
            let waker = ChanWaker(wake_tx);
            for command in 1..=2 {
                producer_queue.submit(command, &waker);
            }
            // Return the waker instead of dropping it: the channel
            // staying open means a missed wake cannot be papered over
            // by a hangup — it must surface as a stuck schedule.
            waker
        });

        let mut got = Vec::new();
        let mut cmds = Vec::new();
        while got.len() < 2 {
            queue.drain(&mut cmds);
            got.append(&mut cmds);
            if got.len() == 2 {
                break;
            }
            if !queue.prepare_sleep() {
                continue; // a submit raced in: drain, don't sleep
            }
            let _ = wake_rx.recv(); // the modeled readiness wait
            queue.wake_done();
        }
        let _waker = producer.join().expect("producer exits cleanly");

        assert_eq!(got, vec![1, 2], "every command survived the handoff, in order");
    });
    assert!(executions > 1, "the handoff must actually race, got {executions} schedules");
}

/// The evaluation pipeline's fan-out/merge handoff, exhaustively: the
/// dispatcher (here the main thread) feeds the same update stream to
/// two shard workers over capacity-1 SPSC rings on the blocking
/// (`push_wait`) path; each worker evaluates its own condition slice
/// (`cond % 2 == shard`) and reports one `(update, alerts)` round per
/// update; the sequencer pulls one round per worker in lockstep and
/// merges by condition id. Under **every** interleaving of the two
/// workers against the dispatcher, the merged stream must be exactly
/// the single-threaded order — no alert stranded in a ring or an out
/// channel, none reordered, none duplicated.
#[test]
fn spsc_fanout_and_sequencer_merge_never_strand_or_reorder() {
    const UPDATES: u64 = 2;
    const SHARDS: u32 = 2;
    let executions = model(|| {
        let mut rings = Vec::new();
        let mut outs = Vec::new();
        let mut workers = Vec::new();
        for shard in 0..SHARDS {
            let (jobs_tx, jobs_rx) = spsc::ring::<u64>(1);
            let (out_tx, out_rx) = unbounded::<(u64, Vec<(u64, u32)>)>();
            rings.push(jobs_tx);
            outs.push(out_rx);
            workers.push(thread::spawn(move || {
                // Drain in batches like the real worker: a blocking pop
                // opens the batch, `drain_into` opportunistically grabs
                // what else is already queued.
                let mut batch = Vec::new();
                while let Some(first) = jobs_rx.pop() {
                    batch.push(first);
                    jobs_rx.drain_into(&mut batch, 1);
                    for idx in batch.drain(..) {
                        // This shard's slice of a 2-condition registry.
                        let alerts: Vec<(u64, u32)> =
                            (0..SHARDS).filter(|c| c % SHARDS == shard).map(|c| (idx, c)).collect();
                        out_tx.send((idx, alerts)).expect("sequencer alive");
                    }
                }
            }));
        }

        // Dispatcher: every shard sees every update, in stream order.
        for idx in 1..=UPDATES {
            for ring in &mut rings {
                ring.push_wait(idx).expect("worker alive");
            }
        }
        drop(rings); // closes the rings: workers drain and exit

        // Sequencer: lockstep rounds, merge by condition id.
        let mut merged = Vec::new();
        for idx in 1..=UPDATES {
            let mut round = Vec::new();
            for out in &outs {
                let (got_idx, alerts) = out.recv().expect("worker round");
                assert_eq!(got_idx, idx, "a worker skipped or reordered a round");
                round.extend(alerts);
            }
            round.sort_by_key(|&(_, cond)| cond);
            merged.extend(round);
        }
        for worker in workers {
            worker.join().expect("worker exits cleanly");
        }
        for out in &outs {
            assert!(out.recv().is_err(), "a worker emitted a stranded extra round");
        }

        let want: Vec<(u64, u32)> =
            (1..=UPDATES).flat_map(|idx| (0..SHARDS).map(move |c| (idx, c))).collect();
        assert_eq!(merged, want, "merge must reconstruct single-threaded order");
    });
    assert!(executions > 1, "fan-out must actually race, got {executions} schedules");
}

/// Retained-window atomicity: a DM pushes into a capacity-bounded
/// window while a recovering replica snapshots it. Under every
/// interleaving the snapshot must be a contiguous, ascending run of
/// seqnos — eviction and append are atomic, so a reader can never see
/// a torn window (a gap would replay a corrupted history).
#[test]
fn retained_window_snapshots_are_never_torn() {
    model(|| {
        let window = RetainedWindow::new(2);
        window.push(u(1)); // pre-crash traffic
        let dm_window = window.clone();
        let dm = thread::spawn(move || {
            for s in 2..=4 {
                dm_window.push(u(s));
            }
        });

        let snap: Vec<u64> = window.snapshot().iter().map(|u| u.seqno.get()).collect();
        assert!(snap.len() <= 2, "capacity respected: {snap:?}");
        assert!(
            snap.windows(2).all(|w| w[1] == w[0] + 1),
            "snapshot tore across an eviction: {snap:?}"
        );
        dm.join().expect("DM exits cleanly");

        let settled: Vec<u64> = window.snapshot().iter().map(|u| u.seqno.get()).collect();
        assert_eq!(settled, vec![3, 4], "final window is the newest suffix");
    });
}
