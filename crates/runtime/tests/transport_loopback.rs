//! Loopback socket-transport tests: the same system, once over
//! in-process channels and once over real UDP/TCP sockets, must show
//! the user the exact same filtered alert sequence — under scripted
//! front-link loss injected by a [`LossProxy`], and across a mid-run
//! TCP back-link severance.
//!
//! These are the tentpole acceptance tests for the socket transport:
//! they prove the deployment path is behaviorally identical to the
//! model the rest of the repo verifies — for every payload codec
//! (JSON, binary, and a mixed-fleet split), with frame batching on,
//! and over **both** socket engines: the threaded reference path and
//! the evented readiness loop are pinned to the same in-process output
//! at 0% and 20% front-link loss.

use std::sync::Arc;
use std::time::Duration;

use rcm_core::condition::{Cmp, Condition, Threshold};
use rcm_core::{Alert, VarId};
use rcm_net::Scripted;
use rcm_runtime::{
    BatchPolicy, Codec, Engine, FaultPlan, MonitorSystem, RunReport, Topology, TransportMode,
    VarFeed,
};
use rcm_transport::{LossProxy, ProxyStats};

fn x() -> VarId {
    VarId::new(0)
}

fn threshold() -> Arc<dyn Condition> {
    Arc::new(Threshold::new(x(), Cmp::Gt, 50.0))
}

/// Workload: 20 readings, every odd one above the threshold → 10
/// deterministic alerts per fully-fed replica.
fn values() -> Vec<f64> {
    (0..20).map(|i| if i % 2 == 1 { 60.0 + f64::from(i) } else { 40.0 }).collect()
}

/// Pace DM emissions so loopback datagrams (and the single-threaded
/// proxy) preserve send order; scripted drop positions then line up
/// exactly with the in-process loss model's.
const PERIOD: Duration = Duration::from_millis(1);

fn run_in_process(plan: FaultPlan, drops: &'static [u64]) -> RunReport {
    MonitorSystem::builder(threshold())
        .replicas(2)
        .feed(VarFeed::new(x(), values()).period(PERIOD))
        .loss(move |_, _| Box::new(Scripted::new(drops.iter().copied())))
        .faults(plan)
        .start()
        .expect("in-process system starts")
        .wait()
}

/// Runs the same system over real sockets, with a [`LossProxy`] per CE
/// replica replaying the same scripted drop set on the real datagrams.
fn run_sockets(
    plan: FaultPlan,
    drops: &'static [u64],
    engine: Engine,
) -> (RunReport, Vec<ProxyStats>) {
    run_sockets_on(Topology::loopback(2).with_engine(engine), plan, drops)
}

/// Like [`run_sockets`] but over a caller-configured topology (codec
/// and batching choices).
fn run_sockets_on(
    topology: Topology,
    plan: FaultPlan,
    drops: &'static [u64],
) -> (RunReport, Vec<ProxyStats>) {
    run_sockets_workers(topology, plan, drops, 0)
}

/// Like [`run_sockets_on`] with the CE evaluation pipeline enabled at
/// `workers` shard workers (0 = the inline in-actor evaluator).
fn run_sockets_workers(
    topology: Topology,
    plan: FaultPlan,
    drops: &'static [u64],
    workers: usize,
) -> (RunReport, Vec<ProxyStats>) {
    let bound = topology.bind().expect("bind topology");
    let mut proxies = Vec::new();
    let mut targets = Vec::new();
    for addr in bound.ce_addrs() {
        let proxy = LossProxy::bind(*addr, Box::new(Scripted::new(drops.iter().copied())), 0)
            .expect("bind proxy")
            .spawn()
            .expect("spawn proxy");
        targets.push(proxy.addr());
        proxies.push(proxy);
    }
    let bound = bound.route_front_links(targets).idle_timeout(Duration::from_secs(10));
    let report = MonitorSystem::builder(threshold())
        .replicas(2)
        .workers(workers)
        .feed(VarFeed::new(x(), values()).period(PERIOD))
        .faults(plan)
        .transport(bound)
        .start()
        .expect("socket system starts")
        .wait();
    let stats = proxies.into_iter().map(rcm_transport::ProxyHandle::stop).collect();
    (report, stats)
}

fn displayed_seqnos(report: &RunReport) -> Vec<u64> {
    report
        .displayed
        .iter()
        .map(|a: &Alert| a.seqno(x()).expect("single-variable alert").get())
        .collect()
}

/// Acceptance: a 2-replica CE topology over real sockets with 20%
/// scripted front-link loss produces the exact same filtered alert
/// sequence as the in-process runtime fed the same workload and drop
/// set.
#[test]
fn scripted_loss_matches_in_process_output_exactly() {
    // 4 of 20 datagrams per front link: 20% loss, same set on every
    // link in both modes.
    const DROPS: &[u64] = &[1, 4, 7, 11];
    let in_process = run_in_process(FaultPlan::scripted(), DROPS);
    for engine in [Engine::Threaded, Engine::Evented] {
        let (sockets, proxy_stats) = run_sockets(FaultPlan::scripted(), DROPS, engine);

        assert_eq!(sockets.transport.mode, TransportMode::Sockets);
        assert!(!sockets.displayed.is_empty(), "loss must not silence the system");
        assert_eq!(
            sockets.displayed,
            in_process.displayed,
            "{engine} socket pipeline diverged from the in-process model under 20% loss \
             (sockets {:?} vs in-process {:?})",
            displayed_seqnos(&sockets),
            displayed_seqnos(&in_process),
        );

        // The loss really happened on the wire, not in a model: each
        // proxy ate exactly the scripted positions, and each CE ingress
        // saw only the survivors.
        for stats in &proxy_stats {
            assert_eq!(stats.dropped, DROPS.len() as u64);
        }
        assert_eq!(sockets.transport.ingress.len(), 2, "{engine}");
        for ingress in &sockets.transport.ingress {
            assert_eq!(ingress.delivered, (values().len() - DROPS.len()) as u64);
            assert_eq!(ingress.decode_errors, 0);
        }
        // The legacy per-link view is populated in both modes.
        assert_eq!(sockets.links.len(), 2);
        let sent: u64 = sockets.transport.front_links.iter().map(|(_, _, s)| s.frames_sent).sum();
        assert_eq!(sent, 2 * values().len() as u64);
        // The engine rollup distinguishes the paths: only the evented
        // loop records wakeups.
        match engine {
            Engine::Evented => assert!(sockets.transport.engine.wakeups > 0, "loop never woke"),
            Engine::Threaded => assert_eq!(sockets.transport.engine.wakeups, 0),
        }
    }
}

/// Acceptance for the codec seam: every codec assignment — all-JSON,
/// all-binary, and a mixed fleet (binary front links feeding CEs that
/// answer a JSON-era AD, and the reverse) — produces the exact same
/// displayed alert sequence as the in-process model, at 0% and at 20%
/// scripted loss. Receivers dispatch on each frame's version byte, so
/// no run needs (or has) receiver-side codec configuration.
#[test]
fn every_codec_assignment_matches_in_process_output() {
    const DROPS: &[u64] = &[1, 4, 7, 11];
    let clean = run_in_process(FaultPlan::scripted(), &[]);
    let lossy = run_in_process(FaultPlan::scripted(), DROPS);
    assert!(!clean.displayed.is_empty());

    for (front, back) in [
        (Codec::Json, Codec::Json),
        (Codec::Binary, Codec::Binary),
        (Codec::Binary, Codec::Json),
        (Codec::Json, Codec::Binary),
    ] {
        for (drops, baseline) in [(&[] as &'static [u64], &clean), (DROPS, &lossy)] {
            let topology = Topology::loopback(2).with_codecs(front, back);
            let (sockets, _) = run_sockets_on(topology, FaultPlan::scripted(), drops);
            assert_eq!(
                sockets.displayed,
                baseline.displayed,
                "codec ({front}, {back}) with {} drops diverged from the in-process model \
                 (sockets {:?} vs in-process {:?})",
                drops.len(),
                displayed_seqnos(&sockets),
                displayed_seqnos(baseline),
            );
            assert_eq!(sockets.transport.decode_errors(), 0, "codec ({front}, {back})");
        }
    }
}

/// Acceptance for batching: packing 5 updates per datagram changes the
/// datagram count (visible in the new transport counters) but not one
/// bit of the displayed output.
#[test]
fn batched_front_links_change_framing_but_not_output() {
    let baseline = run_in_process(FaultPlan::scripted(), &[]);
    let topology = Topology::loopback(2).with_front_batching(BatchPolicy {
        max_count: 5,
        max_bytes: 1200,
        max_delay: Duration::from_secs(10),
    });
    let (sockets, _) = run_sockets_on(topology, FaultPlan::scripted(), &[]);

    assert_eq!(
        sockets.displayed,
        baseline.displayed,
        "batched socket run diverged (sockets {:?} vs in-process {:?})",
        displayed_seqnos(&sockets),
        displayed_seqnos(&baseline),
    );
    // 20 readings at 5 per datagram → exactly 4 datagrams per front
    // link (the deadline is far away and 5 binary updates fit well
    // under the size cap), and the rollups see the 5× amortization.
    for (_, _, stats) in &sockets.transport.front_links {
        assert_eq!(stats.frames_sent, 4, "20 updates at 5 per datagram");
        assert_eq!(stats.updates_sent, 20);
        assert!(stats.bytes_sent > 0);
    }
    assert!((sockets.transport.updates_per_datagram() - 5.0).abs() < f64::EPSILON);
    assert!(sockets.transport.bytes_per_frame() > 0.0);
}

/// Tentpole acceptance: the shard-parallel evaluation pipeline is
/// transport-invariant. A `--workers 4` system over real sockets — on
/// both socket engines, under 20% scripted front-link loss — displays
/// the exact same alert sequence as the inline (workers = 0)
/// in-process actor, and its run report carries the pipeline's worker
/// count and a populated ingest→emit latency histogram.
#[test]
fn pipelined_workers_match_in_process_output_on_both_engines() {
    const DROPS: &[u64] = &[1, 4, 7, 11];
    let inline = run_in_process(FaultPlan::scripted(), DROPS);
    assert!(!inline.displayed.is_empty());
    for engine in [Engine::Threaded, Engine::Evented] {
        let topology = Topology::loopback(2).with_engine(engine);
        let (sockets, _) = run_sockets_workers(topology, FaultPlan::scripted(), DROPS, 4);
        assert_eq!(
            sockets.displayed,
            inline.displayed,
            "{engine}: 4-worker socket pipeline diverged from the inline in-process model \
             (sockets {:?} vs in-process {:?})",
            displayed_seqnos(&sockets),
            displayed_seqnos(&inline),
        );
        assert_eq!(sockets.pipeline.workers, 4, "{engine}");
        assert_eq!(sockets.pipeline.updates_shed, 0, "{engine}: default rings must not shed");
        assert!(sockets.pipeline.latency.count > 0, "{engine}: histogram never recorded");
        assert!(
            sockets.pipeline.latency.p999_ns >= sockets.pipeline.latency.p50_ns,
            "{engine}: percentiles must be monotone"
        );
    }
}

/// Acceptance: severing a CE's TCP back link mid-run loses no alert —
/// the link reconnects (visible in the fault counters) and the user
/// output still matches the in-process run with the same plan.
#[test]
fn back_link_sever_reconnects_without_losing_alerts() {
    let plan = || FaultPlan::scripted().sever_back_link(0, 3, Duration::from_millis(30));
    let in_process = run_in_process(plan(), &[]);
    for engine in [Engine::Threaded, Engine::Evented] {
        let (sockets, _) = run_sockets(plan(), &[], engine);

        assert_eq!(
            sockets.displayed,
            in_process.displayed,
            "{engine} socket pipeline diverged across a back-link severance \
             (sockets {:?} vs in-process {:?})",
            displayed_seqnos(&sockets),
            displayed_seqnos(&in_process),
        );
        // Every reading above the threshold is displayed exactly once:
        // nothing lost to the severance, duplicates filtered.
        assert_eq!(displayed_seqnos(&sockets), (1..=20).filter(|s| s % 2 == 0).collect::<Vec<_>>());

        // The counters prove a real TCP connection dropped and came
        // back.
        assert_eq!(sockets.faults.backlink_severs, 1, "{engine}");
        assert!(sockets.faults.backlink_reconnects >= 1, "{engine}: sever needs a reconnect");
        assert_eq!(sockets.faults.alerts_lost_overflow, 0, "{engine}");
        assert!(
            sockets.transport.ad.connections >= 3,
            "{engine}: two initial connections plus at least one reconnect, got {}",
            sockets.transport.ad.connections
        );
        assert_eq!(sockets.transport.back_links.len(), 2);
        assert_eq!(sockets.transport.back_links[0].severs, 1, "{engine}");
    }
}
