//! Property-based tests of the wire codec: arbitrary bytes never
//! panic the decoder, and encode∘decode is the identity however the
//! frames are fragmented.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;

use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
use rcm_runtime::wire::{decode, encode, Message};

fn message_strategy() -> impl Strategy<Value = Message> {
    let update = (0u32..4, 1u64..1000, -1e6f64..1e6)
        .prop_map(|(v, s, val)| Update::new(VarId::new(v), s, val));
    let alert = (0u32..4, 2u64..1000, 0u32..3, any::<u64>()).prop_map(|(v, s, ce, idx)| {
        Message::Alert(Alert::new(
            CondId::new(ce),
            HistoryFingerprint::single(VarId::new(v), vec![SeqNo::new(s), SeqNo::new(s - 1)]),
            vec![Update::new(VarId::new(v), s, 1.0)],
            AlertId { ce: CeId::new(ce), index: idx },
        ))
    });
    prop_oneof![update.prop_map(Message::Update), alert]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut buf = BytesMut::from(&bytes[..]);
        // Drain as far as possible; errors are fine, panics are not.
        while let Ok(Some(_)) = decode(&mut buf) {}
    }

    #[test]
    fn fragmented_streams_reassemble(
        msgs in proptest::collection::vec(message_strategy(), 1..10),
        chunk in 1usize..17,
    ) {
        let mut wire = BytesMut::new();
        for m in &msgs {
            wire.put_slice(&encode(m).expect("encodes"));
        }
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.put_slice(piece);
            while let Some(m) = decode(&mut buf).expect("own frames decode") {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn trailing_partial_frame_is_left_pending(msg in message_strategy()) {
        let frame = encode(&msg).expect("encodes");
        // Feed all but the last byte: nothing decodes, nothing consumed
        // beyond recovery.
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        prop_assert!(decode(&mut buf).expect("incomplete is not an error").is_none());
        buf.put_u8(frame[frame.len() - 1]);
        prop_assert_eq!(decode(&mut buf).expect("now complete"), Some(msg));
    }
}
