//! Properties pinning the evaluation pipeline's determinism contract:
//!
//! > For any worker count (including 1) the pipelined CE emits a
//! > byte-identical alert stream — same alerts, same order, same
//! > `AlertId` numbering — as the single-threaded in-actor evaluator
//! > fed the same admitted updates; shedding on a full worker ring is
//! > observationally front-link loss; and fault-plan kill/restarts
//! > leave per-condition alert numbering dense and ascending.
//!
//! Two layers of checks:
//!
//! * **Within-run** (deterministic regardless of scheduling): each
//!   replica's emitted stream must equal a local
//!   [`ConditionRegistry`] replay of that replica's own recorded
//!   `U_i` — the transducer identity `E_i = T(U_i)`. This holds under
//!   loss and under shedding (a shed update never enters `U_i`), so it
//!   is the bit-exactness oracle that needs no run-to-run determinism.
//! * **Cross-run** (valid when the admitted stream is deterministic —
//!   scripted loss, no kills): a pipelined run's per-replica emission
//!   must equal the inline (`workers == 0`) run's, byte for byte.

use std::sync::Arc;

use proptest::prelude::*;

use rcm_core::condition::{Cmp, Condition, SustainedAbove, Threshold};
use rcm_core::{CeId, CondId, ConditionRegistry, VarId};
use rcm_net::Scripted;
use rcm_runtime::{FaultPlan, MonitorSystem, RunReport, VarFeed};

fn x() -> VarId {
    VarId::new(0)
}

/// A mixed family: thresholds at staggered levels plus a debounced
/// sustained condition, so restarts visibly change behavior (wiped
/// debounce state) and most updates fire at least one condition.
fn family(n: u32) -> Vec<Arc<dyn Condition>> {
    (0..n)
        .map(|i| {
            if i % 4 == 3 {
                Arc::new(SustainedAbove::new(x(), f64::from(i), 2)) as Arc<dyn Condition>
            } else {
                Arc::new(Threshold::new(x(), Cmp::Gt, f64::from((i * 7) % 50)))
                    as Arc<dyn Condition>
            }
        })
        .collect()
}

fn values(n: u64) -> Vec<f64> {
    (0..n).map(|i| ((i % 100) as f64) - 20.0).collect()
}

fn build(
    conds: &[Arc<dyn Condition>],
    workers: usize,
    vals: Vec<f64>,
) -> rcm_runtime::SystemBuilder {
    let mut builder = MonitorSystem::builder(conds[0].clone());
    for c in &conds[1..] {
        builder = builder.monitor(Arc::clone(c));
    }
    builder.replicas(2).workers(workers).feed(VarFeed::new(x(), vals))
}

/// The transducer identity: each replica's emitted stream equals a
/// local registry replay of its own recorded `U_i`, ids included.
fn assert_emitted_is_replay_of_ingested(conds: &[Arc<dyn Condition>], report: &RunReport) {
    for (ce, emitted) in report.emitted.iter().enumerate() {
        let mut registry = ConditionRegistry::new(CeId::new(ce as u32));
        for (i, c) in conds.iter().enumerate() {
            registry.insert(CondId::new(i as u32), Arc::clone(c));
        }
        let mut want = Vec::new();
        registry.ingest_batch(&report.ingested[ce], &mut want);
        assert_eq!(emitted, &want, "replica {ce}: emitted != T(U_{ce})");
        for (g, w) in emitted.iter().zip(&want) {
            assert_eq!(g.id, w.id, "replica {ce}: AlertId numbering diverged");
        }
    }
}

/// The paper's consistency property, checked per hosted condition:
/// the displayed alerts of condition `i` must be explainable by some
/// sub-stream of the union of the replicas' received updates.
fn assert_consistent_per_cond(conds: &[Arc<dyn Condition>], report: &RunReport) {
    for (i, cond) in conds.iter().enumerate() {
        // Relabel to `CondId::SINGLE` so the alerts compare equal
        // against the checker's single-condition reference transducer.
        let stream: Vec<rcm_core::Alert> = report
            .displayed
            .iter()
            .filter(|a| a.cond == CondId::new(i as u32))
            .map(|a| {
                let mut a = a.clone();
                a.cond = CondId::SINGLE;
                a
            })
            .collect();
        let consistency = rcm_props::check_consistent_single(cond, &report.ingested, &stream);
        assert!(consistency.ok, "condition {i}: {:?}", consistency.conflict);
    }
}

/// Per-condition provenance numbering is dense and ascending per
/// replica — the "alert numbering intact" oracle that stays valid
/// across kill/restart races.
fn assert_numbering_dense(conds: &[Arc<dyn Condition>], report: &RunReport) {
    for (ce, emitted) in report.emitted.iter().enumerate() {
        for cond in 0..conds.len() as u32 {
            let idxs: Vec<u64> = emitted
                .iter()
                .filter(|a| a.cond == CondId::new(cond))
                .map(|a| a.id.index)
                .collect();
            assert!(
                idxs.iter().enumerate().all(|(i, &n)| n == i as u64),
                "replica {ce} cond {cond}: numbering has gaps or regressions: {idxs:?}"
            );
        }
    }
}

/// Pipelined output is byte-identical to the single-threaded actor for
/// every worker count, with scripted front-link loss in play.
#[test]
fn pipelined_emission_matches_inline_for_any_worker_count() {
    const DROPS: &[u64] = &[2, 5, 11, 17];
    let conds = family(9);
    let inline = build(&conds, 0, values(60))
        .loss(|_, _| Box::new(Scripted::new(DROPS.iter().copied())))
        .start()
        .expect("inline system starts")
        .wait();
    assert!(inline.emitted.iter().any(|e| !e.is_empty()), "workload must alert");
    assert_emitted_is_replay_of_ingested(&conds, &inline);
    assert_eq!(inline.pipeline.workers, 0);
    // The inline path records latency too.
    assert!(inline.pipeline.latency.count > 0);

    for workers in [1usize, 2, 3, 8] {
        let piped = build(&conds, workers, values(60))
            .loss(|_, _| Box::new(Scripted::new(DROPS.iter().copied())))
            .start()
            .expect("pipelined system starts")
            .wait();
        assert_eq!(piped.pipeline.workers, workers);
        assert_eq!(piped.pipeline.updates_shed, 0, "default rings must not shed here");
        assert_eq!(
            piped.emitted, inline.emitted,
            "workers = {workers}: pipelined emission diverged from the single-threaded actor"
        );
        for (a, b) in piped.emitted.iter().flatten().zip(inline.emitted.iter().flatten()) {
            assert_eq!(a.id, b.id, "workers = {workers}: AlertId numbering diverged");
        }
        assert_emitted_is_replay_of_ingested(&conds, &piped);
        assert!(piped.pipeline.latency.count > 0, "workers = {workers}");
        assert!(piped.pipeline.latency.p999_ns >= piped.pipeline.latency.p50_ns);
    }
}

/// Kill/restart fault plans leave the pipelined replica's alert
/// numbering dense and its displayed output consistent — and the
/// recovery ledger (restarts, replays) actually engaged.
#[test]
fn pipelined_restarts_keep_alert_numbering_intact() {
    let conds = family(6);
    for workers in [1usize, 4] {
        let report = build(&conds, workers, values(120))
            .faults(FaultPlan::scripted().kill_ce(0, 30).kill_ce(1, 55).retain_window(256))
            .start()
            .expect("faulted system starts")
            .wait();
        assert!(report.faults.total_restarts() >= 1, "workers = {workers}: kills must fire");
        assert_numbering_dense(&conds, &report);
        // Every arrival at the AD is accounted to some replica's
        // emission record — the sequencer loses nothing in a crash.
        assert_eq!(
            report.emitted.iter().map(Vec::len).sum::<usize>(),
            report.arrivals.len(),
            "workers = {workers}"
        );
        assert_consistent_per_cond(&conds, &report);
    }
}

/// Satellite 1: forced shedding (capacity-1 rings under a heavy
/// stream) is observationally front-link loss — shed updates never
/// enter `U_i`, the transducer identity still holds bit-exactly, the
/// shed counter surfaces in the report, and the per-AD consistency
/// guarantee survives.
#[test]
fn forced_shedding_is_front_link_loss() {
    let conds = family(40); // heavy evaluation → slow workers → full rings
    let report = build(&conds, 2, values(4000))
        .ring_capacity(1)
        .filter(|vars| Box::new(rcm_core::ad::Ad3::new(vars[0])))
        .start()
        .expect("shedding system starts")
        .wait();
    assert!(
        report.pipeline.updates_shed > 0,
        "capacity-1 rings under 4000 updates × 40 conditions must shed"
    );
    // Shed ≡ loss: everything admitted is in U_i, and emission is
    // exactly the transducer of U_i — ids included.
    assert_emitted_is_replay_of_ingested(&conds, &report);
    assert_numbering_dense(&conds, &report);
    assert_consistent_per_cond(&conds, &report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary workloads, drop sets and worker counts, the
    /// pipelined emission is byte-identical to the inline actor's.
    #[test]
    fn prop_pipelined_matches_inline(
        n_conds in 1u32..12,
        n_values in 1u64..80,
        workers in 1usize..6,
        drops in proptest::collection::btree_set(1u64..80, 0..10),
    ) {
        let conds = family(n_conds);
        let drop_vec: Vec<u64> = drops.iter().copied().collect();
        let mk = |workers: usize| {
            let d = drop_vec.clone();
            build(&conds, workers, values(n_values))
                .loss(move |_, _| Box::new(Scripted::new(d.iter().copied())))
                .start()
                .expect("system starts")
                .wait()
        };
        let inline = mk(0);
        let piped = mk(workers);
        prop_assert_eq!(&piped.emitted, &inline.emitted);
        assert_emitted_is_replay_of_ingested(&conds, &piped);
    }

    /// For arbitrary kill schedules, the pipelined replicas keep dense
    /// per-condition numbering and the transducer accounting between
    /// AD arrivals and replica emissions.
    #[test]
    fn prop_restarts_preserve_numbering(
        n_conds in 1u32..8,
        workers in 1usize..5,
        kill0 in 5u64..60,
        kill1 in 5u64..60,
    ) {
        let conds = family(n_conds);
        let report = build(&conds, workers, values(90))
            .faults(FaultPlan::scripted().kill_ce(0, kill0).kill_ce(1, kill1))
            .start()
            .expect("system starts")
            .wait();
        assert_numbering_dense(&conds, &report);
        prop_assert_eq!(
            report.emitted.iter().map(Vec::len).sum::<usize>(),
            report.arrivals.len()
        );
    }

    /// For arbitrary tiny ring capacities, shedding stays
    /// observationally front-link loss: the transducer identity and
    /// per-AD consistency hold whatever was shed.
    #[test]
    fn prop_shedding_is_loss(
        n_conds in 8u32..24,
        capacity in 1usize..4,
        workers in 1usize..4,
    ) {
        let conds = family(n_conds);
        let report = build(&conds, workers, values(600))
            .ring_capacity(capacity)
            .filter(|vars| Box::new(rcm_core::ad::Ad3::new(vars[0])))
            .start()
            .expect("system starts")
            .wait();
        assert_emitted_is_replay_of_ingested(&conds, &report);
        assert_consistent_per_cond(&conds, &report);
    }
}
