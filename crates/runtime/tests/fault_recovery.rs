//! Crash/recovery and back-link fault-injection tests for the threaded
//! runtime: supervisor restart bounds, kill-one-replica availability,
//! lossless severed back links, retained-window replay — and the
//! duplicate-offer indifference property the reconnect path relies on
//! (a resent alert must never change any AD filter's decisions).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter};
use rcm_core::condition::{Cmp, Condition, DeltaRise, Threshold};
use rcm_core::{transduce, Alert, CeId, CondId, ConditionRegistry, Update, VarId};
use rcm_props::{check_complete_single, check_ordered};
use rcm_runtime::{FaultPlan, MonitorSystem, VarFeed};

fn x() -> VarId {
    VarId::new(0)
}

fn threshold() -> Arc<dyn Condition> {
    Arc::new(Threshold::new(x(), Cmp::Gt, 50.0))
}

#[test]
fn kill_one_replica_keeps_surviving_alerts_displayed() {
    // Replica 0 dies on its first arrival with no restart budget; the
    // survivor must carry the run alone.
    let system = MonitorSystem::builder(threshold())
        .replicas(2)
        .feed(VarFeed::new(x(), vec![60.0, 40.0, 70.0, 55.0, 30.0, 80.0]))
        .faults(FaultPlan::scripted().kill_ce(0, 1).max_restarts(0))
        .start()
        .unwrap();
    let report = system.wait();

    assert_eq!(report.faults.replicas_abandoned, 1);
    assert_eq!(report.faults.restarts[0], 0);
    assert!(report.emitted[0].is_empty(), "dead replica emitted alerts");
    assert_eq!(report.emitted[1].len(), 4);
    for alert in &report.emitted[1] {
        assert!(report.displayed.contains(alert), "surviving alert {alert} not displayed");
    }
    assert_eq!(report.displayed.len(), 4);
}

#[test]
fn restart_budget_is_a_hard_bound() {
    // A kill scheduled at every arrival: however the backlog drains
    // race with the kill thresholds, the supervisor must never restart
    // the replica more often than the budget allows.
    let values: Vec<f64> = (0..40).map(|i| f64::from((i * 7) % 100)).collect();
    let mut plan = FaultPlan::scripted().max_restarts(3);
    for arrival in 1..=40 {
        plan = plan.kill_ce(0, arrival);
    }
    let system = MonitorSystem::builder(threshold())
        .replicas(2)
        .feed(VarFeed::new(x(), values.clone()).period(Duration::from_micros(500)))
        .faults(plan)
        .start()
        .unwrap();
    let report = system.wait();

    assert!(report.faults.kills_injected >= 1, "the arrival-1 kill always fires");
    assert!(
        report.faults.restarts[0] <= 3,
        "supervisor exceeded the restart budget: {:?}",
        report.faults.restarts
    );
    if report.faults.replicas_abandoned == 1 {
        assert_eq!(report.faults.restarts[0], 3, "abandonment implies an exhausted budget");
    }
    // The untouched replica keeps the system available: every alert of
    // the full update sequence is displayed exactly once (AD-1 dedups).
    let updates: Vec<Update> =
        values.iter().enumerate().map(|(i, &v)| Update::new(x(), i as u64 + 1, v)).collect();
    let expected = transduce(&threshold(), CeId::new(9), &updates);
    assert_eq!(report.displayed.len(), expected.len());
}

#[test]
fn severed_back_link_loses_no_alerts() {
    // Both back links are severed mid-stream; reconnect + resend must
    // preserve the lossless contract: nothing dropped, duplicates only.
    let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x(), Cmp::Gt, -1.0));
    let n = 30u64;
    let system =
        MonitorSystem::builder(cond)
            .replicas(2)
            .feed(VarFeed::new(x(), (0..n).map(|i| i as f64).collect::<Vec<_>>()))
            .faults(
                FaultPlan::scripted()
                    .sever_back_link(0, 5, Duration::from_millis(5))
                    .sever_back_link(1, 2, Duration::from_millis(1)),
            )
            .start()
            .unwrap();
    let report = system.wait();

    assert_eq!(report.faults.backlink_severs, 2);
    assert_eq!(report.faults.alerts_lost_overflow, 0);
    // Every update alerts; AD-1 displays each distinct alert once no
    // matter how the resent duplicates interleave.
    assert_eq!(report.displayed.len(), n as usize);
    assert!(check_ordered(&report.displayed, &[x()]).ok);
    // Both replicas' full streams arrived (plus any resend duplicates).
    assert!(report.arrivals.len() >= 2 * n as usize);
}

#[test]
fn recovery_replays_retained_window() {
    // Scripted kill mid-stream with a full retained window: replay must
    // rebuild the histories so the run stays complete and ordered —
    // indistinguishable from a fault-free run for a degree-1 condition
    // over lossless links.
    let values: Vec<f64> = (0..30).map(|i| f64::from((i * 13) % 100)).collect();
    let system = MonitorSystem::builder(threshold())
        .replicas(2)
        .feed(VarFeed::new(x(), values))
        .faults(FaultPlan::scripted().kill_ce(0, 10).retain_window(4096).max_restarts(3))
        .start()
        .unwrap();
    let report = system.wait();

    assert_eq!(report.faults.kills_injected, 1);
    assert_eq!(report.faults.restarts[0], 1);
    assert_eq!(report.faults.replicas_abandoned, 0);
    // Replay restored the killed replica's `U_i` to the full sequence.
    assert_eq!(report.ingested[0].len(), 30);
    assert_eq!(report.ingested[1].len(), 30);
    let complete = check_complete_single(&threshold(), &report.ingested, &report.displayed);
    assert!(complete.ok, "missing={:?} extraneous={:?}", complete.missing, complete.extraneous);
    assert!(check_ordered(&report.displayed, &[x()]).ok);
}

#[test]
fn multicond_restart_rebuilds_registry_and_keeps_numbering() {
    // A replica hosting several conditions in one registry is killed
    // mid-stream. The retained window must rebuild the registry's
    // histories through the shared gate (so `U_i` ends up complete and
    // ordered), the crash must wipe every condition's history at the
    // same point (the paper's crash model — a historical condition
    // misses the one delta that spans the wipe), and per-condition
    // alert numbering must keep ascending across the restart.
    let set: Vec<Arc<dyn Condition>> = vec![
        Arc::new(Threshold::new(x(), Cmp::Gt, 50.0)),
        Arc::new(DeltaRise::new(x(), 10.0)),
        Arc::new(Threshold::new(x(), Cmp::Lt, 20.0)),
    ];
    let values: Vec<f64> = (0..30).map(|i| f64::from((i * 13) % 100)).collect();
    let system = MonitorSystem::builder_multi(set.clone())
        .replicas(2)
        .feed(VarFeed::new(x(), values.clone()))
        .faults(FaultPlan::scripted().kill_ce(0, 12).retain_window(4096).max_restarts(3))
        .start()
        .unwrap();
    let report = system.wait();

    assert_eq!(report.faults.kills_injected, 1);
    assert_eq!(report.faults.restarts[0], 1);
    assert_eq!(report.faults.replicas_abandoned, 0);
    // Window replay restored the killed replica's `U_i` in full order.
    assert_eq!(report.ingested[0].len(), values.len());
    assert_eq!(report.ingested[1].len(), values.len());

    // Reproduce each replica locally: one registry hosting the whole
    // set, fed the replica's recorded `U_i` — with `restart()` spliced
    // in at the crash point for replica 0. Arrivals 1..=11 are ingested
    // before the scripted kill at arrival 12 fires, so the wipe lands
    // after exactly 11 updates.
    for (ce, emitted) in report.emitted.iter().enumerate() {
        let mut registry = ConditionRegistry::new(CeId::new(ce as u32));
        for c in &set {
            registry.add(Arc::clone(c));
        }
        let mut want = Vec::new();
        let mut buf = Vec::new();
        for (i, &u) in report.ingested[ce].iter().enumerate() {
            if ce == 0 && i == 11 {
                registry.restart();
            }
            buf.clear();
            registry.ingest(u, &mut buf);
            want.append(&mut buf);
        }
        assert_eq!(emitted, &want, "replica {ce} diverged from the local registry replay");
        for (g, w) in emitted.iter().zip(&want) {
            assert_eq!(g.id, w.id);
        }
        // Numbering never resets: per condition, provenance indices are
        // 0..k ascending even across the crash.
        for cond in 0..set.len() as u32 {
            let idxs: Vec<u64> = emitted
                .iter()
                .filter(|a| a.cond == CondId::new(cond))
                .map(|a| a.id.index)
                .collect();
            assert!(
                idxs.iter().enumerate().all(|(i, &n)| n == i as u64),
                "condition {cond} numbering broke across the restart: {idxs:?}"
            );
        }
    }

    // AD-1 displays each distinct (cond, fingerprint) alert exactly
    // once, so the display equals the distinct union of both replicas'
    // emissions — the survivor covers what the crash suppressed.
    let mut distinct: Vec<&Alert> = Vec::new();
    for a in report.emitted.iter().flatten() {
        if !distinct.contains(&a) {
            distinct.push(a);
        }
    }
    assert_eq!(report.displayed.len(), distinct.len());
    for &a in &distinct {
        assert!(report.displayed.contains(a), "distinct alert {a} not displayed");
    }
}

/// Builds one fresh instance of every AD filter.
fn all_filters() -> Vec<Box<dyn AlertFilter>> {
    vec![
        Box::new(Ad1::new()),
        Box::new(Ad2::new(x())),
        Box::new(Ad3::new(x())),
        Box::new(Ad4::new(x())),
        Box::new(Ad5::new([x()])),
        Box::new(Ad6::new([x()])),
    ]
}

/// The property the back-link resend path relies on: re-offering an
/// alert that was already offered earlier (a reconnect duplicate) must
/// not change any filter's decision on any *original* offer.
///
/// `values`/`keep` derive two replica alert streams (replica 2 misses
/// the unkept updates), interleaved round-robin; `dups` picks
/// (position, earlier-offer) pairs to replay into the stream.
fn check_duplicate_indifference(
    values: &[f64],
    keep: &[bool],
    dups: &[(usize, usize)],
    use_delta: bool,
) {
    let cond: Arc<dyn Condition> = if use_delta {
        Arc::new(DeltaRise::new(x(), 5.0))
    } else {
        Arc::new(Threshold::new(x(), Cmp::Gt, 50.0))
    };
    let u1: Vec<Update> =
        values.iter().enumerate().map(|(i, &v)| Update::new(x(), i as u64 + 1, v)).collect();
    let u2: Vec<Update> = u1
        .iter()
        .enumerate()
        .filter(|(i, _)| *keep.get(*i).unwrap_or(&true))
        .map(|(_, &u)| u)
        .collect();
    let a1 = transduce(&cond, CeId::new(0), &u1);
    let a2 = transduce(&cond, CeId::new(1), &u2);

    // Round-robin merge of the two back-link streams.
    let mut base: Vec<Alert> = Vec::with_capacity(a1.len() + a2.len());
    let (mut i, mut j) = (0, 0);
    while i < a1.len() || j < a2.len() {
        if i < a1.len() {
            base.push(a1[i].clone());
            i += 1;
        }
        if j < a2.len() {
            base.push(a2[j].clone());
            j += 1;
        }
    }
    if base.is_empty() {
        return;
    }

    // The duplicated stream: same offers, with replays of earlier
    // offers spliced in. `true` marks an original offer.
    let mut with_dups: Vec<(Alert, bool)> = base.iter().map(|a| (a.clone(), true)).collect();
    for &(pos, src) in dups {
        let pos = 1 + pos % with_dups.len();
        // Replay something offered strictly before the splice point.
        let originals_before: Vec<&Alert> =
            with_dups[..pos].iter().filter(|(_, orig)| *orig).map(|(a, _)| a).collect();
        let dup = originals_before[src % originals_before.len()].clone();
        with_dups.insert(pos, (dup, false));
    }

    for (mut clean, mut dirty) in all_filters().into_iter().zip(all_filters()) {
        let clean_decisions: Vec<bool> = base.iter().map(|a| clean.offer(a).is_deliver()).collect();
        let dirty_decisions: Vec<bool> = with_dups
            .iter()
            .filter_map(|(a, orig)| {
                let deliver = dirty.offer(a).is_deliver();
                orig.then_some(deliver)
            })
            .collect();
        assert_eq!(
            clean_decisions,
            dirty_decisions,
            "{} changed a decision because of duplicate offers",
            clean.name()
        );
    }
}

#[test]
fn duplicate_indifference_smoke() {
    // A couple of fixed cases (including the degenerate no-alert one),
    // then a deterministic seeded sweep.
    check_duplicate_indifference(
        &[60.0, 40.0, 70.0],
        &[true, false, true],
        &[(0, 0), (2, 1)],
        false,
    );
    check_duplicate_indifference(&[1.0, 2.0], &[true, true], &[], true);
    let mut state = 0x5eedu64;
    let mut next = |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for _ in 0..50 {
        let n = 5 + next(40) as usize;
        let values: Vec<f64> = (0..n).map(|_| next(1000) as f64 / 10.0).collect();
        let keep: Vec<bool> = (0..n).map(|_| next(4) != 0).collect();
        let dups: Vec<(usize, usize)> =
            (0..next(10)).map(|_| (next(1000) as usize, next(1000) as usize)).collect();
        check_duplicate_indifference(&values, &keep, &dups, next(2) == 0);
    }
}

proptest! {
    #[test]
    fn duplicate_offers_never_change_decisions(
        values in proptest::collection::vec(0.0f64..100.0, 5..50),
        keep in proptest::collection::vec(any::<bool>(), 50..51),
        dups in proptest::collection::vec((0usize..1000, 0usize..1000), 0..12),
        use_delta in any::<bool>(),
    ) {
        check_duplicate_indifference(&values, &keep, &dups, use_delta);
    }
}
