//! Socket-mode adapters: the transport crate's real UDP/TCP links
//! dressed up as the actor bodies' [`UpdateSender`] / [`AlertSink`]
//! traits, so `dm_body` and `ce_body` drive loopback sockets exactly
//! as they drive in-process channels.
//!
//! LOCK ORDER: no locks here — the adapters delegate straight into the
//! transport links, whose counter mutexes are leaves.

use rcm_core::{Alert, Update};
use rcm_transport::{EventedBackLink, TcpBackLink, UdpFrontLink};

use crate::actors::{AlertSink, UpdateSender};

/// A DM's UDP front link plus the Fin repeat count it signs off with.
/// UDP has no hangup, so end-of-stream is an explicit marker — repeated
/// because the front link is allowed to drop it like any datagram.
pub(crate) struct UdpSender {
    pub link: UdpFrontLink,
    pub fin_repeats: usize,
}

impl UpdateSender for UdpSender {
    fn send_update(&mut self, update: Update) -> bool {
        self.link.send_update(update)
    }

    fn finish(&mut self) {
        self.link.finish(self.fin_repeats);
    }
}

impl AlertSink for TcpBackLink {
    fn send_alert(&mut self, alert: Alert) {
        TcpBackLink::send_alert(self, alert);
    }

    fn flush(&mut self) {
        self.finish();
    }

    fn abandon(&mut self) {
        TcpBackLink::abandon(self);
    }
}

impl AlertSink for EventedBackLink {
    fn send_alert(&mut self, alert: Alert) {
        EventedBackLink::send_alert(self, alert);
    }

    fn flush(&mut self) {
        self.finish();
    }

    fn abandon(&mut self) {
        EventedBackLink::abandon(self);
    }
}
