//! `rcm-ce` — a deployable Condition Evaluator node: receives updates
//! over UDP, evaluates its condition set, and forwards alerts over a
//! reconnecting TCP back link to the AD.
//!
//! ```text
//! cargo run -p rcm-runtime --bin rcm-ce -- \
//!     --bind 127.0.0.1:7101 --ad 127.0.0.1:7200 --node 0 \
//!     --condition 'temp[0].value > 3000'
//! ```
//!
//! Variables get ids in first-mention order across the `--condition`
//! expressions, so every DM's `--var` index must match that order. The
//! UDP ingress enforces the front-link contract (reordered and
//! duplicated datagrams are dropped); the TCP back link queues and
//! resends across connection drops, so no alert handed to it is lost.
//! The node exits once `--dms` distinct Fin markers arrived (or after
//! `--idle-ms` of silence as a backstop against lost Fins).
//!
//! The UDP ingress auto-detects each frame's codec from its version
//! byte, so DMs may send JSON or binary (or a mix) without
//! configuration here. `--codec json|binary` selects what *this* node
//! emits on its back link (default binary; the AD auto-detects too),
//! and `--batch N` coalesces up to `N` alerts per stream write
//! (default 1 — no batching). `--engine threaded|evented` picks the
//! socket engine (default evented: every socket of the node rides one
//! readiness loop, so a CE holds thousands of idle front links;
//! `threaded` is the blocking reference path).
//!
//! `--workers N` (default 0 = evaluate inline on the ingress thread)
//! enables the shard-parallel evaluation pipeline: conditions are
//! split `cond_id % N` across worker threads fed over bounded SPSC
//! rings, and a sequencer merges per-shard alerts back into the exact
//! single-threaded emission order before the back link. A full ring
//! sheds the update for every shard — observationally a front-link
//! drop — and the exit report then carries the shed count and the
//! ingest→emit latency percentiles.
//!
//! LOCK ORDER: the only locks are the transport links' leaf stats
//! mutexes, read one at a time after the stream ends.

use std::net::SocketAddr;
use std::process::ExitCode;

use rcm_core::condition::{expr::CompiledCondition, Condition};
use rcm_core::{Alert, CeId, CondId, ConditionRegistry, LatencyHistogram, VarRegistry};
use rcm_net::Backoff;
use rcm_runtime::{AlertDrain, EvalPipeline, PipelineOptions};
use rcm_sync::atomic::{AtomicU64, Ordering};
use rcm_sync::time::Duration;
use rcm_sync::Arc;
use rcm_transport::{
    BackLinkSpec, BatchPolicy, Codec, Engine, EventLoop, TcpBackLink, UdpFrontReceiver,
};

struct Options {
    bind: SocketAddr,
    ad: SocketAddr,
    conditions: Vec<String>,
    node: u32,
    dms: usize,
    idle: Duration,
    codec: Codec,
    batch: BatchPolicy,
    engine: Engine,
    workers: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcm-ce --bind HOST:PORT --ad HOST:PORT --condition '<expr>' \
         [--condition '<expr>' ...] [--node N] [--dms N] [--idle-ms N] \
         [--codec json|binary] [--batch N] [--engine threaded|evented] [--workers N]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let any: SocketAddr = "0.0.0.0:0".parse().ok()?;
    let mut opts = Options {
        bind: any,
        ad: any,
        conditions: Vec::new(),
        node: 0,
        dms: 1,
        idle: Duration::from_secs(5),
        codec: Codec::default(),
        batch: BatchPolicy::off(),
        engine: Engine::default(),
        workers: 0,
    };
    let mut seen_bind = false;
    let mut seen_ad = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                opts.bind = args.next()?.parse().ok()?;
                seen_bind = true;
            }
            "--ad" => {
                opts.ad = args.next()?.parse().ok()?;
                seen_ad = true;
            }
            "--condition" => opts.conditions.push(args.next()?),
            "--node" => opts.node = args.next()?.parse().ok()?,
            "--dms" => opts.dms = args.next()?.parse().ok()?,
            "--idle-ms" => opts.idle = Duration::from_millis(args.next()?.parse().ok()?),
            "--codec" => opts.codec = args.next()?.parse().ok()?,
            "--engine" => opts.engine = args.next()?.parse().ok()?,
            "--workers" => opts.workers = args.next()?.parse().ok()?,
            "--batch" => {
                let n: usize = args.next()?.parse().ok()?;
                opts.batch = if n > 1 {
                    BatchPolicy { max_count: n, ..BatchPolicy::stream() }
                } else {
                    BatchPolicy::off()
                };
            }
            _ => return None,
        }
    }
    if !seen_bind || !seen_ad || opts.conditions.is_empty() {
        return None;
    }
    Some(opts)
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };

    let mut vars = VarRegistry::new();
    let mut registry = ConditionRegistry::new(CeId::new(opts.node));
    let mut conds: Vec<Arc<dyn Condition>> = Vec::new();
    for (i, expr) in opts.conditions.iter().enumerate() {
        match CompiledCondition::compile(expr, &mut vars) {
            Ok(c) => {
                let c: Arc<dyn Condition> = Arc::new(c);
                conds.push(Arc::clone(&c));
                registry.insert(CondId::new(i as u32), c);
            }
            Err(e) => {
                eprintln!("error: bad condition '{expr}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match opts.engine {
        Engine::Threaded => run_threaded(&opts, registry, &conds),
        Engine::Evented => run_evented(&opts, registry, &conds),
    }
}

/// Routes the pipeline sequencer's merged alert stream onto a back
/// link; `end_of_stream` flushes and retires the link so every queued
/// alert is on the wire before the node reports.
struct BackDrain<B> {
    back: B,
}

impl AlertDrain for BackDrain<TcpBackLink> {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        for alert in alerts {
            self.back.send_alert(alert);
        }
    }
    fn end_of_stream(&mut self) {
        self.back.finish();
    }
}

impl AlertDrain for BackDrain<rcm_transport::EventedBackLink> {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        for alert in alerts {
            self.back.send_alert(alert);
        }
    }
    fn end_of_stream(&mut self) {
        self.back.finish();
    }
}

/// Starts the evaluation pipeline for a deployed node: shards the
/// condition set `cond_id % workers` and owns the back link via
/// [`BackDrain`].
fn start_pipeline<B>(
    opts: &Options,
    conds: &[Arc<dyn Condition>],
    back: B,
) -> (EvalPipeline, Arc<LatencyHistogram>, Arc<AtomicU64>)
where
    BackDrain<B>: AlertDrain + 'static,
{
    let latency = Arc::new(LatencyHistogram::new());
    let shed = Arc::new(AtomicU64::new(0));
    let pipe = EvalPipeline::start(
        CeId::new(opts.node),
        conds,
        &PipelineOptions::with_workers(opts.workers),
        Box::new(BackDrain { back }),
        Arc::clone(&latency),
        Arc::clone(&shed),
    );
    (pipe, latency, shed)
}

/// The reference path: a blocking ingress loop on this thread, a
/// blocking back link inside its callback.
fn run_threaded(
    opts: &Options,
    mut registry: ConditionRegistry,
    conds: &[Arc<dyn Condition>],
) -> ExitCode {
    let receiver = match UdpFrontReceiver::bind(opts.bind) {
        Ok(r) => r.expected_fins(opts.dms).idle_timeout(opts.idle),
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    let mut back = match TcpBackLink::connect(opts.ad, opts.node, backoff(opts)) {
        Ok(b) => b.codec(opts.codec).batching(opts.batch),
        Err(e) => {
            eprintln!("error: cannot reach AD at {}: {e}", opts.ad);
            return ExitCode::FAILURE;
        }
    };
    let back_stats = back.stats_handle();

    let ingress = if opts.workers == 0 {
        // Single-threaded pipeline: ingress → registry → back link.
        // The receiver's gate already dropped reorders/duplicates, so
        // every delivered update goes straight into evaluation.
        let mut alerts = Vec::new();
        let ingress = receiver.run(|update| {
            alerts.clear();
            registry.ingest(update, &mut alerts);
            for alert in alerts.drain(..) {
                back.send_alert(alert);
            }
        });
        back.finish();
        ingress
    } else {
        // Shard-parallel pipeline: the drain owns the back link; a
        // full ring sheds the update for every shard (≡ a front-link
        // drop), keeping the ingress loop allocation- and wait-free.
        let (mut pipe, latency, shed) = start_pipeline(opts, conds, back);
        let ingress = receiver.run(|update| {
            if pipe.would_shed() {
                pipe.count_shed();
            } else {
                pipe.dispatch(update);
            }
        });
        pipe.finish();
        report_pipeline(opts.workers, shed.load(Ordering::Relaxed), &latency);
        ingress
    };

    let sent = back_stats.lock().sent;
    report(ingress.delivered, ingress.dropped_stale, ingress.decode_errors, sent);
    ExitCode::SUCCESS
}

/// The default path: ingress and back link as state machines on one
/// readiness loop; evaluation stays on this thread, fed by a channel
/// that closes when the ingress retires (all Fins, or the idle
/// backstop).
fn run_evented(
    opts: &Options,
    mut registry: ConditionRegistry,
    conds: &[Arc<dyn Condition>],
) -> ExitCode {
    let sock = match std::net::UdpSocket::bind(opts.bind) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    let mut el = match EventLoop::new() {
        Ok(el) => el,
        Err(e) => {
            eprintln!("error: cannot create event loop: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (tx, rx) = rcm_sync::chan::unbounded();
    let ingress = match el.add_front_ingress(sock, opts.dms, opts.idle, move |update| {
        let _ = tx.send(update);
    }) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot register ingress: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec =
        BackLinkSpec::new(opts.ad, opts.node, backoff(opts)).codec(opts.codec).batching(opts.batch);
    let mut back = match el.add_back_link(spec) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot reach AD at {}: {e}", opts.ad);
            return ExitCode::FAILURE;
        }
    };
    let back_stats = back.stats_handle();
    let engine = rcm_sync::thread::spawn(move || el.run());

    if opts.workers == 0 {
        let mut alerts = Vec::new();
        while let Ok(update) = rx.recv() {
            alerts.clear();
            registry.ingest(update, &mut alerts);
            for alert in alerts.drain(..) {
                back.send_alert(alert);
            }
        }
        back.finish();
    } else {
        let (mut pipe, latency, shed) = start_pipeline(opts, conds, back);
        while let Ok(update) = rx.recv() {
            if pipe.would_shed() {
                pipe.count_shed();
            } else {
                pipe.dispatch(update);
            }
        }
        pipe.finish();
        report_pipeline(opts.workers, shed.load(Ordering::Relaxed), &latency);
    }
    let _ = engine.join();

    let i = ingress.snapshot();
    report(i.delivered, i.dropped_stale, i.decode_errors, back_stats.snapshot().sent);
    ExitCode::SUCCESS
}

fn backoff(opts: &Options) -> Backoff {
    Backoff::new(Duration::from_millis(1), Duration::from_millis(100), opts.node as u64)
}

fn report(delivered: u64, stale: u64, decode_errors: u64, sent: u64) {
    eprintln!(
        "done: {delivered} update(s) evaluated ({stale} stale dropped, \
         {decode_errors} decode error(s)); {sent} alert(s) sent"
    );
}

fn report_pipeline(workers: usize, shed: u64, latency: &LatencyHistogram) {
    let snap = latency.snapshot();
    eprintln!(
        "pipeline: {workers} worker(s), {shed} update(s) shed; ingest→emit latency \
         p50 {} ns, p99 {} ns, p999 {} ns over {} update(s)",
        snap.p50_ns, snap.p99_ns, snap.p999_ns, snap.count
    );
}
