//! `rcm-ce` — a deployable Condition Evaluator node: receives updates
//! over UDP, evaluates its condition set, and forwards alerts over a
//! reconnecting TCP back link to the AD.
//!
//! ```text
//! cargo run -p rcm-runtime --bin rcm-ce -- \
//!     --bind 127.0.0.1:7101 --ad 127.0.0.1:7200 --node 0 \
//!     --condition 'temp[0].value > 3000'
//! ```
//!
//! Variables get ids in first-mention order across the `--condition`
//! expressions, so every DM's `--var` index must match that order. The
//! UDP ingress enforces the front-link contract (reordered and
//! duplicated datagrams are dropped); the TCP back link queues and
//! resends across connection drops, so no alert handed to it is lost.
//! The node exits once `--dms` distinct Fin markers arrived (or after
//! `--idle-ms` of silence as a backstop against lost Fins).
//!
//! The UDP ingress auto-detects each frame's codec from its version
//! byte, so DMs may send JSON or binary (or a mix) without
//! configuration here. `--codec json|binary` selects what *this* node
//! emits on its back link (default binary; the AD auto-detects too),
//! and `--batch N` coalesces up to `N` alerts per stream write
//! (default 1 — no batching).
//!
//! LOCK ORDER: the only locks are the transport links' leaf stats
//! mutexes, read one at a time after the stream ends.

use std::net::SocketAddr;
use std::process::ExitCode;

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::{CeId, CondId, ConditionRegistry, VarRegistry};
use rcm_net::Backoff;
use rcm_sync::time::Duration;
use rcm_sync::Arc;
use rcm_transport::{BatchPolicy, Codec, TcpBackLink, UdpFrontReceiver};

struct Options {
    bind: SocketAddr,
    ad: SocketAddr,
    conditions: Vec<String>,
    node: u32,
    dms: usize,
    idle: Duration,
    codec: Codec,
    batch: BatchPolicy,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcm-ce --bind HOST:PORT --ad HOST:PORT --condition '<expr>' \
         [--condition '<expr>' ...] [--node N] [--dms N] [--idle-ms N] \
         [--codec json|binary] [--batch N]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let any: SocketAddr = "0.0.0.0:0".parse().ok()?;
    let mut opts = Options {
        bind: any,
        ad: any,
        conditions: Vec::new(),
        node: 0,
        dms: 1,
        idle: Duration::from_secs(5),
        codec: Codec::default(),
        batch: BatchPolicy::off(),
    };
    let mut seen_bind = false;
    let mut seen_ad = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                opts.bind = args.next()?.parse().ok()?;
                seen_bind = true;
            }
            "--ad" => {
                opts.ad = args.next()?.parse().ok()?;
                seen_ad = true;
            }
            "--condition" => opts.conditions.push(args.next()?),
            "--node" => opts.node = args.next()?.parse().ok()?,
            "--dms" => opts.dms = args.next()?.parse().ok()?,
            "--idle-ms" => opts.idle = Duration::from_millis(args.next()?.parse().ok()?),
            "--codec" => opts.codec = args.next()?.parse().ok()?,
            "--batch" => {
                let n: usize = args.next()?.parse().ok()?;
                opts.batch = if n > 1 {
                    BatchPolicy { max_count: n, ..BatchPolicy::stream() }
                } else {
                    BatchPolicy::off()
                };
            }
            _ => return None,
        }
    }
    if !seen_bind || !seen_ad || opts.conditions.is_empty() {
        return None;
    }
    Some(opts)
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };

    let mut vars = VarRegistry::new();
    let mut registry = ConditionRegistry::new(CeId::new(opts.node));
    for (i, expr) in opts.conditions.iter().enumerate() {
        match CompiledCondition::compile(expr, &mut vars) {
            Ok(c) => registry.insert(CondId::new(i as u32), Arc::new(c)),
            Err(e) => {
                eprintln!("error: bad condition '{expr}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let receiver = match UdpFrontReceiver::bind(opts.bind) {
        Ok(r) => r.expected_fins(opts.dms).idle_timeout(opts.idle),
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.bind);
            return ExitCode::FAILURE;
        }
    };
    let backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(100), opts.node as u64);
    let mut back = match TcpBackLink::connect(opts.ad, opts.node, backoff) {
        Ok(b) => b.codec(opts.codec).batching(opts.batch),
        Err(e) => {
            eprintln!("error: cannot reach AD at {}: {e}", opts.ad);
            return ExitCode::FAILURE;
        }
    };
    let back_stats = back.stats_handle();

    // Single-threaded pipeline: ingress → registry → back link. The
    // receiver's gate already dropped reorders/duplicates, so every
    // delivered update goes straight into evaluation.
    let mut alerts = Vec::new();
    let ingress = receiver.run(|update| {
        alerts.clear();
        registry.ingest(update, &mut alerts);
        for alert in alerts.drain(..) {
            back.send_alert(alert);
        }
    });
    back.finish();

    let sent = back_stats.lock().sent;
    eprintln!(
        "done: {} update(s) evaluated ({} stale dropped, {} decode error(s)); {} alert(s) sent",
        ingress.delivered, ingress.dropped_stale, ingress.decode_errors, sent
    );
    ExitCode::SUCCESS
}
