//! `rcm-monitor` — run a replicated condition-monitoring pipeline over
//! readings from stdin.
//!
//! ```text
//! printf '2900\n3100\n3200\n' | \
//!     cargo run -p rcm-runtime --bin rcm-monitor -- \
//!         --condition 'temp[0].value > 3000' --replicas 3 --filter ad4
//! ```
//!
//! Input lines are either `<value>` (single-variable conditions) or
//! `<var> <value>` (multi-variable); readings are assigned consecutive
//! per-variable sequence numbers in input order. Each displayed alert
//! is printed as it happens; a summary follows at end of stream.
//!
//! LOCK ORDER: no mutexes in this binary — the only `.lock()` is
//! stdin's reader lock, held for the read loop on the main thread.

use rcm_sync::Arc;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::ExitCode;

use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, PassThrough};
use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::Condition;
use rcm_core::{VarId, VarRegistry};
use rcm_net::{Bernoulli, LossModel, Lossless};
use rcm_runtime::{MonitorSystem, VarFeed};

struct Options {
    condition: String,
    replicas: usize,
    filter: String,
    loss: f64,
    seed: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcm-monitor --condition '<expr>' [--replicas N] \
         [--filter pass|ad1|ad2|ad3|ad4|ad5|ad6] [--loss P] [--seed N]\n\
         readings on stdin: '<value>' or '<var> <value>' per line"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let mut opts =
        Options { condition: String::new(), replicas: 2, filter: "ad1".into(), loss: 0.0, seed: 0 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--condition" => opts.condition = args.next()?,
            "--replicas" => opts.replicas = args.next()?.parse().ok()?,
            "--filter" => opts.filter = args.next()?,
            "--loss" => opts.loss = args.next()?.parse().ok()?,
            "--seed" => opts.seed = args.next()?.parse().ok()?,
            _ => return None,
        }
    }
    if opts.condition.is_empty() {
        return None;
    }
    Some(opts)
}

fn build_filter(name: &str, vars: &[VarId]) -> Option<Box<dyn AlertFilter>> {
    Some(match name {
        "pass" => Box::new(PassThrough::new()),
        "ad1" => Box::new(Ad1::new()),
        "ad2" if vars.len() == 1 => Box::new(Ad2::new(vars[0])),
        "ad3" if vars.len() == 1 => Box::new(Ad3::new(vars[0])),
        "ad4" if vars.len() == 1 => Box::new(Ad4::new(vars[0])),
        "ad5" => Box::new(Ad5::new(vars.to_vec())),
        "ad6" => Box::new(Ad6::new(vars.to_vec())),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };

    let mut registry = VarRegistry::new();
    let condition = match CompiledCondition::compile(&opts.condition, &mut registry) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: bad condition: {e}");
            return ExitCode::FAILURE;
        }
    };
    let vars = condition.variables();

    // Read all readings: "<value>" or "<var> <value>" per line.
    let mut feeds: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let default_var = registry.name(vars[0]).expect("compiled variable").to_owned();
    for (lineno, line) in std::io::stdin().lock().lines().enumerate() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (var, value) = match (parts.next(), parts.next()) {
            (Some(v), None) => (default_var.clone(), v),
            (Some(var), Some(v)) => (var.to_owned(), v),
            _ => continue,
        };
        let Ok(value) = value.parse::<f64>() else {
            eprintln!("error: line {}: bad value '{value}'", lineno + 1);
            return ExitCode::FAILURE;
        };
        feeds.entry(var).or_default().push(value);
    }

    // Wire the system.
    let registry = Arc::new(registry);
    let filter_name = opts.filter.clone();
    let vars_for_filter = vars.clone();
    let registry_for_cb = Arc::clone(&registry);
    let mut builder = MonitorSystem::builder(Arc::new(condition))
        .replicas(opts.replicas)
        .seed(opts.seed)
        .filter(move |_| {
            build_filter(&filter_name, &vars_for_filter).unwrap_or_else(|| {
                eprintln!("error: filter '{filter_name}' unavailable for this variable count");
                std::process::exit(2);
            })
        })
        .on_alert(move |alert| {
            let heads: Vec<String> = alert
                .fingerprint
                .iter()
                .map(|(v, seqnos)| {
                    format!("{}@{}", registry_for_cb.name(v).unwrap_or("?"), seqnos[0])
                })
                .collect();
            let value = alert.snapshot.first().map(|u| u.value);
            println!("ALERT {} (reading {:?}) [from {}]", heads.join(", "), value, alert.id.ce);
        });
    for (name, values) in feeds {
        let Some(var) = registry.lookup(&name).filter(|v| vars.contains(v)) else {
            eprintln!("error: variable '{name}' is not in the condition");
            return ExitCode::FAILURE;
        };
        builder = builder.feed(VarFeed::new(var, values));
    }
    let loss_p = opts.loss;
    builder = builder.loss(move |_, _| {
        if loss_p > 0.0 {
            Box::new(Bernoulli::new(loss_p)) as Box<dyn LossModel>
        } else {
            Box::new(Lossless)
        }
    });

    let system = match builder.start() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = system.wait();
    let dropped: u64 = report.links.iter().map(|(_, r)| r.dropped).sum();
    eprintln!(
        "done: {} alert(s) displayed of {} arriving; {} update(s) lost on front links",
        report.displayed.len(),
        report.arrivals.len(),
        dropped
    );
    ExitCode::SUCCESS
}
