//! `rcm-ad` — a deployable Alert Displayer node: accepts TCP
//! connections from every CE replica, filters the merged alert stream,
//! and prints each displayed alert.
//!
//! ```text
//! cargo run -p rcm-runtime --bin rcm-ad -- \
//!     --bind 127.0.0.1:7200 --replicas 2 --filter ad1
//! ```
//!
//! Reconnecting back links re-send their unacked tail, so the merged
//! stream contains duplicates by design — the selected AD algorithm is
//! what keeps the user's view clean. Variable-scoped filters (ad2–ad6)
//! take the variable ids via repeated `--var` flags, matching the CE's
//! first-mention order. The node exits once `--replicas` distinct Fin
//! markers arrived (or after `--idle-ms` of silence).
//!
//! There is no `--codec` flag here: the listener dispatches on each
//! frame's version byte, so JSON and binary CEs (batched or not) can
//! share one AD during a rollout. `--engine threaded|evented` picks
//! the socket engine (default evented: the accept socket and every CE
//! connection ride one readiness loop, so an AD holds hundreds of back
//! links without per-connection reader threads).
//!
//! LOCK ORDER: no locks on the main thread beyond the listener's leaf
//! stats mutex, read after the stream ends.

use std::net::SocketAddr;
use std::process::ExitCode;

use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, PassThrough};
use rcm_core::VarId;
use rcm_sync::time::Duration;
use rcm_transport::{Engine, EventLoop, ListenerStats, TcpAlertListener};

struct Options {
    bind: SocketAddr,
    replicas: usize,
    filter: String,
    vars: Vec<VarId>,
    idle: Duration,
    engine: Engine,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcm-ad --bind HOST:PORT [--replicas N] \
         [--filter pass|ad1|ad2|ad3|ad4|ad5|ad6] [--var N ...] [--idle-ms N] \
         [--engine threaded|evented]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let any: SocketAddr = "0.0.0.0:0".parse().ok()?;
    let mut opts = Options {
        bind: any,
        replicas: 2,
        filter: "ad1".into(),
        vars: Vec::new(),
        idle: Duration::from_secs(10),
        engine: Engine::default(),
    };
    let mut seen_bind = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                opts.bind = args.next()?.parse().ok()?;
                seen_bind = true;
            }
            "--replicas" => opts.replicas = args.next()?.parse().ok()?,
            "--filter" => opts.filter = args.next()?,
            "--var" => opts.vars.push(VarId::new(args.next()?.parse().ok()?)),
            "--idle-ms" => opts.idle = Duration::from_millis(args.next()?.parse().ok()?),
            "--engine" => opts.engine = args.next()?.parse().ok()?,
            _ => return None,
        }
    }
    if !seen_bind {
        return None;
    }
    if opts.vars.is_empty() {
        opts.vars.push(VarId::new(0));
    }
    Some(opts)
}

fn build_filter(name: &str, vars: &[VarId]) -> Option<Box<dyn AlertFilter>> {
    Some(match name {
        "pass" => Box::new(PassThrough::new()),
        "ad1" => Box::new(Ad1::new()),
        "ad2" if vars.len() == 1 => Box::new(Ad2::new(vars[0])),
        "ad3" if vars.len() == 1 => Box::new(Ad3::new(vars[0])),
        "ad4" if vars.len() == 1 => Box::new(Ad4::new(vars[0])),
        "ad5" => Box::new(Ad5::new(vars.to_vec())),
        "ad6" => Box::new(Ad6::new(vars.to_vec())),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };

    let Some(mut filter) = build_filter(&opts.filter, &opts.vars) else {
        eprintln!("error: filter '{}' unavailable for this variable count", opts.filter);
        return ExitCode::FAILURE;
    };
    let mut displayed: u64 = 0;
    let mut display = |alert: rcm_core::Alert| {
        if filter.offer(&alert).is_deliver() {
            displayed += 1;
            let heads: Vec<String> =
                alert.fingerprint.iter().map(|(v, seqnos)| format!("{v}@{}", seqnos[0])).collect();
            let value = alert.snapshot.first().map(|u| u.value);
            println!("ALERT {} (reading {:?}) [from {}]", heads.join(", "), value, alert.id.ce);
        }
    };

    let stats: ListenerStats = match opts.engine {
        Engine::Threaded => {
            let listener = match TcpAlertListener::bind(opts.bind) {
                Ok(l) => l.expected_fins(opts.replicas).idle_timeout(opts.idle),
                Err(e) => {
                    eprintln!("error: cannot bind {}: {e}", opts.bind);
                    return ExitCode::FAILURE;
                }
            };
            listener.run(display)
        }
        Engine::Evented => {
            // The accept socket and every CE connection share one
            // readiness loop on a side thread; filtering stays here,
            // fed by a channel that closes when the listener retires.
            let sock = match std::net::TcpListener::bind(opts.bind) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind {}: {e}", opts.bind);
                    return ExitCode::FAILURE;
                }
            };
            let mut el = match EventLoop::new() {
                Ok(el) => el,
                Err(e) => {
                    eprintln!("error: cannot create event loop: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (tx, rx) = rcm_sync::chan::unbounded();
            let counters =
                match el.add_alert_listener(sock, opts.replicas, opts.idle, move |alert| {
                    let _ = tx.send(alert);
                }) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: cannot register listener: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let engine = rcm_sync::thread::spawn(move || el.run());
            while let Ok(alert) = rx.recv() {
                display(alert);
            }
            let _ = engine.join();
            counters.snapshot()
        }
    };

    eprintln!(
        "done: {displayed} alert(s) displayed of {} arriving over {} connection(s); \
         {} decode error(s)",
        stats.alerts, stats.connections, stats.decode_errors
    );
    ExitCode::SUCCESS
}
