//! `rcm-dm` — a deployable Data Monitor node: reads one variable's
//! readings from stdin and multicasts them as sequence-numbered updates
//! over UDP to every CE replica.
//!
//! ```text
//! printf '2900\n3100\n3200\n' | \
//!     cargo run -p rcm-runtime --bin rcm-dm -- \
//!         --ce 127.0.0.1:7101 --ce 127.0.0.1:7102 --var 0 --period-us 500
//! ```
//!
//! One reading per line; readings get consecutive sequence numbers in
//! input order. The front link is UDP — lossy by design — so the node
//! ends the stream with repeated Fin markers (`--fin-repeats`) rather
//! than relying on any single datagram arriving.
//!
//! `--codec json|binary` selects the payload encoding (default binary;
//! CEs auto-detect per frame, so mixed fleets interoperate), and
//! `--batch N` packs up to `N` updates per datagram (default 1 — no
//! batching).
//!
//! LOCK ORDER: the only locks are stdin's reader lock (held for the
//! read loop on the main thread) and the links' leaf stats mutexes,
//! read one at a time after the stream ends.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::ExitCode;

use rcm_core::{Update, VarId};
use rcm_sync::time::Duration;
use rcm_transport::{BatchPolicy, Codec, UdpFrontLink};

struct Options {
    ce: Vec<SocketAddr>,
    var: u32,
    node: u32,
    period: Duration,
    fin_repeats: usize,
    codec: Codec,
    batch: BatchPolicy,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcm-dm --ce HOST:PORT [--ce HOST:PORT ...] [--var N] [--node N] \
         [--period-us N] [--fin-repeats N] [--codec json|binary] [--batch N]\n\
         readings on stdin: one '<value>' per line"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        ce: Vec::new(),
        var: 0,
        node: 0,
        period: Duration::from_micros(500),
        fin_repeats: 16,
        codec: Codec::default(),
        batch: BatchPolicy::off(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ce" => opts.ce.push(args.next()?.parse().ok()?),
            "--var" => opts.var = args.next()?.parse().ok()?,
            "--node" => opts.node = args.next()?.parse().ok()?,
            "--period-us" => opts.period = Duration::from_micros(args.next()?.parse().ok()?),
            "--fin-repeats" => opts.fin_repeats = args.next()?.parse().ok()?,
            "--codec" => opts.codec = args.next()?.parse().ok()?,
            "--batch" => {
                let n: usize = args.next()?.parse().ok()?;
                opts.batch = if n > 1 {
                    BatchPolicy { max_count: n, ..BatchPolicy::datagram() }
                } else {
                    BatchPolicy::off()
                };
            }
            _ => return None,
        }
    }
    if opts.ce.is_empty() {
        return None;
    }
    Some(opts)
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };

    let mut links = Vec::with_capacity(opts.ce.len());
    for addr in &opts.ce {
        match UdpFrontLink::connect(*addr, opts.node) {
            Ok(link) => links.push(link.codec(opts.codec).batching(opts.batch)),
            Err(e) => {
                eprintln!("error: cannot open front link to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let var = VarId::new(opts.var);
    let mut seqno: u64 = 0;
    for (lineno, line) in std::io::stdin().lock().lines().enumerate() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Ok(value) = line.parse::<f64>() else {
            eprintln!("error: line {}: bad value '{line}'", lineno + 1);
            return ExitCode::FAILURE;
        };
        seqno += 1;
        let update = Update::new(var, seqno, value);
        for link in &mut links {
            link.send_update(update);
        }
        if !opts.period.is_zero() {
            rcm_sync::thread::sleep(opts.period);
        }
    }
    for link in &mut links {
        link.finish(opts.fin_repeats);
    }

    let sent: u64 = links.iter().map(|l| l.stats_handle().lock().frames_sent).sum();
    let dropped: u64 = links.iter().map(|l| l.stats_handle().lock().frames_dropped).sum();
    eprintln!(
        "done: {seqno} reading(s) as {sent} frame(s) over {} link(s); {dropped} send error(s)",
        links.len()
    );
    ExitCode::SUCCESS
}
