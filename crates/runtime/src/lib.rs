//! # rcm-runtime — a deployable actor runtime for condition monitoring
//!
//! The simulator (`rcm-sim`) proves properties; this crate actually
//! *runs* a monitoring pipeline: each Data Monitor, Condition Evaluator
//! replica and the Alert Displayer is an OS thread, wired with FIFO
//! channels standing in for the paper's links:
//!
//! * **front links** are per-`(DM, CE)` channels wrapped in a loss
//!   model (UDP-like: FIFO but lossy);
//! * **back links** are [`BackLink`]s (TCP-like: FIFO and lossless,
//!   surviving scripted severance via backoff-paced reconnect and a
//!   bounded resend queue).
//!
//! Failure is a first-class input: a [`FaultPlan`] can kill CE replicas
//! (the supervisor restarts them and replays the DMs' retained
//! windows), sever back links, and stall front links — see
//! [`SystemBuilder::faults`].
//!
//! A replica is not limited to one condition: each CE hosts its whole
//! condition set in a single [`rcm_core::ConditionRegistry`], routing
//! every arrival through the registry's variable index. Build a
//! multi-condition system with [`MonitorSystem::builder_multi`] or
//! [`SystemBuilder::monitor`]; condition `i` emits under
//! `CondId::new(i)` and the AD can demultiplex per condition with
//! [`rcm_core::ad::PerCondition`].
//!
//! Messages cross links through the length-prefixed [`wire`] codec, so
//! the pipeline exercises real serialization end to end. Shutdown is by
//! ownership: when a DM finishes its workload it drops its senders;
//! when every DM feeding a CE is gone the CE drains and exits; when
//! every CE is gone the AD finishes filtering and the system joins.
//!
//! The same pipeline also runs over **real sockets**: bind a
//! [`Topology`] (UDP per front link, TCP per back link — see
//! `rcm_transport`) and hand it to [`SystemBuilder::transport`], or
//! deploy the `rcm-dm` / `rcm-ce` / `rcm-ad` binaries as separate
//! processes. Either way the actor bodies, codec and fault machinery
//! are identical; only the link layer changes.
//!
//! ```rust
//! use rcm_runtime::{MonitorSystem, VarFeed};
//! use rcm_core::condition::{Threshold, Cmp};
//! use rcm_core::ad::Ad1;
//! use rcm_core::VarId;
//! use std::sync::Arc;
//!
//! let x = VarId::new(0);
//! let system = MonitorSystem::builder(Arc::new(Threshold::new(x, Cmp::Gt, 3000.0)))
//!     .replicas(2)
//!     .feed(VarFeed::new(x, vec![2900.0, 3100.0, 3200.0]))
//!     .filter(|_vars| Box::new(Ad1::new()))
//!     .start()
//!     .expect("valid configuration");
//! let report = system.wait();
//! assert_eq!(report.displayed.len(), 2); // duplicate suppressed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actors;
mod backlink;
mod faults;
mod link;
pub mod pipeline;
mod socket;
mod system;
mod tree;
pub mod wire;

pub use backlink::{BackLink, BackLinkStats};
pub use faults::{
    FaultPlan, FaultReport, IngestGate, KillCe, RetainedWindow, SeverBackLink, StallFrontLink,
};
pub use link::{FrontLink, LinkReport};
pub use pipeline::{AlertDrain, EvalPipeline, PipelineOptions};
pub use rcm_transport::{
    BatchPolicy, BoundTopology, Codec, Engine, Topology, TransportMode, TransportReport,
};
pub use rcm_tree::{AggregateSpec, TreeError, TreeOptions, TreePlan, TreeStats};
pub use system::{ConfigError, MonitorSystem, PipelineReport, RunReport, SystemBuilder, VarFeed};
pub use tree::{TreeFault, TreeReport, TreeTopology};
