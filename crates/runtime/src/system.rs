//! System assembly: builder, running handle and final report.
//!
//! LOCK ORDER: every mutex here (fault report, per-replica record and
//! output sinks, AD arrival/display sinks, link stats) is a leaf —
//! taken alone, released before any send or other acquisition. No two
//! of these locks are ever held at once, so no ordering is needed.

use std::fmt;
use std::time::Duration;

use rcm_sync::atomic::{AtomicU64, Ordering};
use rcm_sync::chan::unbounded;
use rcm_sync::thread::JoinHandle;
use rcm_sync::{Arc, Mutex};

use rcm_core::ad::{Ad1, AlertFilter};
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, LatencyHistogram, LatencySnapshot, Update, VarId};
use rcm_net::{Backoff, LossModel, Lossless};
use rcm_transport::engine::{BackLinkCounters, EngineCounters, IngressCounters, ListenerCounters};
use rcm_transport::{
    BackLinkSpec, BoundTopology, Engine, EngineStats, EventLoop, FrontLinkStats, IngressStats,
    ListenerStats, TcpAlertListener, TcpBackLink, TcpLinkStats, TransportMode, TransportReport,
    UdpFrontLink, UdpFrontReceiver,
};

use crate::actors::{
    ad_body, ce_body, dm_body, AlertSink, CeFaultConfig, CePipeline, UpdateSender,
};
use crate::backlink::{BackLink, BackLinkStats};
use crate::faults::{FaultPlan, FaultReport, RetainedWindow};
use crate::link::{FrontLink, LinkReport};
use crate::pipeline::PipelineOptions;
use crate::socket::UdpSender;

/// One variable's data feed: where its Data Monitor's readings come
/// from — a pre-recorded list or a live channel.
pub struct VarFeed {
    var: VarId,
    source: crate::actors::FeedSource,
    period: Duration,
}

impl VarFeed {
    /// Creates a feed emitting `values` as fast as possible.
    pub fn new(var: VarId, values: impl Into<Vec<f64>>) -> Self {
        VarFeed {
            var,
            source: crate::actors::FeedSource::Values(values.into()),
            period: Duration::ZERO,
        }
    }

    /// Creates a **streaming** feed: the DM emits each reading pushed
    /// through the returned sender, and signals end-of-stream when the
    /// sender is dropped.
    ///
    /// ```rust
    /// use rcm_runtime::{MonitorSystem, VarFeed};
    /// use rcm_core::condition::{Threshold, Cmp};
    /// use rcm_core::VarId;
    /// use std::sync::Arc;
    ///
    /// let x = VarId::new(0);
    /// let (feed, tx) = VarFeed::streaming(x);
    /// let system = MonitorSystem::builder(Arc::new(Threshold::new(x, Cmp::Gt, 100.0)))
    ///     .replicas(2)
    ///     .feed(feed)
    ///     .start()?;
    /// tx.send(90.0)?;
    /// tx.send(120.0)?; // alert
    /// drop(tx); // end of stream
    /// let report = system.wait();
    /// assert_eq!(report.displayed.len(), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn streaming(var: VarId) -> (Self, rcm_sync::chan::Sender<f64>) {
        let (tx, rx) = unbounded();
        let feed =
            VarFeed { var, source: crate::actors::FeedSource::Channel(rx), period: Duration::ZERO };
        (feed, tx)
    }

    /// Sets the pause between emissions (default: none).
    #[must_use]
    pub fn period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }
}

impl fmt::Debug for VarFeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarFeed")
            .field("var", &self.var)
            .field("source", &self.source)
            .field("period", &self.period)
            .finish()
    }
}

type FilterFactory = Box<dyn FnOnce(&[VarId]) -> Box<dyn AlertFilter>>;
type LossFactory = Box<dyn FnMut(VarId, CeId) -> Box<dyn LossModel>>;
/// Callback invoked on the AD thread for each displayed alert.
pub(crate) type AlertCallback = Box<dyn Fn(&Alert) + Send>;
/// Per-link loss counters keyed by `(variable, replica)`.
type LinkReports = Vec<((VarId, CeId), Arc<Mutex<LinkReport>>)>;

/// Builder for a [`MonitorSystem`].
pub struct SystemBuilder {
    conditions: Vec<Arc<dyn Condition>>,
    replicas: usize,
    feeds: Vec<VarFeed>,
    filter: Option<FilterFactory>,
    loss: Option<LossFactory>,
    seed: u64,
    on_alert: Option<AlertCallback>,
    faults: Option<FaultPlan>,
    transport: Option<BoundTopology>,
    pipeline: PipelineOptions,
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("conditions", &self.conditions.iter().map(|c| c.name()).collect::<Vec<_>>())
            .field("replicas", &self.replicas)
            .field("feeds", &self.feeds)
            .field("seed", &self.seed)
            .field("faults", &self.faults)
            .field("pipeline", &self.pipeline)
            .finish()
    }
}

/// Configuration errors reported by [`SystemBuilder::start`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `replicas(0)` was requested.
    ZeroReplicas,
    /// [`MonitorSystem::builder_multi`] was given no conditions.
    NoConditions,
    /// No feed was supplied for a variable in the conditions' set.
    MissingFeed(VarId),
    /// A feed was supplied for a variable outside the conditions' set.
    UnknownFeedVariable(VarId),
    /// A bound topology's replica count disagrees with
    /// [`SystemBuilder::replicas`].
    TopologyMismatch {
        /// Replicas the builder was configured for.
        expected: usize,
        /// Replicas the topology binds.
        got: usize,
    },
    /// A socket-mode link failed to set up (bind, connect, configure).
    Transport(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroReplicas => write!(f, "system needs at least one replica"),
            ConfigError::NoConditions => write!(f, "system needs at least one condition"),
            ConfigError::MissingFeed(v) => {
                write!(f, "no feed supplied for condition variable {v}")
            }
            ConfigError::UnknownFeedVariable(v) => {
                write!(f, "feed variable {v} is not in any condition's variable set")
            }
            ConfigError::TopologyMismatch { expected, got } => {
                write!(f, "topology binds {got} CE replicas but the builder wants {expected}")
            }
            ConfigError::Transport(e) => write!(f, "socket transport setup failed: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SystemBuilder {
    /// Number of Condition Evaluator replicas (default 2).
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Adds a variable feed.
    #[must_use]
    pub fn feed(mut self, feed: VarFeed) -> Self {
        self.feeds.push(feed);
        self
    }

    /// Adds another condition to monitor alongside the ones already
    /// registered. Condition `i` (in registration order, starting from
    /// the one passed to [`MonitorSystem::builder`]) emits alerts under
    /// `CondId::new(i)`; every replica hosts the full set in one
    /// [`rcm_core::ConditionRegistry`], sharing the per-variable feeds.
    #[must_use]
    pub fn monitor(mut self, condition: Arc<dyn Condition>) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Sets the AD filtering algorithm (default: AD-1).
    #[must_use]
    pub fn filter(
        mut self,
        factory: impl FnOnce(&[VarId]) -> Box<dyn AlertFilter> + 'static,
    ) -> Self {
        self.filter = Some(Box::new(factory));
        self
    }

    /// Sets the per-front-link loss model factory (default: lossless).
    #[must_use]
    pub fn loss(
        mut self,
        factory: impl FnMut(VarId, CeId) -> Box<dyn LossModel> + 'static,
    ) -> Self {
        self.loss = Some(Box::new(factory));
        self
    }

    /// Seed for link loss sampling (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Registers a callback invoked (on the AD thread) for every
    /// displayed alert.
    #[must_use]
    pub fn on_alert(mut self, cb: impl Fn(&Alert) + Send + 'static) -> Self {
        self.on_alert = Some(Box::new(cb));
        self
    }

    /// Injects a fault schedule and enables supervision: scripted CE
    /// kills are caught and the replica restarted (within the plan's
    /// budget) with its histories replayed from the DMs' retained
    /// windows; back links honor the plan's severances and reconnect
    /// with capped backoff. Without this call the runtime is the
    /// happy-path pipeline: panics propagate and links never drop.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Number of evaluation workers per CE replica (default 0: each
    /// replica evaluates inline on its own thread, the reference
    /// single-threaded path). With `workers >= 1` every replica runs
    /// the shard-parallel [`EvalPipeline`](crate::EvalPipeline):
    /// conditions are partitioned `cond_id % workers` across worker
    /// threads fed over bounded rings, and a sequencer merges per-shard
    /// alerts back into the exact single-threaded emission order — the
    /// output is byte-identical for any worker count, but arrivals that
    /// find a ring full are shed like front-link loss (counted in
    /// [`RunReport::pipeline`]).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.pipeline.workers = workers;
        self
    }

    /// Capacity of each worker's bounded ring (default 1024); a full
    /// ring sheds arrivals. Ignored while `workers == 0`.
    #[must_use]
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.pipeline.ring_capacity = capacity.max(1);
        self
    }

    /// Worker ring-drain batching policy (default:
    /// [`PipelineOptions::default_batch`] — up to 64 jobs per drain,
    /// 1ms max delay). `max_bytes` is ignored for in-process jobs.
    #[must_use]
    pub fn eval_batch(mut self, batch: rcm_transport::BatchPolicy) -> Self {
        self.pipeline.batch = batch;
        self
    }

    /// Runs the pipeline over real sockets instead of channels: DMs
    /// send updates over UDP to the topology's CE addresses, CEs send
    /// alerts over TCP to its AD listener. The topology's replica count
    /// must match [`SystemBuilder::replicas`].
    ///
    /// Loss models ([`SystemBuilder::loss`]) and front-link stalls are
    /// in-process constructs and are ignored in socket mode — impair a
    /// socket run by routing front links through a
    /// [`LossProxy`](rcm_transport::LossProxy) instead
    /// ([`BoundTopology::route_front_links`]). Back-link severances and
    /// CE kills from the [`FaultPlan`] apply in both modes.
    #[must_use]
    pub fn transport(mut self, topology: BoundTopology) -> Self {
        self.transport = Some(topology);
        self
    }

    /// Spawns all actor threads and starts the pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is unusable
    /// (zero replicas, feeds not matching the condition's variables).
    pub fn start(mut self) -> Result<MonitorSystem, ConfigError> {
        if self.replicas == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        if self.conditions.is_empty() {
            return Err(ConfigError::NoConditions);
        }
        // The system's variable set is the union over all monitored
        // conditions (ascending, deduplicated) — feeds must cover it
        // exactly.
        let mut vars: Vec<VarId> = self.conditions.iter().flat_map(|c| c.variables()).collect();
        vars.sort_unstable();
        vars.dedup();
        for feed in &self.feeds {
            if !vars.contains(&feed.var) {
                return Err(ConfigError::UnknownFeedVariable(feed.var));
            }
        }
        for &v in &vars {
            if !self.feeds.iter().any(|f| f.var == v) {
                return Err(ConfigError::MissingFeed(v));
            }
        }
        if let Some(topology) = self.transport.take() {
            return self.start_sockets(topology, &vars);
        }

        let mut loss =
            self.loss.unwrap_or_else(|| Box::new(|_, _| Box::new(Lossless) as Box<dyn LossModel>));
        let filter_factory = self.filter.unwrap_or_else(|| {
            Box::new(|_vars: &[VarId]| Box::new(Ad1::new()) as Box<dyn AlertFilter>)
        });

        let plan = self.faults;
        let fault_report = Arc::new(Mutex::new(FaultReport::new(self.replicas)));
        // Run-wide evaluation ledgers, shared by every replica.
        let latency = Arc::new(LatencyHistogram::new());
        let shed = Arc::new(AtomicU64::new(0));
        // One retained window per feed, in feed order (empty when fault
        // injection is off, so the hot path never touches them).
        let windows: Vec<RetainedWindow> = match &plan {
            Some(p) => self.feeds.iter().map(|_| RetainedWindow::new(p.retain_window)).collect(),
            None => Vec::new(),
        };

        // Channels: one update channel per CE, one alert channel for the AD.
        let (alert_tx, alert_rx) = unbounded::<Alert>();
        let mut ce_senders = Vec::with_capacity(self.replicas);
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        let mut ingested: Vec<Arc<Mutex<Vec<Update>>>> = Vec::new();
        let mut emitted: Vec<Arc<Mutex<Vec<Alert>>>> = Vec::new();
        let mut backlink_stats: Vec<Arc<Mutex<BackLinkStats>>> = Vec::new();

        for ce in 0..self.replicas {
            let (tx, rx) = unbounded::<Update>();
            ce_senders.push(tx);
            let record = Arc::new(Mutex::new(Vec::new()));
            ingested.push(Arc::clone(&record));
            let outputs = Arc::new(Mutex::new(Vec::new()));
            emitted.push(Arc::clone(&outputs));
            let conditions = self.conditions.clone();

            let (backoff_base, backoff_cap) = plan
                .as_ref()
                .map_or((Duration::from_micros(200), Duration::from_millis(20)), |p| {
                    (p.backoff_base, p.backoff_cap)
                });
            let backoff_seed =
                self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(ce as u64);
            let mut back = BackLink::new(
                alert_tx.clone(),
                Backoff::new(backoff_base, backoff_cap, backoff_seed),
            );
            if let Some(p) = &plan {
                back = back
                    .with_severs(
                        p.severs
                            .iter()
                            .filter(|s| s.ce == ce)
                            .map(|s| (s.at_send, s.down_for))
                            .collect(),
                    )
                    .queue_cap(p.resend_queue_cap);
            }
            backlink_stats.push(back.stats_handle());

            let faults = plan.as_ref().map(|p| CeFaultConfig {
                kill_at: p.kills.iter().filter(|k| k.ce == ce).map(|k| k.at_arrival).collect(),
                max_restarts: p.max_restarts,
                windows: windows.clone(),
                report: Arc::clone(&fault_report),
                ce_index: ce,
            });
            let pipeline = CePipeline {
                options: self.pipeline,
                latency: Arc::clone(&latency),
                shed: Arc::clone(&shed),
            };
            handles.push(rcm_sync::thread::spawn(move || {
                ce_body(
                    CeId::new(ce as u32),
                    conditions,
                    rx,
                    Box::new(back) as Box<dyn AlertSink>,
                    record,
                    outputs,
                    faults,
                    pipeline,
                );
            }));
        }
        drop(alert_tx); // AD exits when the last CE back link drops.

        // The AD thread.
        let arrivals = Arc::new(Mutex::new(Vec::new()));
        let displayed = Arc::new(Mutex::new(Vec::new()));
        let filter = filter_factory(&vars);
        let ad_arrivals = Arc::clone(&arrivals);
        let ad_displayed = Arc::clone(&displayed);
        let on_alert = self.on_alert;
        handles.push(rcm_sync::thread::spawn(move || {
            ad_body(alert_rx, filter, ad_arrivals, ad_displayed, on_alert);
        }));

        // DM threads, one per feed, each with a link per replica.
        let mut link_reports = Vec::new();
        for (fi, feed) in self.feeds.into_iter().enumerate() {
            let mut links: Vec<Box<dyn UpdateSender>> = Vec::with_capacity(self.replicas);
            for (ci, tx) in ce_senders.iter().enumerate() {
                let link_seed = self.seed.wrapping_add((fi as u64) << 32).wrapping_add(ci as u64);
                let mut link =
                    FrontLink::new(tx.clone(), loss(feed.var, CeId::new(ci as u32)), link_seed);
                if let Some(p) = &plan {
                    link = link.with_stalls(
                        p.stalls
                            .iter()
                            .filter(|s| s.feed == fi && s.ce == ci)
                            .map(|s| (s.at_send, s.stall))
                            .collect(),
                    );
                }
                link_reports.push(((feed.var, CeId::new(ci as u32)), link.report_handle()));
                links.push(Box::new(link));
            }
            let (var, source, period) = (feed.var, feed.source, feed.period);
            let window = windows.get(fi).cloned();
            handles.push(rcm_sync::thread::spawn(move || {
                dm_body(var, source, period, links, window);
            }));
        }
        drop(ce_senders); // CEs exit when all DM links drop.

        Ok(MonitorSystem {
            handles,
            arrivals,
            displayed,
            ingested,
            emitted,
            link_reports,
            fault_report,
            backlink_stats,
            mode: TransportMode::InProcess,
            replicas: self.replicas,
            workers: self.pipeline.workers,
            latency,
            shed,
            front_vars: Vec::new(),
            front_stats: Vec::new(),
            ingress_stats: Vec::new(),
            tcp_stats: Vec::new(),
            ad_stats: None,
            engine_counters: None,
            evented_ingress: Vec::new(),
            evented_tcp: Vec::new(),
            evented_ad: None,
        })
    }

    /// Socket-mode assembly: the same actor bodies, with every channel
    /// link swapped for a real socket from the bound topology. DMs own
    /// one UDP socket per replica; each CE gets a UDP ingress thread
    /// (enforcing the front-link contract through the shared seqno
    /// gate) and a reconnecting TCP back link; the AD gets a TCP
    /// listener thread fanning frames into the ordinary `ad_body`.
    fn start_sockets(
        self,
        topology: BoundTopology,
        vars: &[VarId],
    ) -> Result<MonitorSystem, ConfigError> {
        if topology.replicas() != self.replicas {
            return Err(ConfigError::TopologyMismatch {
                expected: self.replicas,
                got: topology.replicas(),
            });
        }
        let transport_err = |e: std::io::Error| ConfigError::Transport(e.to_string());
        let filter_factory = self.filter.unwrap_or_else(|| {
            Box::new(|_vars: &[VarId]| Box::new(Ad1::new()) as Box<dyn AlertFilter>)
        });

        let plan = self.faults;
        let fault_report = Arc::new(Mutex::new(FaultReport::new(self.replicas)));
        // Run-wide evaluation ledgers, shared by every replica.
        let latency = Arc::new(LatencyHistogram::new());
        let shed = Arc::new(AtomicU64::new(0));
        let windows: Vec<RetainedWindow> = match &plan {
            Some(p) => self.feeds.iter().map(|_| RetainedWindow::new(p.retain_window)).collect(),
            None => Vec::new(),
        };
        let parts = topology.into_parts();
        let n_feeds = self.feeds.len();

        let mut handles: Vec<JoinHandle<()>> = Vec::new();

        // Evented mode runs every CE ingress, back link and the AD
        // listener of this process as state machines on one readiness
        // loop; threaded mode keeps the reference thread-per-link path.
        let mut event_loop = match parts.engine {
            Engine::Evented => Some(EventLoop::new().map_err(transport_err)?),
            Engine::Threaded => None,
        };
        let mut evented_ingress: Vec<Arc<IngressCounters>> = Vec::new();
        let mut evented_tcp: Vec<Arc<BackLinkCounters>> = Vec::new();
        let mut evented_ad: Option<Arc<ListenerCounters>> = None;

        // AD side: the TCP listener decodes alert frames from every CE
        // connection and fans them into the same channel the in-process
        // AD consumes. It hangs up (closing the channel) once every
        // replica's end-of-stream marker arrived.
        let (alert_tx, alert_rx) = unbounded::<Alert>();
        let mut ad_stats = None;
        if let Some(el) = event_loop.as_mut() {
            evented_ad = Some(
                el.add_alert_listener(
                    parts.listener,
                    self.replicas,
                    parts.idle_timeout * 2,
                    move |alert| {
                        let _ = alert_tx.send(alert);
                    },
                )
                .map_err(transport_err)?,
            );
        } else {
            let listener = TcpAlertListener::from_listener(parts.listener)
                .map_err(transport_err)?
                .expected_fins(self.replicas)
                .idle_timeout(parts.idle_timeout * 2);
            ad_stats = Some(listener.stats_handle());
            handles.push(rcm_sync::thread::spawn(move || {
                listener.run(|alert| {
                    let _ = alert_tx.send(alert);
                });
            }));
        }

        // CE side: per replica, a UDP ingress thread feeding the CE
        // thread over a channel, and a TCP back link to the AD. The
        // back link connects eagerly, so a dead AD address fails here
        // rather than silently dropping alerts later.
        let mut ingested: Vec<Arc<Mutex<Vec<Update>>>> = Vec::new();
        let mut emitted: Vec<Arc<Mutex<Vec<Alert>>>> = Vec::new();
        let mut ingress_stats: Vec<Arc<Mutex<IngressStats>>> = Vec::new();
        let mut tcp_stats: Vec<Arc<Mutex<TcpLinkStats>>> = Vec::new();
        for (ce, sock) in parts.ce_sockets.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Update>();
            if let Some(el) = event_loop.as_mut() {
                evented_ingress.push(
                    el.add_front_ingress(sock, n_feeds, parts.idle_timeout, move |update| {
                        let _ = tx.send(update);
                    })
                    .map_err(transport_err)?,
                );
            } else {
                let receiver = UdpFrontReceiver::from_socket(sock)
                    .map_err(transport_err)?
                    .expected_fins(n_feeds)
                    .idle_timeout(parts.idle_timeout);
                ingress_stats.push(receiver.stats_handle());
                handles.push(rcm_sync::thread::spawn(move || {
                    receiver.run(|update| {
                        let _ = tx.send(update);
                    });
                }));
            }

            let (backoff_base, backoff_cap) = plan
                .as_ref()
                .map_or((Duration::from_micros(200), Duration::from_millis(20)), |p| {
                    (p.backoff_base, p.backoff_cap)
                });
            let backoff_seed =
                self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(ce as u64);
            let backoff = Backoff::new(backoff_base, backoff_cap, backoff_seed);
            let severs = plan.as_ref().map(|p| {
                p.severs
                    .iter()
                    .filter(|s| s.ce == ce)
                    .map(|s| (s.at_send, s.down_for))
                    .collect::<Vec<_>>()
            });
            let back: Box<dyn AlertSink> = if let Some(el) = event_loop.as_mut() {
                let mut spec = BackLinkSpec::new(parts.ad_addr, ce as u32, backoff)
                    .codec(parts.back_codec)
                    .batching(parts.back_batch);
                if let Some(p) = &plan {
                    spec = spec
                        .with_severs(severs.clone().unwrap_or_default())
                        .queue_cap(p.resend_queue_cap);
                }
                let link = el.add_back_link(spec).map_err(transport_err)?;
                evented_tcp.push(link.stats_handle());
                Box::new(link)
            } else {
                let mut back = TcpBackLink::connect(parts.ad_addr, ce as u32, backoff)
                    .map_err(transport_err)?
                    .codec(parts.back_codec)
                    .batching(parts.back_batch);
                if let Some(p) = &plan {
                    back = back
                        .with_severs(severs.clone().unwrap_or_default())
                        .queue_cap(p.resend_queue_cap);
                }
                tcp_stats.push(back.stats_handle());
                Box::new(back)
            };

            let record = Arc::new(Mutex::new(Vec::new()));
            ingested.push(Arc::clone(&record));
            let outputs = Arc::new(Mutex::new(Vec::new()));
            emitted.push(Arc::clone(&outputs));
            let conditions = self.conditions.clone();
            let faults = plan.as_ref().map(|p| CeFaultConfig {
                kill_at: p.kills.iter().filter(|k| k.ce == ce).map(|k| k.at_arrival).collect(),
                max_restarts: p.max_restarts,
                windows: windows.clone(),
                report: Arc::clone(&fault_report),
                ce_index: ce,
            });
            let pipeline = CePipeline {
                options: self.pipeline,
                latency: Arc::clone(&latency),
                shed: Arc::clone(&shed),
            };
            handles.push(rcm_sync::thread::spawn(move || {
                ce_body(
                    CeId::new(ce as u32),
                    conditions,
                    rx,
                    back,
                    record,
                    outputs,
                    faults,
                    pipeline,
                );
            }));
        }

        // With every source registered, the loop itself gets a thread.
        // `run` returns once the last primary source retires, which is
        // exactly when every CE finished its back link and the AD saw
        // every Fin — the same join condition the threaded path has.
        let engine_counters = event_loop.take().map(|el| {
            let counters = el.counters();
            handles.push(rcm_sync::thread::spawn(move || el.run()));
            counters
        });

        // The AD filter thread, fed by the listener thread's channel.
        let arrivals = Arc::new(Mutex::new(Vec::new()));
        let displayed = Arc::new(Mutex::new(Vec::new()));
        let filter = filter_factory(vars);
        let ad_arrivals = Arc::clone(&arrivals);
        let ad_displayed = Arc::clone(&displayed);
        let on_alert = self.on_alert;
        handles.push(rcm_sync::thread::spawn(move || {
            ad_body(alert_rx, filter, ad_arrivals, ad_displayed, on_alert);
        }));

        // DM threads: one UDP socket per (feed, replica) front link,
        // aimed at the topology's routed targets (the CE sockets, or an
        // interposed loss proxy per replica).
        let mut front_vars = Vec::with_capacity(n_feeds);
        let mut front_stats: Vec<((usize, usize), Arc<Mutex<FrontLinkStats>>)> = Vec::new();
        for (fi, feed) in self.feeds.into_iter().enumerate() {
            front_vars.push(feed.var);
            let mut links: Vec<Box<dyn UpdateSender>> = Vec::with_capacity(self.replicas);
            for (ci, target) in parts.dm_targets.iter().enumerate() {
                let link = UdpFrontLink::connect(*target, fi as u32)
                    .map_err(transport_err)?
                    .codec(parts.front_codec)
                    .batching(parts.front_batch);
                front_stats.push(((fi, ci), link.stats_handle()));
                links.push(Box::new(UdpSender { link, fin_repeats: parts.fin_repeats }));
            }
            let (var, source, period) = (feed.var, feed.source, feed.period);
            let window = windows.get(fi).cloned();
            handles.push(rcm_sync::thread::spawn(move || {
                dm_body(var, source, period, links, window);
            }));
        }

        Ok(MonitorSystem {
            handles,
            arrivals,
            displayed,
            ingested,
            emitted,
            link_reports: Vec::new(),
            fault_report,
            backlink_stats: Vec::new(),
            mode: TransportMode::Sockets,
            replicas: self.replicas,
            workers: self.pipeline.workers,
            latency,
            shed,
            front_vars,
            front_stats,
            ingress_stats,
            tcp_stats,
            ad_stats,
            engine_counters,
            evented_ingress,
            evented_tcp,
            evented_ad,
        })
    }
}

/// A running monitoring pipeline; join it with [`MonitorSystem::wait`].
pub struct MonitorSystem {
    handles: Vec<JoinHandle<()>>,
    arrivals: Arc<Mutex<Vec<Alert>>>,
    displayed: Arc<Mutex<Vec<Alert>>>,
    ingested: Vec<Arc<Mutex<Vec<Update>>>>,
    emitted: Vec<Arc<Mutex<Vec<Alert>>>>,
    link_reports: LinkReports,
    fault_report: Arc<Mutex<FaultReport>>,
    backlink_stats: Vec<Arc<Mutex<BackLinkStats>>>,
    mode: TransportMode,
    replicas: usize,
    /// Evaluation workers per replica (0 = inline path).
    workers: usize,
    /// Run-wide ingest→alert-emit latency histogram.
    latency: Arc<LatencyHistogram>,
    /// Run-wide count of updates shed on full worker rings.
    shed: Arc<AtomicU64>,
    /// Feed index → variable (socket mode; for the `links` report).
    front_vars: Vec<VarId>,
    /// Socket-mode sender counters keyed `(feed, ce)`.
    front_stats: Vec<((usize, usize), Arc<Mutex<FrontLinkStats>>)>,
    ingress_stats: Vec<Arc<Mutex<IngressStats>>>,
    tcp_stats: Vec<Arc<Mutex<TcpLinkStats>>>,
    ad_stats: Option<Arc<Mutex<ListenerStats>>>,
    /// Evented-engine counter blocks (socket mode with the evented
    /// engine; the threaded vectors above stay empty then, and vice
    /// versa, so the report merge is a plain concatenation).
    engine_counters: Option<Arc<EngineCounters>>,
    evented_ingress: Vec<Arc<IngressCounters>>,
    evented_tcp: Vec<Arc<BackLinkCounters>>,
    evented_ad: Option<Arc<ListenerCounters>>,
}

impl fmt::Debug for MonitorSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorSystem").field("threads", &self.handles.len()).finish()
    }
}

impl MonitorSystem {
    /// Starts building a system for `condition` (alerts under
    /// [`rcm_core::CondId::SINGLE`]). Monitor additional conditions
    /// with [`SystemBuilder::monitor`] or start from a whole set with
    /// [`MonitorSystem::builder_multi`].
    pub fn builder(condition: Arc<dyn Condition>) -> SystemBuilder {
        Self::builder_multi([condition])
    }

    /// Starts building a system monitoring a set of conditions over
    /// shared feeds: every CE replica hosts all of them in one
    /// [`rcm_core::ConditionRegistry`], and condition `i` emits alerts
    /// under `CondId::new(i)` so the AD can demultiplex (e.g. with
    /// [`rcm_core::ad::PerCondition`]).
    pub fn builder_multi(
        conditions: impl IntoIterator<Item = Arc<dyn Condition>>,
    ) -> SystemBuilder {
        SystemBuilder {
            conditions: conditions.into_iter().collect(),
            replicas: 2,
            feeds: Vec::new(),
            filter: None,
            loss: None,
            seed: 0,
            on_alert: None,
            faults: None,
            transport: None,
            pipeline: PipelineOptions::default(),
        }
    }

    /// Alerts displayed so far (snapshot; the pipeline may still be
    /// running).
    pub fn displayed_so_far(&self) -> Vec<Alert> {
        self.displayed.lock().clone()
    }

    /// Blocks until every feed is drained and all in-flight messages
    /// are processed, then returns the full report.
    ///
    /// # Panics
    ///
    /// Panics if an actor thread panicked.
    pub fn wait(self) -> RunReport {
        for h in self.handles {
            h.join().expect("actor thread panicked");
        }
        let faults = {
            let mut report = self.fault_report.lock().clone();
            // Both link kinds fold into the same fault counters, so the
            // fault ledger reads identically across transports.
            for stats in &self.backlink_stats {
                let s = *stats.lock();
                report.backlink_severs += s.severs;
                report.backlink_reconnects += s.reconnects;
                report.backlink_attempts += s.attempts;
                report.backlink_duplicates += s.resent_duplicates;
                report.alerts_lost_overflow += s.lost_overflow;
            }
            for stats in &self.tcp_stats {
                let s = *stats.lock();
                report.backlink_severs += s.severs;
                report.backlink_reconnects += s.reconnects;
                report.backlink_attempts += s.attempts;
                report.backlink_duplicates += s.resent_duplicates;
                report.alerts_lost_overflow += s.lost_overflow;
            }
            for counters in &self.evented_tcp {
                let s = counters.snapshot();
                report.backlink_severs += s.severs;
                report.backlink_reconnects += s.reconnects;
                report.backlink_attempts += s.attempts;
                report.backlink_duplicates += s.resent_duplicates;
                report.alerts_lost_overflow += s.lost_overflow;
            }
            report
        };
        let transport = match self.mode {
            TransportMode::InProcess => TransportReport {
                mode: TransportMode::InProcess,
                // Channel links were registered feed-major, replica-minor.
                front_links: self
                    .link_reports
                    .iter()
                    .enumerate()
                    .map(|(i, (_, stats))| {
                        let r = *stats.lock();
                        // Channel links carry one update per "frame"
                        // and no wire bytes.
                        let front = FrontLinkStats {
                            frames_sent: r.sent,
                            frames_dropped: r.dropped,
                            updates_sent: r.sent,
                            bytes_sent: 0,
                        };
                        (i / self.replicas, i % self.replicas, front)
                    })
                    .collect(),
                ingress: Vec::new(),
                back_links: self
                    .backlink_stats
                    .iter()
                    .map(|stats| {
                        let s = *stats.lock();
                        TcpLinkStats {
                            sent: s.sent,
                            severs: s.severs,
                            reconnects: s.reconnects,
                            attempts: s.attempts,
                            resent_duplicates: s.resent_duplicates,
                            queued_peak: s.queued_peak,
                            lost_overflow: s.lost_overflow,
                            io_errors: 0,
                            frames_sent: s.sent,
                            bytes_sent: 0,
                            dedup_suppressed: 0,
                            shed: 0,
                        }
                    })
                    .collect(),
                ad: ListenerStats::default(),
                engine: EngineStats::default(),
            },
            TransportMode::Sockets => TransportReport {
                mode: TransportMode::Sockets,
                front_links: self
                    .front_stats
                    .iter()
                    .map(|((fi, ci), stats)| (*fi, *ci, *stats.lock()))
                    .collect(),
                // Exactly one engine populated its side, so chaining the
                // threaded and evented blocks yields one per-link list.
                ingress: self
                    .ingress_stats
                    .iter()
                    .map(|s| *s.lock())
                    .chain(self.evented_ingress.iter().map(|c| c.snapshot()))
                    .collect(),
                back_links: self
                    .tcp_stats
                    .iter()
                    .map(|s| *s.lock())
                    .chain(self.evented_tcp.iter().map(|c| c.snapshot()))
                    .collect(),
                ad: self
                    .ad_stats
                    .as_ref()
                    .map(|s| *s.lock())
                    .or_else(|| self.evented_ad.as_ref().map(|c| c.snapshot()))
                    .unwrap_or_default(),
                engine: self.engine_counters.as_ref().map(|c| c.snapshot()).unwrap_or_default(),
            },
        };
        // Socket mode has no channel-link reports; synthesize the
        // legacy per-link view from the sender counters so downstream
        // consumers see one shape.
        let links: Vec<((VarId, CeId), LinkReport)> = match self.mode {
            TransportMode::InProcess => {
                self.link_reports.into_iter().map(|(key, m)| (key, *m.lock())).collect()
            }
            TransportMode::Sockets => self
                .front_stats
                .iter()
                .map(|((fi, ci), stats)| {
                    let s = *stats.lock();
                    // The legacy view counts updates, not datagrams —
                    // with batching on they differ.
                    (
                        (self.front_vars[*fi], CeId::new(*ci as u32)),
                        LinkReport { sent: s.updates_sent, dropped: s.frames_dropped },
                    )
                })
                .collect(),
        };
        let pipeline = PipelineReport {
            workers: self.workers,
            updates_shed: self.shed.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        };
        RunReport {
            faults,
            transport,
            tree: None,
            pipeline,
            arrivals: Arc::try_unwrap(self.arrivals)
                .map(Mutex::into_inner)
                .unwrap_or_else(|arc| arc.lock().clone()),
            displayed: Arc::try_unwrap(self.displayed)
                .map(Mutex::into_inner)
                .unwrap_or_else(|arc| arc.lock().clone()),
            ingested: self
                .ingested
                .into_iter()
                .map(|m| {
                    Arc::try_unwrap(m)
                        .map(Mutex::into_inner)
                        .unwrap_or_else(|arc| arc.lock().clone())
                })
                .collect(),
            emitted: self
                .emitted
                .into_iter()
                .map(|m| {
                    Arc::try_unwrap(m)
                        .map(Mutex::into_inner)
                        .unwrap_or_else(|arc| arc.lock().clone())
                })
                .collect(),
            links,
        }
    }
}

/// Everything a finished pipeline run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Merged alert arrivals at the AD, pre-filtering.
    pub arrivals: Vec<Alert>,
    /// Alerts displayed to the user (post-filtering), in display order.
    pub displayed: Vec<Alert>,
    /// Per replica: updates ingested, in arrival order (the paper's
    /// `U_i`).
    pub ingested: Vec<Vec<Update>>,
    /// Per replica: alerts emitted over its back link, in emission
    /// order (pre-merge, pre-filter).
    pub emitted: Vec<Vec<Alert>>,
    /// Per front link `(variable, replica)`: loss counters.
    pub links: Vec<((VarId, CeId), LinkReport)>,
    /// What the fault layer observed (all zeros without a
    /// [`FaultPlan`]).
    pub faults: FaultReport,
    /// Per-link transport counters, shaped identically whether the run
    /// rode channels or real sockets.
    pub transport: TransportReport,
    /// What the evaluation stage observed: worker count, ring shedding
    /// and the ingest→alert-emit latency distribution (recorded on
    /// both the inline and the pipelined path).
    pub pipeline: PipelineReport,
    /// Aggregation-tree counters when the run was a
    /// [`TreeTopology`](crate::TreeTopology) deployment; `None` for
    /// flat DM→CE→AD runs.
    pub tree: Option<rcm_tree::TreeStats>,
}

/// Evaluation-stage counters for a finished run.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PipelineReport {
    /// Evaluation workers per replica (0 = the inline single-threaded
    /// path; the output is identical either way).
    #[serde(default)]
    pub workers: usize,
    /// Updates shed across all replicas because a worker ring was full
    /// — semantically front-link loss, covered by the same per-AD
    /// guarantees.
    #[serde(default)]
    pub updates_shed: u64,
    /// Ingest→alert-emit latency (admission to merged-alerts-emitted),
    /// aggregated over every replica.
    #[serde(default)]
    pub latency: LatencySnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::ad::{Ad2, Ad3};
    use rcm_core::condition::{Cmp, DeltaRise, Threshold};
    use rcm_net::Scripted;

    fn x() -> VarId {
        VarId::new(0)
    }

    fn c1() -> Arc<dyn Condition> {
        Arc::new(Threshold::new(x(), Cmp::Gt, 3000.0))
    }

    #[test]
    fn example_1_end_to_end() {
        let system = MonitorSystem::builder(c1())
            .replicas(2)
            .feed(VarFeed::new(x(), vec![2900.0, 3100.0, 3200.0]))
            .start()
            .expect("system starts");
        let report = system.wait();
        // Four alerts arrive (two per CE); AD-1 displays two.
        assert_eq!(report.arrivals.len(), 4);
        assert_eq!(report.displayed.len(), 2);
        assert_eq!(report.ingested[0].len(), 3);
        assert_eq!(report.ingested[1].len(), 3);
    }

    #[test]
    fn scripted_loss_reproduces_example_1() {
        // CE2 misses update 2: its only alert (on 3) is an exact
        // duplicate of CE1's, so the user still sees exactly two alerts.
        let system = MonitorSystem::builder(c1())
            .replicas(2)
            .feed(VarFeed::new(x(), vec![2900.0, 3100.0, 3200.0]))
            .loss(|_, ce| {
                if ce == CeId::new(1) {
                    Box::new(Scripted::new([1]))
                } else {
                    Box::new(rcm_net::Lossless)
                }
            })
            .start()
            .expect("system starts");
        let report = system.wait();
        assert_eq!(report.ingested[1].len(), 2);
        assert_eq!(report.displayed.len(), 2);
        let dropped: u64 = report.links.iter().map(|(_, r)| r.dropped).sum();
        assert_eq!(dropped, 1);
    }

    #[test]
    fn ad2_keeps_output_ordered() {
        let system = MonitorSystem::builder(c1())
            .replicas(3)
            .feed(VarFeed::new(x(), (0..60).map(|i| 3000.0 + f64::from(i)).collect::<Vec<_>>()))
            .filter(|vars| Box::new(Ad2::new(vars[0])))
            .start()
            .expect("system starts");
        let report = system.wait();
        let seqs: Vec<u64> = report
            .displayed
            .iter()
            .map(|a| a.seqno(x()).expect("alert carries seqno for x").get())
            .collect();
        assert!(rcm_core::seq::is_strictly_ordered(&seqs));
        assert!(!report.displayed.is_empty());
    }

    #[test]
    fn ad3_output_consistent_under_heavy_loss() {
        let cond: Arc<dyn Condition> = Arc::new(DeltaRise::new(x(), 5.0));
        let values: Vec<f64> = (0..80).map(|i| f64::from(i % 2) * 20.0 + f64::from(i)).collect();
        let system = MonitorSystem::builder(cond.clone())
            .replicas(2)
            .feed(VarFeed::new(x(), values))
            .loss(|_, _| Box::new(rcm_net::Bernoulli::new(0.3)))
            .seed(99)
            .filter(|vars| Box::new(Ad3::new(vars[0])))
            .start()
            .expect("system starts");
        let report = system.wait();
        let check = rcm_props::check_consistent_single(&cond, &report.ingested, &report.displayed);
        assert!(check.ok, "{:?}", check.conflict);
    }

    #[test]
    fn callback_sees_every_displayed_alert() {
        let seen = Arc::new(Mutex::new(0usize));
        let seen2 = Arc::clone(&seen);
        let system = MonitorSystem::builder(c1())
            .replicas(1)
            .feed(VarFeed::new(x(), vec![3100.0, 3200.0]))
            .on_alert(move |_| *seen2.lock() += 1)
            .start()
            .expect("system starts");
        let report = system.wait();
        assert_eq!(*seen.lock(), report.displayed.len());
        assert_eq!(report.displayed.len(), 2);
    }

    #[test]
    fn empty_fault_plan_leaves_the_happy_path_untouched() {
        let system = MonitorSystem::builder(c1())
            .replicas(2)
            .feed(VarFeed::new(x(), vec![2900.0, 3100.0, 3200.0]))
            .faults(FaultPlan::scripted())
            .start()
            .expect("system starts");
        let report = system.wait();
        assert_eq!(report.displayed.len(), 2);
        assert_eq!(report.faults.total_restarts(), 0);
        assert_eq!(report.faults.backlink_severs, 0);
        assert_eq!(report.faults.alerts_lost_overflow, 0);
        // Every arrival at the AD is accounted to some replica's
        // emission record.
        assert_eq!(report.emitted.iter().map(Vec::len).sum::<usize>(), report.arrivals.len());
    }

    #[test]
    fn config_errors_reported() {
        assert_eq!(
            MonitorSystem::builder(c1()).replicas(0).start().err(),
            Some(ConfigError::ZeroReplicas)
        );
        assert_eq!(
            MonitorSystem::builder_multi(Vec::<Arc<dyn Condition>>::new()).start().err(),
            Some(ConfigError::NoConditions)
        );
        assert_eq!(MonitorSystem::builder(c1()).start().err(), Some(ConfigError::MissingFeed(x())));
        assert_eq!(
            MonitorSystem::builder(c1())
                .feed(VarFeed::new(x(), vec![1.0]))
                .feed(VarFeed::new(VarId::new(7), vec![1.0]))
                .start()
                .err(),
            Some(ConfigError::UnknownFeedVariable(VarId::new(7)))
        );
    }

    #[test]
    fn multi_condition_replicas_match_a_local_registry() {
        use rcm_core::ad::PerCondition;
        use rcm_core::{CondId, ConditionRegistry};

        let y = VarId::new(1);
        let set: Vec<Arc<dyn Condition>> = vec![
            Arc::new(Threshold::new(x(), Cmp::Gt, 50.0)),
            Arc::new(DeltaRise::new(x(), 10.0)),
            Arc::new(rcm_core::condition::AbsDifference::new(x(), y, 25.0)),
        ];
        let system = MonitorSystem::builder(set[0].clone())
            .monitor(set[1].clone())
            .monitor(set[2].clone())
            .replicas(2)
            .feed(VarFeed::new(x(), vec![40.0, 60.0, 55.0, 80.0, 10.0, 90.0]))
            .feed(VarFeed::new(y, vec![42.0, 58.0, 90.0, 81.0, 12.0, 30.0]))
            .filter(|_| Box::new(PerCondition::new(|_c| Ad1::new())))
            .start()
            .expect("system starts");
        let report = system.wait();

        // Each replica's emission stream is exactly what a local
        // registry produces from that replica's own `U_i` (the two feeds
        // interleave nondeterministically, so replay the recorded ingest
        // order rather than assuming one).
        for (ce, emitted) in report.emitted.iter().enumerate() {
            let mut registry = ConditionRegistry::new(CeId::new(ce as u32));
            for c in &set {
                registry.add(Arc::clone(c));
            }
            let mut want = Vec::new();
            registry.ingest_batch(&report.ingested[ce], &mut want);
            assert_eq!(emitted, &want);
            for (g, w) in emitted.iter().zip(&want) {
                assert_eq!(g.id, w.id);
            }
            // Per-condition provenance numbering ascends without gaps.
            for cond in 0..set.len() as u32 {
                let idxs: Vec<u64> = emitted
                    .iter()
                    .filter(|a| a.cond == CondId::new(cond))
                    .map(|a| a.id.index)
                    .collect();
                assert!(idxs.iter().enumerate().all(|(i, &n)| n == i as u64), "{idxs:?}");
            }
        }
        // The per-condition demux displayed both the deterministic
        // threshold stream (cond 0) and at least the final
        // |x − y| = 60 > 25 divergence alert (cond 2).
        assert!(report.displayed.iter().any(|a| a.cond == CondId::new(0)));
        assert!(report.displayed.iter().any(|a| a.cond == CondId::new(2)));
    }

    #[test]
    fn multi_var_system_runs() {
        let y = VarId::new(1);
        let cond: Arc<dyn Condition> =
            Arc::new(rcm_core::condition::AbsDifference::new(x(), y, 100.0));
        let system = MonitorSystem::builder(cond)
            .replicas(2)
            .feed(VarFeed::new(x(), vec![1000.0, 1200.0]))
            .feed(VarFeed::new(y, vec![1050.0, 1150.0]))
            .filter(|vars| Box::new(rcm_core::ad::Ad5::new(vars.to_vec())))
            .start()
            .expect("system starts");
        let report = system.wait();
        // The displayed sequence is ordered in both variables.
        assert!(rcm_core::seq::alerts_ordered(&report.displayed, &[x(), y]));
    }
}
