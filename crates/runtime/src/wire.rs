//! Length-prefixed wire codec for updates and alerts.
//!
//! Every message crossing a runtime link is serialized to JSON and
//! framed with a 4-byte big-endian length prefix — the format a real
//! deployment would put on a socket. The codec is symmetric and
//! self-delimiting, so a stream of frames can be decoded incrementally
//! from a byte buffer.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rcm_core::{Alert, Update};
use serde::{Deserialize, Serialize};

/// A message on a monitoring link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A data update (front links).
    Update(Update),
    /// An alert (back links).
    Alert(Alert),
}

/// How much of an alert's history set is put on the wire.
///
/// The paper's §2: "although conceptually we send all histories in an
/// alert, in practice this is often not necessary. … some systems do
/// not need this information at all. Others need only the update
/// sequence numbers contained in the histories. Still others only use
/// these sequence numbers in a simple equality test, in which case it
/// may be sufficient to send just a checksum of the histories."
///
/// Minimum fidelity per AD algorithm:
///
/// | Fidelity | Sufficient for |
/// |----------|----------------|
/// | [`Fidelity::Digest`] | AD-1 (equality test only) |
/// | [`Fidelity::Heads`] | AD-2, AD-5 (per-variable `a.seqno.x` comparisons) |
/// | [`Fidelity::Seqnos`] | AD-3, AD-4, AD-6 (full history seqnos for the spanning-set test) |
/// | [`Fidelity::Full`] | displays that show triggering values to the user |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Only a 64-bit checksum of the histories.
    Digest,
    /// Only the newest seqno per variable.
    Heads,
    /// All history seqnos, no values.
    Seqnos,
    /// The complete alert including the value snapshot.
    Full,
}

/// An alert reduced to a wire fidelity level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompactAlert {
    /// Checksum only.
    Digest {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// [`HistoryDigest`](rcm_core::ad::HistoryDigest) value.
        digest: u64,
    },
    /// Newest seqno per variable.
    Heads {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// `(variable, a.seqno.var)` pairs, ascending by variable.
        heads: Vec<(rcm_core::VarId, rcm_core::SeqNo)>,
    },
    /// Full history seqnos, values stripped.
    Seqnos {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// The complete fingerprint.
        fingerprint: rcm_core::HistoryFingerprint,
    },
    /// The complete alert.
    Full(Alert),
}

impl CompactAlert {
    /// Reduces an alert to the requested fidelity.
    pub fn of(alert: &Alert, fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Digest => CompactAlert::Digest {
                cond: alert.cond,
                id: alert.id,
                digest: rcm_core::ad::HistoryDigest::of(alert).get(),
            },
            Fidelity::Heads => CompactAlert::Heads {
                cond: alert.cond,
                id: alert.id,
                heads: alert.fingerprint.iter().map(|(v, seqnos)| (v, seqnos[0])).collect(),
            },
            Fidelity::Seqnos => CompactAlert::Seqnos {
                cond: alert.cond,
                id: alert.id,
                fingerprint: alert.fingerprint.clone(),
            },
            Fidelity::Full => CompactAlert::Full(alert.clone()),
        }
    }

    /// Serialized payload size in bytes at this fidelity.
    pub fn encoded_len(&self) -> usize {
        serde_json::to_vec(self).expect("well-formed alert serializes").len()
    }
}

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// The payload was not valid JSON for a [`Message`].
    Codec(serde_json::Error),
    /// A frame declared a length larger than the cap.
    FrameTooLarge {
        /// Declared payload size.
        declared: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "payload codec error: {e}"),
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the {MAX_FRAME} byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            WireError::FrameTooLarge { .. } => None,
        }
    }
}

/// Maximum accepted payload size; an alert's histories are bounded by
/// the condition degree, so real frames are tiny — the cap exists to
/// fail fast on corrupted length prefixes.
pub const MAX_FRAME: usize = 1 << 20;

/// Encodes a message as one length-prefixed frame.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if serialization fails (cannot happen
/// for well-formed messages; kept fallible for API honesty).
pub fn encode(msg: &Message) -> Result<Bytes, WireError> {
    let payload = serde_json::to_vec(msg).map_err(WireError::Codec)?;
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame (read more bytes and retry); on success the frame's bytes are
/// consumed from `buf`.
///
/// # Errors
///
/// Returns [`WireError::FrameTooLarge`] for implausible length
/// prefixes and [`WireError::Codec`] for undecodable payloads.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > MAX_FRAME {
        return Err(WireError::FrameTooLarge { declared });
    }
    if buf.len() < 4 + declared {
        return Ok(None);
    }
    buf.advance(4);
    let payload = buf.split_to(declared);
    let msg = serde_json::from_slice(&payload).map_err(WireError::Codec)?;
    Ok(Some(msg))
}

/// Round-trips a message through the codec — used by links to make
/// every delivered message cross a real serialization boundary.
///
/// # Panics
///
/// Panics if the codec disagrees with itself; that is a bug worth
/// crashing on.
pub fn roundtrip(msg: &Message) -> Message {
    let bytes = encode(msg).expect("encoding well-formed message");
    let mut buf = BytesMut::from(&bytes[..]);
    decode(&mut buf).expect("decoding own frame").expect("complete frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};

    fn update() -> Update {
        Update::new(VarId::new(3), 17, 3000.5)
    }

    fn alert() -> Alert {
        Alert::new(
            CondId::new(2),
            HistoryFingerprint::single(VarId::new(3), vec![SeqNo::new(17), SeqNo::new(15)]),
            vec![update()],
            AlertId { ce: CeId::new(1), index: 9 },
        )
    }

    #[test]
    fn update_roundtrip() {
        let m = Message::Update(update());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn alert_roundtrip_preserves_fingerprint_and_provenance() {
        let m = Message::Alert(alert());
        let back = roundtrip(&m);
        match (m, back) {
            (Message::Alert(a), Message::Alert(b)) => {
                assert_eq!(a, b); // identity (cond + fingerprint)
                assert_eq!(a.id, b.id); // provenance survives too
                assert_eq!(a.snapshot.len(), b.snapshot.len());
            }
            _ => panic!("variant changed in flight"),
        }
    }

    #[test]
    fn streamed_frames_decode_incrementally() {
        let m1 = Message::Update(update());
        let m2 = Message::Alert(alert());
        let f1 = encode(&m1).expect("update frame encodes");
        let f2 = encode(&m2).expect("alert frame encodes");
        let mut buf = BytesMut::new();
        // Feed byte by byte; decoder must wait for full frames.
        let all: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();
        let mut decoded = Vec::new();
        for b in all {
            buf.put_u8(b);
            while let Some(m) = decode(&mut buf).expect("well-formed frame decodes") {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, vec![m1, m2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAX_FRAME as u32 + 1);
        buf.put_slice(&[0; 8]);
        assert!(matches!(decode(&mut buf), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"wat");
        assert!(matches!(decode(&mut buf), Err(WireError::Codec(_))));
    }

    #[test]
    fn fidelity_levels_shrink() {
        let a = alert();
        let full = CompactAlert::of(&a, Fidelity::Full).encoded_len();
        let seqnos = CompactAlert::of(&a, Fidelity::Seqnos).encoded_len();
        let heads = CompactAlert::of(&a, Fidelity::Heads).encoded_len();
        let digest = CompactAlert::of(&a, Fidelity::Digest).encoded_len();
        assert!(full > seqnos, "{full} > {seqnos} expected");
        assert!(seqnos > heads, "{seqnos} > {heads} expected");
        assert!(seqnos > digest, "{seqnos} > {digest} expected");
    }

    #[test]
    fn digest_size_is_constant_in_the_degree() {
        // The paper's checksum point: history payload grows with the
        // condition degree, the digest does not.
        let deep = |degree: u64| {
            let seqnos: Vec<SeqNo> = (0..degree).map(|i| SeqNo::new(100 - i)).collect();
            Alert::new(
                CondId::new(1),
                HistoryFingerprint::single(VarId::new(0), seqnos),
                vec![],
                AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        let d2 = deep(2);
        let d8 = deep(8);
        assert!(
            CompactAlert::of(&d8, Fidelity::Seqnos).encoded_len()
                > CompactAlert::of(&d2, Fidelity::Seqnos).encoded_len()
        );
        // Digest length varies only with the decimal rendering of the
        // checksum, never with the degree.
        let l2 = CompactAlert::of(&d2, Fidelity::Digest).encoded_len();
        let l8 = CompactAlert::of(&d8, Fidelity::Digest).encoded_len();
        assert!(l2.abs_diff(l8) <= 20, "{l2} vs {l8}");
    }

    #[test]
    fn heads_keep_the_newest_seqno_per_variable() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Heads) {
            CompactAlert::Heads { heads, .. } => {
                assert_eq!(heads, vec![(VarId::new(3), SeqNo::new(17))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn digest_matches_core_digest() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Digest) {
            CompactAlert::Digest { digest, cond, .. } => {
                assert_eq!(digest, rcm_core::ad::HistoryDigest::of(&a).get());
                assert_eq!(cond, a.cond);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compact_alert_serde_roundtrip() {
        let a = alert();
        for fidelity in [Fidelity::Digest, Fidelity::Heads, Fidelity::Seqnos, Fidelity::Full] {
            let c = CompactAlert::of(&a, fidelity);
            let json = serde_json::to_string(&c).expect("compact alert serializes");
            assert_eq!(
                serde_json::from_str::<CompactAlert>(&json).expect("compact alert parses back"),
                c
            );
        }
    }

    #[test]
    fn short_buffer_returns_none() {
        let mut buf = BytesMut::new();
        assert!(decode(&mut buf).expect("empty buffer is not an error").is_none());
        buf.put_u8(0);
        assert!(decode(&mut buf).expect("partial header is not an error").is_none());
    }
}
