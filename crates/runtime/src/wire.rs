//! The frame codec, re-exported from [`rcm_transport::wire`].
//!
//! The codec started life in this crate when the runtime was the only
//! thing serializing messages; once real sockets arrived it moved to
//! `rcm-transport` so the in-process links, the UDP/TCP links and the
//! node binaries all share one frame format by construction. This
//! module keeps the old `rcm_runtime::wire` paths working.

pub use rcm_transport::wire::*;
