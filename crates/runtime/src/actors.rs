//! The three actor bodies: Data Monitor, Condition Evaluator and Alert
//! Displayer threads.

use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use rcm_core::ad::AlertFilter;
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, CondId, Evaluator, Update, VarId};

use crate::link::FrontLink;
use crate::wire::{roundtrip, Message};

/// Where a Data Monitor's readings come from.
pub(crate) enum FeedSource {
    /// A pre-recorded list of readings.
    Values(Vec<f64>),
    /// A live channel: the DM emits each pushed reading until the
    /// sender side hangs up.
    Channel(Receiver<f64>),
}

impl std::fmt::Debug for FeedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedSource::Values(v) => f.debug_tuple("Values").field(&v.len()).finish(),
            FeedSource::Channel(_) => f.debug_tuple("Channel").finish(),
        }
    }
}

/// Runs a Data Monitor: emits one update per reading with consecutive
/// seqnos, multicasting over a front link per replica, pausing `period`
/// between emissions.
pub(crate) fn dm_body(var: VarId, source: FeedSource, period: Duration, mut links: Vec<FrontLink>) {
    let emit = |i: usize, value: f64, links: &mut Vec<FrontLink>| {
        let update = Update::new(var, i as u64 + 1, value);
        for link in links.iter_mut() {
            link.send(update);
        }
        if !period.is_zero() {
            std::thread::sleep(period);
        }
    };
    match source {
        FeedSource::Values(values) => {
            for (i, value) in values.into_iter().enumerate() {
                emit(i, value, &mut links);
            }
        }
        FeedSource::Channel(rx) => {
            for (i, value) in rx.into_iter().enumerate() {
                emit(i, value, &mut links);
            }
        }
    }
    // Links (and their senders) drop here, signalling end-of-stream.
}

/// Runs a Condition Evaluator replica: ingests updates until every DM
/// feeding it hangs up, forwarding alerts over the lossless back link.
pub(crate) fn ce_body(
    ce: CeId,
    condition: Arc<dyn Condition>,
    rx: Receiver<Update>,
    back: Sender<Alert>,
    ingested: Arc<Mutex<Vec<Update>>>,
) {
    let mut evaluator = Evaluator::with_ids(condition, CondId::SINGLE, ce);
    for update in rx {
        let alert =
            evaluator.try_ingest(update).expect("update routed to evaluator lacking its variable");
        ingested.lock().push(update);
        if let Some(alert) = alert {
            // Back links are lossless: a send failure would mean the AD
            // died early, which is a bug worth crashing the replica on.
            let msg = roundtrip(&Message::Alert(alert));
            let Message::Alert(alert) = msg else {
                unreachable!("alert survived the codec as a different variant")
            };
            back.send(alert).expect("alert displayer hung up before replicas finished");
        }
    }
}

/// Runs the Alert Displayer: filters merged alert arrivals until every
/// replica hangs up.
pub(crate) fn ad_body(
    rx: Receiver<Alert>,
    mut filter: Box<dyn AlertFilter>,
    arrivals: Arc<Mutex<Vec<Alert>>>,
    displayed: Arc<Mutex<Vec<Alert>>>,
    on_alert: Option<crate::system::AlertCallback>,
) {
    for alert in rx {
        arrivals.lock().push(alert.clone());
        if filter.offer(&alert).is_deliver() {
            if let Some(cb) = &on_alert {
                cb(&alert);
            }
            displayed.lock().push(alert);
        }
    }
}
