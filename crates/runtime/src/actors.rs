//! The three actor bodies: Data Monitor, Condition Evaluator and Alert
//! Displayer threads — plus the CE supervisor that turns injected (or
//! genuine) panics into bounded restarts with history replay.
//!
//! LOCK ORDER: actor bodies only touch leaf mutexes owned elsewhere
//! (fault report, record/output/arrival/display sinks). Each is taken
//! alone and released before any channel operation; no actor ever
//! holds two locks, so cross-thread lock cycles are impossible.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

/// How one supervised CE run ended.
enum CeExit {
    /// Every DM hung up; the stream is drained.
    EndOfStream,
    /// A scripted kill fired (no unwinding: the crash is simulated by
    /// wiping state exactly as a panic would, without spamming the
    /// global panic hook on every chaos run).
    Killed,
}

use rcm_sync::atomic::AtomicU64;
use rcm_sync::chan::Receiver;
use rcm_sync::Mutex;

use rcm_core::ad::AlertFilter;
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, CondId, ConditionRegistry, LatencyHistogram, Update, VarId};

use crate::faults::{FaultReport, IngestGate, RetainedWindow};
use crate::pipeline::{AlertDrain, EvalPipeline, PipelineOptions};
use crate::wire::{roundtrip, Message};

/// One DM → CE path, as the DM body sees it: the in-process
/// [`FrontLink`](crate::link::FrontLink) (a lossy channel) and the
/// socket transport's UDP link implement this, so the same actor body
/// drives either.
pub(crate) trait UpdateSender: Send {
    /// Transmits one update; returns whether the link accepted it
    /// (loss and hangups both report `false`).
    fn send_update(&mut self, update: Update) -> bool;

    /// Signals end-of-stream. Channels signal it by dropping, so the
    /// default does nothing; socket links send explicit Fin markers.
    fn finish(&mut self) {}
}

/// One CE → AD path, as the CE body sees it: the in-process
/// [`BackLink`](crate::backlink::BackLink) and the socket transport's
/// TCP link implement this.
pub(crate) trait AlertSink: Send {
    /// Sends one alert (queued while the link is down — the link owns
    /// the lossless contract).
    fn send_alert(&mut self, alert: Alert);

    /// Blocks until the link is up and everything queued is out —
    /// called once at end-of-stream.
    fn flush(&mut self);

    /// Closes without flushing: the path for a replica abandoned past
    /// its restart budget, whose queued alerts are sanctioned loss.
    /// Channels need nothing (dropping the sender suffices); socket
    /// links still owe their listener an end-of-stream marker.
    fn abandon(&mut self) {}
}

/// Where a Data Monitor's readings come from.
pub(crate) enum FeedSource {
    /// A pre-recorded list of readings.
    Values(Vec<f64>),
    /// A live channel: the DM emits each pushed reading until the
    /// sender side hangs up.
    Channel(Receiver<f64>),
}

impl std::fmt::Debug for FeedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedSource::Values(v) => f.debug_tuple("Values").field(&v.len()).finish(),
            FeedSource::Channel(_) => f.debug_tuple("Channel").finish(),
        }
    }
}

/// Runs a Data Monitor: emits one update per reading with consecutive
/// seqnos, multicasting over a front link per replica, pausing `period`
/// between emissions. When fault injection is on, every emitted update
/// also lands in the DM's retained window so recovering replicas can
/// replay recent history.
pub(crate) fn dm_body(
    var: VarId,
    source: FeedSource,
    period: Duration,
    mut links: Vec<Box<dyn UpdateSender>>,
    window: Option<RetainedWindow>,
) {
    let emit = |i: usize, value: f64, links: &mut Vec<Box<dyn UpdateSender>>| {
        let update = Update::new(var, i as u64 + 1, value);
        // Retention happens BEFORE the multicast: any update a CE could
        // have pulled off a channel is then guaranteed to be in the
        // window when that CE recovers, so a crash can never lose an
        // update that lossless links delivered. (The converse overlap —
        // replaying an update whose live copy arrives later — is
        // harmless: the ingest gate discards the second copy.)
        if let Some(window) = &window {
            window.push(update);
        }
        for link in links.iter_mut() {
            link.send_update(update);
        }
        if !period.is_zero() {
            rcm_sync::thread::sleep(period);
        }
    };
    match source {
        FeedSource::Values(values) => {
            for (i, value) in values.into_iter().enumerate() {
                emit(i, value, &mut links);
            }
        }
        FeedSource::Channel(rx) => {
            for (i, value) in rx.into_iter().enumerate() {
                emit(i, value, &mut links);
            }
        }
    }
    // Explicit end-of-stream for socket links; in-process links signal
    // it by dropping below.
    for link in links.iter_mut() {
        link.finish();
    }
}

/// Per-replica fault configuration handed to the supervised CE body.
pub(crate) struct CeFaultConfig {
    /// Arrival counts (1-based) at which to kill this replica, sorted.
    pub kill_at: Vec<u64>,
    /// Restart budget; exceeded ⇒ the replica stays dead.
    pub max_restarts: u32,
    /// Every DM's retained window, for recovery replay.
    pub windows: Vec<RetainedWindow>,
    /// Shared run-wide fault counters.
    pub report: Arc<Mutex<FaultReport>>,
    /// This replica's index into `report.restarts`.
    pub ce_index: usize,
}

impl std::fmt::Debug for CeFaultConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CeFaultConfig")
            .field("kill_at", &self.kill_at)
            .field("max_restarts", &self.max_restarts)
            .field("ce_index", &self.ce_index)
            .finish()
    }
}

/// Evaluation-stage configuration handed to every CE body: the pipeline
/// shape plus the run-wide latency/shed ledgers (shared across
/// replicas, snapshotted into the final report).
pub(crate) struct CePipeline {
    /// Worker count and batching; `workers == 0` keeps the in-actor
    /// single-threaded evaluation path.
    pub options: PipelineOptions,
    /// Ingest→alert-emit latency histogram (recorded on both paths).
    pub latency: Arc<LatencyHistogram>,
    /// Updates shed because a worker ring was full.
    pub shed: Arc<AtomicU64>,
}

impl std::fmt::Debug for CePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CePipeline").field("options", &self.options).finish()
    }
}

/// The pipeline's [`AlertDrain`] for a system replica: each merged
/// round crosses the wire codec, lands in the shared `emitted` record
/// and goes out the back link — exactly the single-threaded actor's
/// per-alert path, relocated onto the sequencer thread (which owns the
/// back link while the pipeline runs).
struct SystemDrain {
    back: Box<dyn AlertSink>,
    emitted: Arc<Mutex<Vec<Alert>>>,
}

impl AlertDrain for SystemDrain {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        for alert in alerts {
            let msg = roundtrip(&Message::Alert(alert));
            let Message::Alert(alert) = msg else {
                unreachable!("alert survived the codec as a different variant")
            };
            // LOCK ORDER: leaf record mutex, released before the link.
            self.emitted.lock().push(alert.clone());
            self.back.send_alert(alert);
        }
    }

    fn end_of_stream(&mut self) {
        self.back.flush();
    }

    fn abandoned(&mut self) {
        self.back.abandon();
    }
}

/// Runs a Condition Evaluator replica under supervision: ingests
/// updates until every DM feeding it hangs up, forwarding alerts over
/// the (severable) lossless back link. The replica hosts its whole
/// condition set in one [`ConditionRegistry`] — condition `i` is
/// `CondId::new(i)`, so a single-condition system emits under
/// [`CondId::SINGLE`] exactly as before — and each arrival is routed
/// through the registry's variable index to the conditions that mention
/// it. A panic — scripted by the fault plan or genuine — is caught;
/// within the restart budget the replica restarts: every condition's
/// histories are wiped (the paper's crash model), the channel backlog
/// that piled up "while down" is discarded as loss, and the bounded
/// `H_x` histories are rebuilt by replaying the DMs' retained windows
/// through the normal ingest path. The [`IngestGate`] outlives every
/// crash, so the recorded `U_i` stays strictly ordered per variable no
/// matter how replays and live arrivals interleave; per-condition alert
/// numbering survives crashes too (the registry keeps it across
/// `restart`).
pub(crate) fn ce_body(
    ce: CeId,
    conditions: Vec<Arc<dyn Condition>>,
    rx: Receiver<Update>,
    back: Box<dyn AlertSink>,
    ingested: Arc<Mutex<Vec<Update>>>,
    emitted: Arc<Mutex<Vec<Alert>>>,
    faults: Option<CeFaultConfig>,
    pipeline: CePipeline,
) {
    if pipeline.options.workers == 0 {
        ce_body_inline(ce, conditions, rx, back, ingested, emitted, faults, &pipeline.latency);
    } else {
        ce_body_pipelined(ce, conditions, rx, back, ingested, emitted, faults, pipeline);
    }
}

/// The single-threaded evaluation path (`--workers 0`, the default):
/// the CE thread itself hosts the registry and evaluates inline.
#[allow(clippy::too_many_arguments)]
fn ce_body_inline(
    ce: CeId,
    conditions: Vec<Arc<dyn Condition>>,
    rx: Receiver<Update>,
    mut back: Box<dyn AlertSink>,
    ingested: Arc<Mutex<Vec<Update>>>,
    emitted: Arc<Mutex<Vec<Alert>>>,
    faults: Option<CeFaultConfig>,
    latency: &LatencyHistogram,
) {
    let mut registry = ConditionRegistry::new(ce);
    for (i, condition) in conditions.into_iter().enumerate() {
        registry.insert(CondId::new(i as u32), condition);
    }
    // Reused per-arrival alert buffer: the hot path allocates nothing.
    let mut alerts: Vec<Alert> = Vec::new();
    let mut gate = IngestGate::new();
    let mut arrivals: u64 = 0;
    let mut kill_at: Vec<u64> = faults.as_ref().map(|f| f.kill_at.clone()).unwrap_or_default();
    kill_at.sort_unstable();
    kill_at.reverse(); // pop() yields the earliest threshold

    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            for update in rx.iter() {
                arrivals += 1;
                if kill_at.last().is_some_and(|&k| arrivals >= k) {
                    kill_at.pop();
                    return CeExit::Killed;
                }
                if !gate.admit(&update) {
                    continue; // duplicate of a replayed update
                }
                ingest(
                    &mut registry,
                    update,
                    &mut alerts,
                    back.as_mut(),
                    &ingested,
                    &emitted,
                    latency,
                );
            }
            CeExit::EndOfStream
        }));
        let injected = match run {
            Ok(CeExit::EndOfStream) => break, // every DM hung up: done
            Ok(CeExit::Killed) => true,
            Err(payload) => {
                if faults.is_none() {
                    resume_unwind(payload); // unsupervised replica: die loudly
                }
                false
            }
        };
        let cfg = faults.as_ref().expect("crash handling requires a fault config");
        let recovery_start = Instant::now();
        {
            let mut report = cfg.report.lock();
            if injected {
                report.kills_injected += 1;
            }
            if report.restarts[cfg.ce_index] >= cfg.max_restarts {
                report.replicas_abandoned += 1;
                drop(report);
                // Budget exhausted: the replica stays dead. Its severed
                // back-link queue dies with it — queued alerts on a dead
                // replica are the one sanctioned alert loss. Socket
                // links still send their end-of-stream marker so the
                // AD listener does not wait on a corpse.
                back.abandon();
                return;
            }
            report.restarts[cfg.ce_index] += 1;
        }
        // Crash model: histories are gone, alert numbering is not.
        registry.restart();
        // Updates that queued while "down" were never received; they
        // are loss, exactly like a drop on the front link. Kill
        // thresholds that pass during the outage simply never fire.
        let mut discarded = 0u64;
        while rx.try_recv().is_ok() {
            arrivals += 1;
            discarded += 1;
        }
        while kill_at.last().is_some_and(|&k| arrivals >= k) {
            kill_at.pop();
        }
        // Rebuild bounded histories from every DM's retained window.
        // The gate admits only seqnos beyond the pre-crash cursor, in
        // the window's (ascending) order, so `U_i` stays ordered and
        // nothing is double-ingested.
        let mut replayed = 0u64;
        for window in &cfg.windows {
            for update in window.snapshot() {
                if gate.admit(&update) {
                    replayed += 1;
                    ingest(
                        &mut registry,
                        update,
                        &mut alerts,
                        back.as_mut(),
                        &ingested,
                        &emitted,
                        latency,
                    );
                }
            }
        }
        let mut report = cfg.report.lock();
        report.updates_dropped_down += discarded;
        report.updates_replayed += replayed;
        report.recovery_latency.push(recovery_start.elapsed());
    }
    // End of stream: a severed link must come back up and drain its
    // queue before the replica exits — that is the lossless contract.
    back.flush();
}

/// The pipelined evaluation path (`--workers >= 1`): the CE thread
/// becomes the *dispatcher* — it runs the identical supervision
/// protocol (same arrival counting, kill thresholds, restart budget,
/// backlog discard and window replay as [`ce_body_inline`]) but hands
/// every admitted update to the [`EvalPipeline`] instead of evaluating
/// inline. Evaluation crosses shard workers and the sequencer merges
/// results back into the single-threaded emission order; the back link
/// lives in the sequencer's [`SystemDrain`].
///
/// The one semantic addition is *shedding*: when a worker ring is full
/// the arrival is dropped before the ingest gate, so it is
/// indistinguishable from a front-link loss (it never enters `U_i`,
/// and the paper's per-AD guarantees already cover it). Recovery
/// replays use the rings' blocking path and never shed.
#[allow(clippy::too_many_arguments)]
fn ce_body_pipelined(
    ce: CeId,
    conditions: Vec<Arc<dyn Condition>>,
    rx: Receiver<Update>,
    back: Box<dyn AlertSink>,
    ingested: Arc<Mutex<Vec<Update>>>,
    emitted: Arc<Mutex<Vec<Alert>>>,
    faults: Option<CeFaultConfig>,
    pipeline: CePipeline,
) {
    let drain = Box::new(SystemDrain { back, emitted });
    let mut pipe = EvalPipeline::start(
        ce,
        &conditions,
        &pipeline.options,
        drain,
        pipeline.latency,
        pipeline.shed,
    );
    let mut gate = IngestGate::new();
    let mut arrivals: u64 = 0;
    let mut kill_at: Vec<u64> = faults.as_ref().map(|f| f.kill_at.clone()).unwrap_or_default();
    kill_at.sort_unstable();
    kill_at.reverse(); // pop() yields the earliest threshold

    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            for update in rx.iter() {
                arrivals += 1;
                if kill_at.last().is_some_and(|&k| arrivals >= k) {
                    kill_at.pop();
                    return CeExit::Killed;
                }
                if pipe.would_shed() {
                    // All-or-nothing: every shard must see the same
                    // admitted stream, so a full ring sheds the whole
                    // arrival — before the gate, like front-link loss.
                    pipe.count_shed();
                    continue;
                }
                if !gate.admit(&update) {
                    continue; // duplicate of a replayed update
                }
                ingested.lock().push(update);
                pipe.dispatch(update);
            }
            CeExit::EndOfStream
        }));
        let injected = match run {
            Ok(CeExit::EndOfStream) => break, // every DM hung up: done
            Ok(CeExit::Killed) => true,
            Err(payload) => {
                if faults.is_none() {
                    resume_unwind(payload); // unsupervised replica: die loudly
                }
                false
            }
        };
        let cfg = faults.as_ref().expect("crash handling requires a fault config");
        let recovery_start = Instant::now();
        {
            let mut report = cfg.report.lock();
            if injected {
                report.kills_injected += 1;
            }
            if report.restarts[cfg.ce_index] >= cfg.max_restarts {
                report.replicas_abandoned += 1;
                drop(report);
                // Budget exhausted: in-flight ring jobs still evaluate
                // (they were admitted), then the sequencer closes the
                // back link without flushing — the same sanctioned
                // alert loss as the inline path's `back.abandon()`.
                pipe.abandon();
                return;
            }
            report.restarts[cfg.ce_index] += 1;
        }
        // Crash model: the restart marker rides the same FIFO rings as
        // updates, so every shard wipes its histories at the same
        // stream position; alert numbering survives (as in
        // `ConditionRegistry::restart`).
        pipe.restart();
        let mut discarded = 0u64;
        while rx.try_recv().is_ok() {
            arrivals += 1;
            discarded += 1;
        }
        while kill_at.last().is_some_and(|&k| arrivals >= k) {
            kill_at.pop();
        }
        // Replay on the blocking path: retained history is
        // already-admitted input and must not shed.
        let mut replayed = 0u64;
        for window in &cfg.windows {
            for update in window.snapshot() {
                if gate.admit(&update) {
                    replayed += 1;
                    ingested.lock().push(update);
                    pipe.dispatch_wait(update);
                }
            }
        }
        let mut report = cfg.report.lock();
        report.updates_dropped_down += discarded;
        report.updates_replayed += replayed;
        report.recovery_latency.push(recovery_start.elapsed());
    }
    // End of stream: close the rings, let the workers drain, and join;
    // the sequencer flushes the back link (the lossless contract).
    pipe.finish();
}

/// The shared ingest path (live and replay): record the update in
/// `U_i`, route it through the registry to every subscribed condition,
/// and forward each resulting alert across the codec and the back link
/// (in registration order — ascending [`CondId`]).
fn ingest(
    registry: &mut ConditionRegistry,
    update: Update,
    alerts: &mut Vec<Alert>,
    back: &mut dyn AlertSink,
    ingested: &Arc<Mutex<Vec<Update>>>,
    emitted: &Arc<Mutex<Vec<Alert>>>,
    latency: &LatencyHistogram,
) {
    let t0 = Instant::now();
    alerts.clear();
    registry.ingest(update, alerts);
    ingested.lock().push(update);
    for alert in alerts.drain(..) {
        // Cross a real serialization boundary, as every alert would in
        // a deployment.
        let msg = roundtrip(&Message::Alert(alert));
        let Message::Alert(alert) = msg else {
            unreachable!("alert survived the codec as a different variant")
        };
        emitted.lock().push(alert.clone());
        back.send_alert(alert);
    }
    let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    latency.record(nanos);
}

/// Runs the Alert Displayer: filters merged alert arrivals until every
/// replica hangs up.
pub(crate) fn ad_body(
    rx: Receiver<Alert>,
    mut filter: Box<dyn AlertFilter>,
    arrivals: Arc<Mutex<Vec<Alert>>>,
    displayed: Arc<Mutex<Vec<Alert>>>,
    on_alert: Option<crate::system::AlertCallback>,
) {
    for alert in rx {
        arrivals.lock().push(alert.clone());
        if filter.offer(&alert).is_deliver() {
            if let Some(cb) = &on_alert {
                cb(&alert);
            }
            displayed.lock().push(alert);
        }
    }
}
