//! Runtime links: lossy FIFO channels with real serialization.
//!
//! LOCK ORDER: the only mutex is the `report` counter block, a leaf —
//! held only to bump counters, never across the channel send.

use rcm_sync::chan::Sender;
use rcm_sync::{Arc, Mutex};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rcm_core::Update;
use rcm_net::LossModel;

use crate::wire::{roundtrip, Message};

/// Counters for one front link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkReport {
    /// Updates handed to the link.
    pub sent: u64,
    /// Updates dropped by the loss model.
    pub dropped: u64,
}

/// A UDP-like front link from one DM to one CE replica: FIFO (channels
/// do not reorder) but lossy. Every delivered update crosses the wire
/// codec, so the pipeline exercises real (de)serialization.
///
/// Loss decisions come from a seeded RNG owned by the link, so the
/// *set* of dropped messages is a pure function of the link seed and
/// the loss model — timing only affects interleavings downstream.
pub struct FrontLink {
    tx: Sender<Update>,
    loss: Box<dyn LossModel>,
    rng: ChaCha8Rng,
    report: Arc<Mutex<LinkReport>>,
    /// Scripted stalls, ascending by send index: `(at_send, stall)`.
    stalls: std::collections::VecDeque<(u64, std::time::Duration)>,
    sends_seen: u64,
}

impl std::fmt::Debug for FrontLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontLink").field("report", &*self.report.lock()).finish()
    }
}

impl FrontLink {
    /// Creates the link over an existing channel sender.
    pub fn new(tx: Sender<Update>, loss: Box<dyn LossModel>, seed: u64) -> Self {
        FrontLink {
            tx,
            loss,
            rng: ChaCha8Rng::seed_from_u64(seed),
            report: Arc::new(Mutex::new(LinkReport::default())),
            stalls: std::collections::VecDeque::new(),
            sends_seen: 0,
        }
    }

    /// Scripts delivery stalls as `(at_send, stall)` pairs: the link
    /// sleeps `stall` just before its `at_send`-th send (0-based count
    /// of prior sends). Stalls model transient congestion; they reorder
    /// nothing (the channel stays FIFO), they only perturb timing —
    /// which is exactly what the chaos harness wants to shake out of
    /// thread interleavings.
    #[must_use]
    pub fn with_stalls(mut self, mut stalls: Vec<(u64, std::time::Duration)>) -> Self {
        stalls.sort_by_key(|&(at, _)| at);
        self.stalls = stalls.into();
        self
    }

    /// A handle for reading the link's counters after the DM thread
    /// has taken ownership of the link.
    pub fn report_handle(&self) -> Arc<Mutex<LinkReport>> {
        Arc::clone(&self.report)
    }

    /// Transmits one update; returns whether it was delivered (the
    /// receiver may still have hung up, which also counts as not
    /// delivered).
    pub fn send(&mut self, update: Update) -> bool {
        if let Some(&(at, stall)) = self.stalls.front() {
            if self.sends_seen >= at {
                self.stalls.pop_front();
                rcm_sync::thread::sleep(stall);
            }
        }
        self.sends_seen += 1;
        let mut report = self.report.lock();
        report.sent += 1;
        if self.loss.drops(&mut self.rng) {
            report.dropped += 1;
            return false;
        }
        drop(report);
        // Cross a real serialization boundary.
        let msg = roundtrip(&Message::Update(update));
        let Message::Update(update) = msg else {
            unreachable!("update survived the codec as a different variant")
        };
        self.tx.send(update).is_ok()
    }
}

impl crate::actors::UpdateSender for FrontLink {
    fn send_update(&mut self, update: Update) -> bool {
        self.send(update)
    }
    // Default `finish`: dropping the channel sender is the hangup.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::VarId;
    use rcm_net::{Lossless, Scripted};
    use rcm_sync::chan::unbounded;

    fn u(s: u64) -> Update {
        Update::new(VarId::new(0), s, s as f64)
    }

    #[test]
    fn lossless_link_delivers_in_order() {
        let (tx, rx) = unbounded();
        let mut link = FrontLink::new(tx, Box::new(Lossless), 1);
        for s in 1..=5 {
            assert!(link.send(u(s)));
        }
        drop(link);
        let got: Vec<u64> = rx.iter().map(|u| u.seqno.get()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn scripted_loss_drops_and_counts() {
        let (tx, rx) = unbounded();
        let mut link = FrontLink::new(tx, Box::new(Scripted::new([1])), 1);
        let handle = link.report_handle();
        assert!(link.send(u(1)));
        assert!(!link.send(u(2))); // dropped
        assert!(link.send(u(3)));
        drop(link);
        let got: Vec<u64> = rx.iter().map(|u| u.seqno.get()).collect();
        assert_eq!(got, vec![1, 3]);
        assert_eq!(*handle.lock(), LinkReport { sent: 3, dropped: 1 });
    }

    #[test]
    fn stalls_delay_but_never_reorder() {
        let (tx, rx) = unbounded();
        let mut link = FrontLink::new(tx, Box::new(Lossless), 1)
            .with_stalls(vec![(1, std::time::Duration::from_millis(30))]);
        let start = rcm_sync::time::Instant::now();
        for s in 1..=3 {
            assert!(link.send(u(s)));
        }
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        drop(link);
        let got: Vec<u64> = rx.iter().map(|u| u.seqno.get()).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn hung_up_receiver_reports_undelivered() {
        let (tx, rx) = unbounded();
        drop(rx);
        let mut link = FrontLink::new(tx, Box::new(Lossless), 1);
        assert!(!link.send(u(1)));
    }
}
