//! Fault injection and recovery bookkeeping for the threaded runtime.
//!
//! The paper's availability argument (§4) is that replicating the CE
//! masks crashes — but the happy-path runtime never crashed anything,
//! so the claim went untested. A [`FaultPlan`] makes failure an input:
//! it can kill a CE replica after its N-th arrival, sever a back link
//! for a while, or stall a front link, all scripted or derived from a
//! seed. The runtime's supervisor then has to *earn* the availability
//! number: restart the replica, rebuild its bounded histories from the
//! DM's retained window, and resume without ever violating the
//! orderedness of the replica's recorded input sequence `U_i`.
//!
//! Recovery invariants (what may be lost, what must never be):
//!
//! * updates that arrived while a replica was down **may** be lost —
//!   a crashed replica is just a very lossy front link, which the AD
//!   algorithms already tolerate;
//! * alerts handed to a back link **must not** be lost (severed links
//!   queue and resend; only bounded-queue overflow loses, and is
//!   counted);
//! * each replica's recorded `U_i` **must** stay strictly ordered per
//!   variable across any number of restarts — [`IngestGate`] enforces
//!   this with a per-variable seqno cursor that survives the crash;
//! * alert numbering **must** keep ascending across restarts (the
//!   evaluator keeps its `emitted` counter; only histories are rebuilt).
//!
//! LOCK ORDER: the only mutex is the [`RetainedWindow`] deque, a leaf —
//! push and snapshot each take it alone and release before returning.

use std::collections::VecDeque;
use std::time::Duration;

use rcm_sync::{Arc, Mutex};

use rcm_core::Update;

/// splitmix64, for deriving scripted faults from a seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Kill CE replica `ce` when its arrival counter reaches `at_arrival`
/// (1-based: `at_arrival == 1` kills on the first update pulled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillCe {
    /// Replica index.
    pub ce: usize,
    /// Arrival count that triggers the kill.
    pub at_arrival: u64,
}

/// Sever replica `ce`'s back link just before its `at_send`-th alert
/// transmission (0-based count of prior sends), restoring it after
/// `down_for`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeverBackLink {
    /// Replica index.
    pub ce: usize,
    /// Number of successful sends before the link drops.
    pub at_send: u64,
    /// How long the link stays down.
    pub down_for: Duration,
}

/// Stall the `(feed, ce)` front link for `stall` just before its
/// `at_send`-th transmission (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFrontLink {
    /// Feed (DM) index, in builder `feed()` order.
    pub feed: usize,
    /// Replica index.
    pub ce: usize,
    /// Number of prior sends before the stall.
    pub at_send: u64,
    /// How long the link stalls.
    pub stall: Duration,
}

/// A complete fault schedule plus the recovery parameters, threaded
/// through [`SystemBuilder::faults`](crate::SystemBuilder::faults).
///
/// The default plan injects nothing but still enables supervision:
/// a genuinely panicking replica gets restarted up to `max_restarts`
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Scripted CE kills.
    pub kills: Vec<KillCe>,
    /// Scripted back-link severances.
    pub severs: Vec<SeverBackLink>,
    /// Scripted front-link stalls.
    pub stalls: Vec<StallFrontLink>,
    /// Restart budget per replica; a replica that exceeds it stays dead.
    pub max_restarts: u32,
    /// How many recent updates each DM retains for recovery replay.
    pub retain_window: usize,
    /// Bound on a severed back link's resend queue; overflow drops the
    /// oldest queued alert and counts it in
    /// [`FaultReport::alerts_lost_overflow`].
    pub resend_queue_cap: usize,
    /// First reconnect backoff delay.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            kills: Vec::new(),
            severs: Vec::new(),
            stalls: Vec::new(),
            max_restarts: 3,
            retain_window: 256,
            resend_queue_cap: 1024,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(20),
        }
    }
}

impl FaultPlan {
    /// An empty scripted plan (supervision on, nothing injected).
    pub fn scripted() -> Self {
        FaultPlan::default()
    }

    /// Derives a randomized plan from a seed: up to two kills, two
    /// back-link severances and two front-link stalls, spread over
    /// `replicas` CEs, `feeds` DMs and an update horizon.
    ///
    /// The same `(seed, replicas, feeds, horizon)` always yields the
    /// same plan, so chaos runs replay exactly.
    pub fn random(seed: u64, replicas: usize, feeds: usize, horizon: u64) -> Self {
        assert!(replicas > 0 && feeds > 0 && horizon > 0, "fault plan needs a real topology");
        let mut plan = FaultPlan::default();
        let mut state = mix(seed ^ 0xfau64.wrapping_shl(56));
        let mut draw = |modulus: u64| {
            state = mix(state);
            state % modulus.max(1)
        };
        for _ in 0..draw(3) {
            plan.kills
                .push(KillCe { ce: draw(replicas as u64) as usize, at_arrival: 1 + draw(horizon) });
        }
        for _ in 0..draw(3) {
            plan.severs.push(SeverBackLink {
                ce: draw(replicas as u64) as usize,
                at_send: draw(8),
                down_for: Duration::from_micros(draw(15_000)),
            });
        }
        for _ in 0..draw(3) {
            plan.stalls.push(StallFrontLink {
                feed: draw(feeds as u64) as usize,
                ce: draw(replicas as u64) as usize,
                at_send: draw(horizon),
                stall: Duration::from_micros(draw(3_000)),
            });
        }
        plan
    }

    /// Adds a scripted kill.
    #[must_use]
    pub fn kill_ce(mut self, ce: usize, at_arrival: u64) -> Self {
        self.kills.push(KillCe { ce, at_arrival });
        self
    }

    /// Adds a scripted back-link severance.
    #[must_use]
    pub fn sever_back_link(mut self, ce: usize, at_send: u64, down_for: Duration) -> Self {
        self.severs.push(SeverBackLink { ce, at_send, down_for });
        self
    }

    /// Adds a scripted front-link stall.
    #[must_use]
    pub fn stall_front_link(
        mut self,
        feed: usize,
        ce: usize,
        at_send: u64,
        stall: Duration,
    ) -> Self {
        self.stalls.push(StallFrontLink { feed, ce, at_send, stall });
        self
    }

    /// Sets the per-replica restart budget.
    #[must_use]
    pub fn max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Sets the DM retained-window size used for recovery replay.
    #[must_use]
    pub fn retain_window(mut self, retain_window: usize) -> Self {
        self.retain_window = retain_window;
        self
    }

    /// Sets the severed back link's resend-queue bound.
    #[must_use]
    pub fn resend_queue_cap(mut self, cap: usize) -> Self {
        self.resend_queue_cap = cap;
        self
    }

    /// Sets the reconnect backoff schedule parameters.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base` (see
    /// [`rcm_net::Backoff::new`]).
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        assert!(!base.is_zero() && cap >= base, "invalid backoff parameters");
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }
}

/// Per-variable seqno cursor guaranteeing a replica's recorded `U_i`
/// stays strictly ordered across crash/replay cycles.
///
/// The evaluator's own staleness check lives in its histories, which a
/// restart wipes — so after recovery it would happily re-accept seqnos
/// it already processed. The gate survives the restart and is consulted
/// on both the live path and the replay path, making ingestion
/// exactly-once per `(variable, seqno)` no matter how live arrivals and
/// window replays interleave.
///
/// The same cursor is what the socket transport's UDP receiver uses to
/// enforce the front-link contract (drop reorders and duplicates), so
/// the implementation lives there and the runtime re-exports it under
/// its historical name.
pub use rcm_transport::SeqGate as IngestGate;

/// A DM's bounded retention buffer: the last `cap` updates it emitted,
/// shared with recovering CE replicas for history replay.
#[derive(Debug, Clone)]
pub struct RetainedWindow {
    inner: Arc<Mutex<VecDeque<Update>>>,
    cap: usize,
}

impl RetainedWindow {
    /// An empty window retaining at most `cap` updates.
    pub fn new(cap: usize) -> Self {
        RetainedWindow { inner: Arc::new(Mutex::new(VecDeque::new())), cap }
    }

    /// Records an emitted update, evicting the oldest at capacity.
    pub fn push(&self, update: Update) {
        if self.cap == 0 {
            return;
        }
        let mut window = self.inner.lock();
        if window.len() == self.cap {
            window.pop_front();
        }
        window.push_back(update);
    }

    /// The retained updates, oldest first.
    pub fn snapshot(&self) -> Vec<Update> {
        self.inner.lock().iter().copied().collect()
    }
}

/// What the fault layer observed over one run; part of
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Scripted kills that actually fired.
    pub kills_injected: u32,
    /// Restarts performed, per replica.
    pub restarts: Vec<u32>,
    /// Replicas that exhausted their restart budget and stayed dead.
    pub replicas_abandoned: u32,
    /// Updates discarded from a replica's channel backlog at restart
    /// (arrived while the replica was down).
    pub updates_dropped_down: u64,
    /// Updates re-ingested from DM retained windows during recovery.
    pub updates_replayed: u64,
    /// Wall-clock time from catching each crash to recovery complete.
    pub recovery_latency: Vec<Duration>,
    /// Back-link severances that fired.
    pub backlink_severs: u64,
    /// Successful back-link reconnects.
    pub backlink_reconnects: u64,
    /// Reconnect attempts paced by the backoff schedule.
    pub backlink_attempts: u64,
    /// Duplicate alerts re-offered after reconnect (unacked resends).
    pub backlink_duplicates: u64,
    /// Alerts lost to resend-queue overflow (the only permitted alert
    /// loss, and only under a deliberately undersized queue).
    pub alerts_lost_overflow: u64,
}

impl FaultReport {
    /// An empty report for `replicas` CEs.
    pub fn new(replicas: usize) -> Self {
        FaultReport { restarts: vec![0; replicas], ..FaultReport::default() }
    }

    /// Total restarts across all replicas.
    pub fn total_restarts(&self) -> u32 {
        self.restarts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::VarId;

    fn u(var: u32, seqno: u64) -> Update {
        Update::new(VarId::new(var), seqno, 0.0)
    }

    #[test]
    fn gate_admits_strictly_ascending_per_var() {
        let mut gate = IngestGate::new();
        assert!(gate.admit(&u(0, 1)));
        assert!(gate.admit(&u(0, 3)));
        assert!(!gate.admit(&u(0, 3)), "duplicate rejected");
        assert!(!gate.admit(&u(0, 2)), "stale rejected");
        assert!(gate.admit(&u(1, 2)), "other variable independent");
        assert!(gate.admit(&u(0, 4)));
        assert_eq!(gate.cursor(VarId::new(0)), Some(4));
        assert_eq!(gate.cursor(VarId::new(2)), None);
    }

    /// Deterministic replay of the adversarial interleaving the loom
    /// suite explores exhaustively (`tests/loom.rs`): a restart replays
    /// the retained window through the gate *while* live updates keep
    /// arriving, and replayed updates interleave with — and can even
    /// overtake — live ones. Regression-pins the exactly-once ordering
    /// without needing `--cfg loom`.
    #[test]
    fn replay_interleaved_with_live_feed_admits_exactly_once() {
        let window = RetainedWindow::new(8);
        let mut gate = IngestGate::new();
        let mut admitted = Vec::new();
        let mut offer = |gate: &mut IngestGate, up: Update| {
            if gate.admit(&up) {
                admitted.push(up.seqno.get());
            }
        };

        // Live traffic before the kill; the DM retains what it sent.
        for s in 1..=2 {
            window.push(u(0, s));
            offer(&mut gate, u(0, s));
        }
        // Crash point: the DM races ahead while the CE is down.
        window.push(u(0, 3));
        // Recovery: replay snapshot [1, 2, 3] — 1 and 2 are duplicates
        // of already-ingested updates, 3 overtakes its live delivery.
        for up in window.snapshot() {
            offer(&mut gate, up);
        }
        // The live queue then drains, re-offering 3 and delivering 4.
        offer(&mut gate, u(0, 3));
        window.push(u(0, 4));
        offer(&mut gate, u(0, 4));

        assert_eq!(admitted, vec![1, 2, 3, 4], "exactly-once, in order");
        assert_eq!(gate.cursor(VarId::new(0)), Some(4));
    }

    #[test]
    fn window_evicts_oldest_at_capacity() {
        let w = RetainedWindow::new(3);
        for s in 1..=5 {
            w.push(u(0, s));
        }
        let kept: Vec<u64> = w.snapshot().iter().map(|u| u.seqno.get()).collect();
        assert_eq!(kept, vec![3, 4, 5]);
    }

    #[test]
    fn zero_cap_window_retains_nothing() {
        let w = RetainedWindow::new(0);
        w.push(u(0, 1));
        assert!(w.snapshot().is_empty());
    }

    #[test]
    fn random_plans_are_reproducible_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultPlan::random(seed, 3, 2, 100);
            let b = FaultPlan::random(seed, 3, 2, 100);
            assert_eq!(a, b, "seed {seed}");
            for k in &a.kills {
                assert!(k.ce < 3 && (1..=100).contains(&k.at_arrival));
            }
            for s in &a.severs {
                assert!(s.ce < 3);
            }
            for s in &a.stalls {
                assert!(s.feed < 2 && s.ce < 3 && s.at_send < 100);
            }
        }
    }

    #[test]
    fn random_plans_vary_with_the_seed() {
        let plans: Vec<FaultPlan> = (0..20).map(|s| FaultPlan::random(s, 4, 3, 200)).collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
        // At least one plan actually injects something.
        assert!(plans.iter().any(|p| !p.kills.is_empty() || !p.severs.is_empty()));
    }

    #[test]
    fn scripted_builder_accumulates() {
        let plan = FaultPlan::scripted()
            .kill_ce(1, 40)
            .sever_back_link(0, 2, Duration::from_millis(5))
            .stall_front_link(0, 1, 10, Duration::from_millis(1))
            .max_restarts(1)
            .retain_window(64)
            .resend_queue_cap(8)
            .backoff(Duration::from_millis(1), Duration::from_millis(4));
        assert_eq!(plan.kills, vec![KillCe { ce: 1, at_arrival: 40 }]);
        assert_eq!(plan.severs.len(), 1);
        assert_eq!(plan.stalls.len(), 1);
        assert_eq!(plan.max_restarts, 1);
        assert_eq!(plan.retain_window, 64);
        assert_eq!(plan.resend_queue_cap, 8);
    }
}
