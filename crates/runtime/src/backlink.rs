//! The lossless back link, made honest: severance, reconnect with
//! capped backoff, and a bounded resend queue.
//!
//! The paper assumes CE → AD links are in-order and lossless, which a
//! deployment gets from a connection-oriented transport — and
//! connections drop. This link models that: a scripted severance takes
//! it down for a while; sends during the outage go to a bounded FIFO
//! queue; reconnect attempts are paced by a seeded
//! [`Backoff`](rcm_net::Backoff) schedule; and on reconnect the link
//! first *re-sends its unacked tail* (a real transport cannot know
//! which in-flight messages survived the cut), then flushes the queue
//! in order. The receiver therefore sees exact duplicates around every
//! reconnect — which is precisely why every AD algorithm must discard
//! duplicate offers, and why [`BackLink::flush`] at end-of-stream makes
//! the lossless contract hold: nothing queued is ever abandoned, and
//! only a deliberately undersized queue can lose (counted, never
//! silent).
//!
//! LOCK ORDER: the only mutex is the `stats` counter block, a leaf —
//! it is never held across a channel send, a sleep, or any other lock.

use std::collections::VecDeque;

use rcm_sync::chan::Sender;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::{Arc, Mutex};

use rcm_net::Backoff;

/// Counters for one back link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackLinkStats {
    /// Messages transmitted (excluding duplicate resends).
    pub sent: u64,
    /// Scripted severances that fired.
    pub severs: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Reconnect attempts (paced by backoff).
    pub attempts: u64,
    /// Duplicate messages re-sent from the unacked tail on reconnect.
    pub resent_duplicates: u64,
    /// Peak resend-queue depth while severed.
    pub queued_peak: u64,
    /// Messages lost to resend-queue overflow.
    pub lost_overflow: u64,
}

/// How many recently-sent messages the link keeps for post-reconnect
/// resend (the "unacked tail" a real transport would retransmit).
const UNACKED_TAIL: usize = 8;

/// A TCP-like back link: FIFO and lossless across transient
/// disconnects, generic over the message type so the severance and
/// reconnect machinery is testable without a full pipeline.
pub struct BackLink<T> {
    tx: Sender<T>,
    /// Pending severances, ascending by send index: `(at_send, down_for)`.
    severs: VecDeque<(u64, Duration)>,
    sends_seen: u64,
    down_until: Option<Instant>,
    next_attempt: Instant,
    backoff: Backoff,
    queue: VecDeque<T>,
    queue_cap: usize,
    unacked: VecDeque<T>,
    unacked_cap: usize,
    stats: Arc<Mutex<BackLinkStats>>,
}

impl<T> std::fmt::Debug for BackLink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackLink")
            .field("down", &self.down_until.is_some())
            .field("queued", &self.queue.len())
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl<T: Clone + Send + 'static> BackLink<T> {
    /// Wraps a channel sender; with no severances scripted the link is
    /// a plain pass-through.
    pub fn new(tx: Sender<T>, backoff: Backoff) -> Self {
        BackLink {
            tx,
            severs: VecDeque::new(),
            sends_seen: 0,
            down_until: None,
            next_attempt: Instant::now(),
            backoff,
            queue: VecDeque::new(),
            queue_cap: 1024,
            unacked: VecDeque::new(),
            unacked_cap: UNACKED_TAIL,
            stats: Arc::new(Mutex::new(BackLinkStats::default())),
        }
    }

    /// Scripts severances as `(at_send, down_for)` pairs; `at_send`
    /// counts prior send calls, so `(0, d)` severs before the first.
    /// Pairs are sorted internally.
    #[must_use]
    pub fn with_severs(mut self, mut severs: Vec<(u64, Duration)>) -> Self {
        severs.sort_by_key(|&(at, _)| at);
        self.severs = severs.into();
        self
    }

    /// Bounds the resend queue (default 1024).
    #[must_use]
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the unacked-tail length resent on reconnect (default 8;
    /// 0 disables duplicate resends).
    #[must_use]
    pub fn unacked_cap(mut self, cap: usize) -> Self {
        self.unacked_cap = cap;
        self.unacked.truncate(cap);
        self
    }

    /// A handle for reading the link's counters after the CE thread has
    /// taken ownership of the link.
    pub fn stats_handle(&self) -> Arc<Mutex<BackLinkStats>> {
        Arc::clone(&self.stats)
    }

    /// Whether the link is currently severed.
    pub fn is_down(&self) -> bool {
        self.down_until.is_some()
    }

    /// Sends one message: transmitted immediately when connected,
    /// queued when severed (a non-blocking reconnect attempt is made
    /// first if the backoff schedule allows one).
    pub fn send(&mut self, msg: T) {
        if let Some(&(at, down_for)) = self.severs.front() {
            if self.sends_seen >= at {
                self.severs.pop_front();
                let until = Instant::now() + down_for;
                // A severance landing while already down extends the
                // outage rather than stacking a second one.
                self.down_until =
                    Some(self.down_until.map_or(until, |existing| existing.max(until)));
                self.next_attempt = Instant::now();
                self.backoff.reset();
                self.stats.lock().severs += 1;
            }
        }
        self.sends_seen += 1;
        if self.down_until.is_some() {
            self.try_reconnect(false);
        }
        if self.down_until.is_some() {
            self.enqueue(msg);
        } else {
            self.transmit(msg);
        }
    }

    /// Blocks until the link is up and everything queued has been
    /// transmitted. Call at end-of-stream: this is what turns "bounded
    /// queue while severed" into the paper's lossless contract.
    pub fn flush(&mut self) {
        if self.down_until.is_some() {
            self.try_reconnect(true);
        }
        debug_assert!(self.queue.is_empty(), "reconnect flushes the queue");
    }

    /// Attempts reconnection, pacing attempts by the backoff schedule.
    /// Blocking mode sleeps between attempts until the link is up;
    /// non-blocking mode makes at most one attempt and returns.
    fn try_reconnect(&mut self, blocking: bool) {
        let Some(until) = self.down_until else { return };
        loop {
            let now = Instant::now();
            if now < self.next_attempt {
                if !blocking {
                    return;
                }
                rcm_sync::thread::sleep(self.next_attempt - now);
            }
            self.stats.lock().attempts += 1;
            if Instant::now() >= until {
                self.down_until = None;
                self.backoff.reset();
                self.stats.lock().reconnects += 1;
                self.resend_unacked();
                self.flush_queue();
                return;
            }
            self.next_attempt = Instant::now() + self.backoff.next_delay();
            if !blocking {
                return;
            }
        }
    }

    /// Re-sends the unacked tail: pure duplicates on an in-memory
    /// channel, exactly the adversarial input the AD filters must
    /// tolerate.
    fn resend_unacked(&mut self) {
        let tail: Vec<T> = self.unacked.iter().cloned().collect();
        self.stats.lock().resent_duplicates += tail.len() as u64;
        for msg in tail {
            self.tx.send(msg).expect("back link receiver hung up during resend");
        }
    }

    /// Drains the severed-period queue in FIFO order.
    fn flush_queue(&mut self) {
        while let Some(msg) = self.queue.pop_front() {
            self.transmit(msg);
        }
    }

    fn transmit(&mut self, msg: T) {
        if self.unacked_cap > 0 {
            if self.unacked.len() == self.unacked_cap {
                self.unacked.pop_front();
            }
            self.unacked.push_back(msg.clone());
        }
        self.stats.lock().sent += 1;
        self.tx.send(msg).expect("back link receiver hung up before the stream ended");
    }

    fn enqueue(&mut self, msg: T) {
        let mut stats = self.stats.lock();
        if self.queue.len() >= self.queue_cap {
            self.queue.pop_front();
            stats.lost_overflow += 1;
        }
        self.queue.push_back(msg);
        stats.queued_peak = stats.queued_peak.max(self.queue.len() as u64);
    }
}

impl crate::actors::AlertSink for BackLink<rcm_core::Alert> {
    fn send_alert(&mut self, alert: rcm_core::Alert) {
        self.send(alert);
    }

    fn flush(&mut self) {
        BackLink::flush(self);
    }
    // Default `abandon`: dropping the channel sender is the hangup, and
    // the queued alerts of an abandoned replica are sanctioned loss.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sync::chan::unbounded;

    fn link(severs: Vec<(u64, Duration)>) -> (BackLink<u64>, rcm_sync::chan::Receiver<u64>) {
        let (tx, rx) = unbounded();
        let backoff = Backoff::new(Duration::from_micros(50), Duration::from_millis(2), 7);
        (BackLink::new(tx, backoff).with_severs(severs), rx)
    }

    fn drain(rx: &rcm_sync::chan::Receiver<u64>) -> Vec<u64> {
        rx.try_iter().collect()
    }

    #[test]
    fn passthrough_without_severs() {
        let (mut l, rx) = link(vec![]);
        for m in 0..5 {
            l.send(m);
        }
        l.flush();
        assert_eq!(drain(&rx), vec![0, 1, 2, 3, 4]);
        assert_eq!(l.stats_handle().lock().severs, 0);
    }

    #[test]
    fn instant_recovery_resends_unacked_tail_then_message() {
        // down_for = 0: the first reconnect attempt succeeds, so the
        // whole sequence is deterministic.
        let (mut l, rx) = link(vec![(2, Duration::ZERO)]);
        l.send(10);
        l.send(11);
        l.send(12); // sever fires, instantly reconnects: dup 10,11 then 12
        l.flush();
        assert_eq!(drain(&rx), vec![10, 11, 10, 11, 12]);
        let stats = *l.stats_handle().lock();
        assert_eq!(stats.severs, 1);
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.resent_duplicates, 2);
        assert_eq!(stats.lost_overflow, 0);
    }

    #[test]
    fn outage_queues_then_flush_delivers_everything_in_order() {
        let (mut l, rx) = link(vec![(1, Duration::from_millis(150))]);
        for m in 0..6 {
            l.send(m);
        }
        // Only the pre-sever message is through; the rest are queued.
        assert_eq!(drain(&rx), vec![0]);
        assert!(l.is_down());
        l.flush(); // blocks past the outage
        assert!(!l.is_down());
        assert_eq!(drain(&rx), vec![0, 1, 2, 3, 4, 5], "dup of 0, then the queue in order");
        let stats = *l.stats_handle().lock();
        assert_eq!(stats.lost_overflow, 0);
        assert!(stats.attempts >= 1);
        assert_eq!(stats.queued_peak, 5);
    }

    #[test]
    fn undersized_queue_loses_oldest_and_counts() {
        let (tx, rx) = unbounded();
        let backoff = Backoff::new(Duration::from_micros(50), Duration::from_millis(1), 3);
        let mut l = BackLink::new(tx, backoff)
            .with_severs(vec![(0, Duration::from_millis(100))])
            .unacked_cap(0)
            .queue_cap(2);
        for m in 0..5 {
            l.send(m);
        }
        l.flush();
        assert_eq!(drain(&rx), vec![3, 4], "kept the newest two");
        assert_eq!(l.stats_handle().lock().lost_overflow, 3);
    }

    #[test]
    fn overlapping_severs_extend_the_outage() {
        let (mut l, rx) =
            link(vec![(0, Duration::from_millis(60)), (1, Duration::from_millis(120))]);
        let start = Instant::now();
        l.send(1);
        l.send(2); // second sever while down: extends
        l.flush();
        assert!(start.elapsed() >= Duration::from_millis(100), "outage extended past first window");
        assert_eq!(drain(&rx), vec![1, 2]);
        assert_eq!(l.stats_handle().lock().severs, 2);
    }
}
