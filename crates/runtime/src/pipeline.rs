//! The CE's shard-parallel evaluation pipeline: dispatcher → shard
//! workers → sequencer, bit-identical to the single-threaded actor.
//!
//! PR 7's evented engine lets one CE process hold 10k+ front links,
//! which moved the throughput ceiling into the single evaluation
//! thread. This module parallelizes that stage while keeping the
//! output byte-for-byte identical:
//!
//! * the **dispatcher** (the supervised CE body) admits updates exactly
//!   as before (same ingest gate, same kill/restart/replay protocol)
//!   and fans each admitted update out to every worker over a bounded
//!   [`spsc`](rcm_sync::spsc) ring, stamped with a global admission
//!   index and an admission timestamp;
//! * each **shard worker** owns the `cond_id % workers` slice of the
//!   condition set (rcm-core's [`ShardSlices`] seam — the same
//!   partition the sim's `ShardedRegistry` uses) in a private
//!   [`ConditionRegistry`], evaluates every update against its slice in
//!   admission order, and reports per-update results to the sequencer;
//! * the **sequencer** reassembles rounds in ascending admission index
//!   (each worker's stream is already in that order, so one message per
//!   worker per round suffices), merges each round's alerts in
//!   ascending condition id ([`ShardSlices::merge_same_update`]), and
//!   hands them to the [`AlertDrain`] — reconstructing exactly the
//!   unsharded registry's emission order, alert numbering included.
//!
//! **Determinism argument.** The unsharded registry emits, per update,
//! in ascending condition-id order. Every worker sees the identical
//! admitted update stream in the identical order (rings are FIFO and
//! the dispatcher sheds all-or-nothing, pre-gate), so each condition's
//! state evolution — and therefore its alert stream and `AlertId`
//! numbering — is exactly what the single-threaded actor computes.
//! Sorting each round by condition id (a unique key: one alert per
//! condition per update) is then a permutation-free reconstruction of
//! the unsharded stream. Restart markers flow through the same FIFO
//! rings, so "histories wiped after update k, replay admitted after"
//! holds at the same stream position on every shard.
//!
//! **Batching.** Workers drain their ring in batches (one lock per
//! batch instead of one per job) bounded by a
//! [`BatchPolicy`](rcm_transport::BatchPolicy)'s `max_count` and
//! `max_delay` triggers — an empty ring always flushes immediately, so
//! batching adapts to queue depth and never waits for more input.
//!
//! **Shedding.** Rings are bounded; when any ring is full the
//! dispatcher sheds the arrival *before* the ingest gate, so a shed
//! update is indistinguishable from a front-link drop and the paper's
//! per-AD guarantees already cover it. Control markers use the rings'
//! blocking path and are never shed.
//!
//! LOCK ORDER: this module takes only leaf mutexes — a ring's internal
//! state lock (see `rcm_sync::spsc`) and the shared `emitted` record
//! inside the drain implementations, each taken alone and released
//! before any channel operation.

use std::panic::resume_unwind;

use rcm_sync::atomic::{AtomicU64, Ordering};
use rcm_sync::chan::{unbounded, Receiver, Sender};
use rcm_sync::spsc;
use rcm_sync::thread::JoinHandle;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, CondId, ConditionRegistry, LatencyHistogram, ShardSlices, Update};
use rcm_transport::BatchPolicy;

/// Where the sequencer delivers each admitted update's merged alerts.
///
/// The thread that runs the sequencer owns the drain, so the CE's back
/// link (channel or socket) moves in here; `rcm-ce` and the scale
/// gauntlet provide their own implementations.
pub trait AlertDrain: Send {
    /// One admitted update's merged alerts, in ascending condition-id
    /// order. Never called with an empty batch.
    fn alerts(&mut self, alerts: Vec<Alert>);

    /// Every DM hung up and every in-flight update was evaluated: the
    /// lossless path's goodbye (flush the back link).
    fn end_of_stream(&mut self);

    /// The replica exhausted its restart budget: close without
    /// flushing (queued alerts are the one sanctioned loss).
    fn abandoned(&mut self) {}
}

/// Pipeline shape knobs, as set on
/// [`SystemBuilder`](crate::SystemBuilder) or `rcm-ce --workers`.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Shard workers. `0` keeps the single-threaded in-actor path
    /// (the default; no pipeline threads are spawned at all).
    pub workers: usize,
    /// Bounded ring capacity per worker; a full ring sheds arrivals.
    pub ring_capacity: usize,
    /// Worker drain batching (`max_count`/`max_delay` apply;
    /// `max_bytes` is meaningless for in-process jobs and ignored).
    pub batch: BatchPolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { workers: 0, ring_capacity: 1024, batch: Self::default_batch() }
    }
}

impl PipelineOptions {
    /// The default worker drain policy: up to 64 jobs per ring drain,
    /// cut no later than 1ms after the batch opened. Mirrors
    /// [`BatchPolicy::stream`]'s count/delay triggers.
    pub fn default_batch() -> BatchPolicy {
        BatchPolicy { max_count: 64, max_bytes: usize::MAX, max_delay: Duration::from_millis(1) }
    }

    /// Options running `workers` shard workers with the defaults.
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions { workers, ..Self::default() }
    }
}

/// One dispatched unit on a worker ring.
enum Job {
    /// An admitted update, stamped with its global admission index and
    /// admission instant (the latency clock's zero).
    Update { idx: u64, t0: Instant, update: Update },
    /// Crash marker: wipe histories (numbering survives), ack, go on.
    Restart,
    /// Budget-exhausted marker: ack and exit without flushing.
    Abandon,
}

/// One worker → sequencer report.
enum Out {
    /// Update `idx` evaluated against this worker's slice.
    Done {
        idx: u64,
        t0: Instant,
        /// Alerts this shard produced for the update (often empty —
        /// an empty `Vec` never allocated).
        alerts: Vec<Alert>,
    },
    /// Restart marker passed this worker (keeps rounds aligned).
    Restarted,
    /// Abandon marker reached this worker; its stream ends here.
    Abandoned,
}

/// A running evaluation pipeline: worker threads, their rings, and the
/// sequencer. Owned by the dispatching CE body.
pub struct EvalPipeline {
    rings: Vec<spsc::Producer<Job>>,
    workers: Vec<JoinHandle<()>>,
    sequencer: Option<JoinHandle<()>>,
    next_idx: u64,
    shed: Arc<AtomicU64>,
}

impl std::fmt::Debug for EvalPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPipeline")
            .field("workers", &self.workers.len())
            .field("dispatched", &self.next_idx)
            .finish()
    }
}

impl EvalPipeline {
    /// Spawns `options.workers` shard workers (at least 1) plus the
    /// sequencer. Condition `i` gets global id `CondId::new(i)` and
    /// lives on shard `i % workers`, exactly as the sim's sharded
    /// engine partitions.
    pub fn start(
        ce: CeId,
        conditions: &[Arc<dyn Condition>],
        options: &PipelineOptions,
        drain: Box<dyn AlertDrain>,
        latency: Arc<LatencyHistogram>,
        shed: Arc<AtomicU64>,
    ) -> EvalPipeline {
        let workers = options.workers.max(1);
        let mut slices = ShardSlices::new(ce, workers);
        for (i, cond) in conditions.iter().enumerate() {
            slices.insert(CondId::new(i as u32), Arc::clone(cond));
        }
        let batch = options.batch;
        let mut rings = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        let mut outs: Vec<Receiver<Out>> = Vec::with_capacity(workers);
        for shard in slices.into_shards() {
            let (tx, rx) = spsc::ring::<Job>(options.ring_capacity.max(1));
            let (out_tx, out_rx) = unbounded::<Out>();
            rings.push(tx);
            outs.push(out_rx);
            joins.push(rcm_sync::thread::spawn(move || worker_body(shard, rx, out_tx, batch)));
        }
        let seq_latency = Arc::clone(&latency);
        let sequencer =
            Some(rcm_sync::thread::spawn(move || sequencer_body(outs, drain, seq_latency)));
        EvalPipeline { rings, workers: joins, sequencer, next_idx: 0, shed }
    }

    /// Whether dispatching one more update right now would overflow a
    /// ring. The dispatcher is the only producer, so a `false` answer
    /// stays valid until it pushes: workers only ever *free* space.
    pub fn would_shed(&self) -> bool {
        self.rings.iter().any(spsc::Producer::is_full)
    }

    /// Records one shed arrival (kept with the pipeline so every
    /// dispatcher counts into the same run-wide ledger).
    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Fans an admitted update out to every shard. Call only after
    /// [`EvalPipeline::would_shed`] said there is room — a race-free
    /// protocol for the single dispatcher.
    pub fn dispatch(&mut self, update: Update) {
        let idx = self.next_idx;
        self.next_idx += 1;
        let t0 = Instant::now();
        for ring in &self.rings {
            if ring.push(Job::Update { idx, t0, update }).is_err() {
                // Unreachable under the would_shed protocol (and a
                // dead consumer means the run is tearing down anyway);
                // losing a push here would desync shard histories, so
                // account it as shed for the report's sake.
                self.count_shed();
            }
        }
    }

    /// Fans an admitted update out on the rings' *blocking* path — the
    /// replay entry: recovery replays are already-admitted history and
    /// must not shed.
    pub fn dispatch_wait(&mut self, update: Update) {
        let idx = self.next_idx;
        self.next_idx += 1;
        let t0 = Instant::now();
        for ring in &self.rings {
            let _ = ring.push_wait(Job::Update { idx, t0, update });
        }
    }

    /// Updates dispatched so far (the next admission index).
    pub fn dispatched(&self) -> u64 {
        self.next_idx
    }

    /// Delivers the crash marker to every shard (blocking — restarts
    /// are control flow, never shed): each wipes its histories at the
    /// same stream position; alert numbering survives.
    pub fn restart(&mut self) {
        for ring in &self.rings {
            let _ = ring.push_wait(Job::Restart);
        }
    }

    /// End of stream: closes the rings, lets every worker drain, and
    /// joins the pipeline. The sequencer calls the drain's
    /// `end_of_stream` (flushing the back link) before exiting.
    pub fn finish(mut self) {
        self.rings.clear(); // dropping the producers closes the rings
        self.join();
    }

    /// Budget exhausted: delivers the abandon marker (in-flight
    /// updates still evaluate first — they were admitted), then joins.
    /// The sequencer calls the drain's `abandoned` instead of flushing.
    pub fn abandon(mut self) {
        for ring in &self.rings {
            let _ = ring.push_wait(Job::Abandon);
        }
        self.rings.clear();
        self.join();
    }

    fn join(&mut self) {
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
        if let Some(handle) = self.sequencer.take() {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    }
}

/// One shard worker: evaluates every update in admission order against
/// its registry slice, reporting per-update results upstream. Ring
/// drains are batched ([`PipelineOptions::batch`]): a deep queue is
/// paid for with one lock per `max_count` jobs, an empty queue flushes
/// immediately, and a hot stretch is cut no later than `max_delay`
/// after the batch opened.
fn worker_body(
    mut shard: ConditionRegistry,
    jobs: spsc::Consumer<Job>,
    out: Sender<Out>,
    batch: BatchPolicy,
) {
    let mut buf: Vec<Job> = Vec::new();
    while let Some(first) = jobs.pop() {
        let opened = Instant::now();
        buf.push(first);
        let cap = batch.max_count.max(1);
        while buf.len() < cap && !batch.expired(opened) {
            let want = cap - buf.len();
            if jobs.drain_into(&mut buf, want) == 0 {
                break; // empty ring: flush what we have, adaptively
            }
        }
        for job in buf.drain(..) {
            match job {
                Job::Update { idx, t0, update } => {
                    let mut alerts = Vec::new();
                    shard.ingest(update, &mut alerts);
                    if out.send(Out::Done { idx, t0, alerts }).is_err() {
                        return; // sequencer gone: run is tearing down
                    }
                }
                Job::Restart => {
                    shard.restart();
                    if out.send(Out::Restarted).is_err() {
                        return;
                    }
                }
                Job::Abandon => {
                    let _ = out.send(Out::Abandoned);
                    return;
                }
            }
        }
    }
}

/// What one worker's stream contributed to the current round.
enum RoundPull {
    Done { idx: u64, t0: Instant, alerts: Vec<Alert> },
    Closed,
    Abandoned,
}

/// Pulls the next significant (non-marker) message from one worker.
fn next_round_pull(rx: &Receiver<Out>) -> RoundPull {
    loop {
        match rx.recv() {
            Ok(Out::Done { idx, t0, alerts }) => return RoundPull::Done { idx, t0, alerts },
            Ok(Out::Restarted) => continue,
            Ok(Out::Abandoned) => return RoundPull::Abandoned,
            Err(_) => return RoundPull::Closed,
        }
    }
}

/// The sequencer: reassembles per-worker result streams into admission
/// order and the per-update ascending-condition-id merge, then records
/// the ingest→alert-emit latency for the round.
///
/// Lockstep invariant: every worker evaluates the identical job
/// sequence, so round `k` is each worker's `k`-th `Done` message — no
/// reorder buffer is needed, and a stream that ends (or abandons) ends
/// for all workers at the same round.
fn sequencer_body(
    outs: Vec<Receiver<Out>>,
    mut drain: Box<dyn AlertDrain>,
    latency: Arc<LatencyHistogram>,
) {
    let mut merged: Vec<Alert> = Vec::new();
    loop {
        merged.clear();
        let mut round: Option<(u64, Instant)> = None;
        let mut closed = false;
        let mut abandoned = false;
        for rx in &outs {
            match next_round_pull(rx) {
                RoundPull::Done { idx, t0, alerts } => {
                    debug_assert!(
                        round.is_none() || round.is_some_and(|(r, _)| r == idx),
                        "workers desynced: round {round:?} saw idx {idx}"
                    );
                    round = Some((idx, t0));
                    merged.extend(alerts);
                }
                RoundPull::Closed => closed = true,
                RoundPull::Abandoned => abandoned = true,
            }
        }
        if abandoned {
            drain.abandoned();
            return;
        }
        if closed {
            drain.end_of_stream();
            return;
        }
        if !merged.is_empty() {
            ShardSlices::merge_same_update(&mut merged);
            drain.alerts(std::mem::take(&mut merged));
        }
        if let Some((_, t0)) = round {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            latency.record(nanos);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::VarId;
    use rcm_sync::Mutex;

    struct VecDrain {
        alerts: Arc<Mutex<Vec<Alert>>>,
        flushed: Arc<Mutex<bool>>,
        abandoned: Arc<Mutex<bool>>,
    }

    impl AlertDrain for VecDrain {
        fn alerts(&mut self, alerts: Vec<Alert>) {
            assert!(!alerts.is_empty(), "drain must not see empty rounds");
            // LOCK ORDER: leaf test sink, taken alone.
            self.alerts.lock().extend(alerts);
        }
        fn end_of_stream(&mut self) {
            *self.flushed.lock() = true;
        }
        fn abandoned(&mut self) {
            *self.abandoned.lock() = true;
        }
    }

    fn family(n: u32) -> Vec<Arc<dyn Condition>> {
        let x = VarId::new(0);
        (0..n)
            .map(|i| Arc::new(Threshold::new(x, Cmp::Gt, f64::from(i % 7))) as Arc<dyn Condition>)
            .collect()
    }

    fn reference(conds: &[Arc<dyn Condition>], updates: &[Update]) -> Vec<Alert> {
        let mut reg = ConditionRegistry::new(CeId::new(0));
        for (i, c) in conds.iter().enumerate() {
            reg.insert(CondId::new(i as u32), Arc::clone(c));
        }
        let mut out = Vec::new();
        reg.ingest_batch(updates, &mut out);
        out
    }

    fn run_pipeline(
        conds: &[Arc<dyn Condition>],
        updates: &[Update],
        workers: usize,
        restart_before: Option<usize>,
    ) -> (Vec<Alert>, bool, bool) {
        let got = Arc::new(Mutex::new(Vec::new()));
        let flushed = Arc::new(Mutex::new(false));
        let abandoned = Arc::new(Mutex::new(false));
        let drain = Box::new(VecDrain {
            alerts: Arc::clone(&got),
            flushed: Arc::clone(&flushed),
            abandoned: Arc::clone(&abandoned),
        });
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            conds,
            &PipelineOptions::with_workers(workers),
            drain,
            Arc::new(LatencyHistogram::new()),
            Arc::new(AtomicU64::new(0)),
        );
        for (i, &u) in updates.iter().enumerate() {
            if restart_before == Some(i) {
                pipe.restart();
            }
            pipe.dispatch_wait(u);
        }
        pipe.finish();
        let alerts = got.lock().clone();
        let f = *flushed.lock();
        let a = *abandoned.lock();
        (alerts, f, a)
    }

    fn stream(n: u64) -> Vec<Update> {
        let x = VarId::new(0);
        (1..=n).map(|s| Update::new(x, s, (s % 10) as f64)).collect()
    }

    #[test]
    fn pipeline_matches_unsharded_for_any_worker_count() {
        let conds = family(11);
        let updates = stream(60);
        let want = reference(&conds, &updates);
        assert!(!want.is_empty());
        for workers in [1usize, 2, 3, 8] {
            let (got, flushed, abandoned) = run_pipeline(&conds, &updates, workers, None);
            assert_eq!(got, want, "workers = {workers}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "workers = {workers}");
            }
            assert!(flushed && !abandoned);
        }
    }

    #[test]
    fn restart_marker_wipes_all_shards_at_the_same_position() {
        let conds = family(7);
        let updates = stream(40);
        let cut = 23;
        let mut reg = ConditionRegistry::new(CeId::new(0));
        for (i, c) in conds.iter().enumerate() {
            reg.insert(CondId::new(i as u32), Arc::clone(c));
        }
        let mut want = Vec::new();
        reg.ingest_batch(&updates[..cut], &mut want);
        reg.restart();
        reg.ingest_batch(&updates[cut..], &mut want);

        for workers in [1usize, 4] {
            let (got, ..) = run_pipeline(&conds, &updates, workers, Some(cut));
            assert_eq!(got, want, "workers = {workers}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "workers = {workers}");
            }
        }
    }

    #[test]
    fn abandon_skips_the_flush_but_not_inflight_updates() {
        let conds = family(3);
        let updates = stream(10);
        let want = reference(&conds, &updates);
        let got = Arc::new(Mutex::new(Vec::new()));
        let flushed = Arc::new(Mutex::new(false));
        let abandoned = Arc::new(Mutex::new(false));
        let drain = Box::new(VecDrain {
            alerts: Arc::clone(&got),
            flushed: Arc::clone(&flushed),
            abandoned: Arc::clone(&abandoned),
        });
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            &conds,
            &PipelineOptions::with_workers(2),
            drain,
            Arc::new(LatencyHistogram::new()),
            Arc::new(AtomicU64::new(0)),
        );
        for &u in &updates {
            pipe.dispatch_wait(u);
        }
        pipe.abandon();
        assert_eq!(got.lock().clone(), want);
        assert!(*abandoned.lock());
        assert!(!*flushed.lock());
    }

    #[test]
    fn full_rings_shed_all_or_nothing() {
        let conds = family(2);
        // Tiny rings, no consumers draining yet: would_shed flips once
        // a ring fills.
        let got = Arc::new(Mutex::new(Vec::new()));
        let drain = Box::new(VecDrain {
            alerts: Arc::clone(&got),
            flushed: Arc::new(Mutex::new(false)),
            abandoned: Arc::new(Mutex::new(false)),
        });
        let shed = Arc::new(AtomicU64::new(0));
        let opts = PipelineOptions { workers: 2, ring_capacity: 1, ..PipelineOptions::default() };
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            &conds,
            &opts,
            drain,
            Arc::new(LatencyHistogram::new()),
            Arc::clone(&shed),
        );
        let x = VarId::new(0);
        let mut dispatched = 0u64;
        for s in 1..=200u64 {
            if pipe.would_shed() {
                pipe.count_shed();
            } else {
                pipe.dispatch(Update::new(x, s, 50.0));
                dispatched += 1;
            }
        }
        pipe.finish();
        let shed = shed.load(Ordering::Relaxed);
        assert_eq!(shed + dispatched, 200);
        // Every dispatched update reached *both* conditions: alerts
        // come in pairs, and both per-condition streams number densely.
        let alerts = got.lock().clone();
        assert_eq!(alerts.len() as u64, dispatched * 2);
        for cond in 0..2u32 {
            let idxs: Vec<u64> =
                alerts.iter().filter(|a| a.cond == CondId::new(cond)).map(|a| a.id.index).collect();
            assert!(idxs.iter().enumerate().all(|(i, &n)| n == i as u64), "{idxs:?}");
        }
    }

    #[test]
    fn latency_histogram_sees_every_round() {
        let conds = family(1);
        let updates = stream(25);
        let latency = Arc::new(LatencyHistogram::new());
        let drain = Box::new(VecDrain {
            alerts: Arc::new(Mutex::new(Vec::new())),
            flushed: Arc::new(Mutex::new(false)),
            abandoned: Arc::new(Mutex::new(false)),
        });
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            &conds,
            &PipelineOptions::with_workers(2),
            drain,
            Arc::clone(&latency),
            Arc::new(AtomicU64::new(0)),
        );
        for &u in &updates {
            pipe.dispatch_wait(u);
        }
        pipe.finish();
        let snap = latency.snapshot();
        assert_eq!(snap.count, 25);
        assert!(snap.p99_ns >= snap.p50_ns);
        assert!(snap.max_ns >= snap.p999_ns);
    }
}
