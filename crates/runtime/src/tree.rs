//! Threaded aggregation-tree deployment: every tree node is an OS
//! thread, every tier link a FIFO channel carrying encoded
//! [`Message::Derived`] frames.
//!
//! [`rcm_tree`] proves the fan-in semantics deterministically
//! ([`rcm_tree::TreeEval`]); this module *deploys* the same node types
//! — [`LeafCe`], [`Relay`], [`RootCe`] — the way the flat runtime
//! deploys its DM/CE/AD triangle: one thread per node, channels
//! standing in for lossless tier links, and every hop crossing the
//! version-gated wire codec for real (encode on the child, decode on
//! the parent; no shared memory shortcuts).
//!
//! Failure is scripted the same way [`FaultPlan`](crate::FaultPlan)
//! scripts it for the flat system, via [`TreeFault`]:
//!
//! * **subtree kill** — a relay thread exits mid-run; its children's
//!   frames bounce off the closed channel (counted as
//!   `frames_to_dead`) until the supervisor re-parents them;
//! * **re-parent** — the supervisor adopts every orphan onto the dead
//!   relay's nearest live sibling (or its closest live ancestor,
//!   ultimately the root) and tells it to replay its bounded sender
//!   window through the new uplink. Every gate on the new path
//!   discards what it already admitted, so replay is idempotent and
//!   recovery is complete whenever the outage fits the window;
//! * **tier-link sever** — a child stops transmitting for a scripted
//!   span, then replays its window on restore, modeling a lossless
//!   link that reconnects.
//!
//! A final re-parent pass always runs after the stream drains — the
//! supervisor's last duty before shutdown, so a run never *ends*
//! with an orphaned subtree silently holding undelivered verdicts.
//!
//! Shutdown is by ownership, exactly like the flat system: the router
//! drops the leaf senders, leaves drain and drop their uplinks, each
//! tier collapses upward in turn, and the root returns the displayed
//! alert sequence.
//!
//! LOCK ORDER: no locks — each thread owns its node outright, all
//! coordination is message passing, and counters travel back as join
//! values.

use std::collections::BTreeMap;

use rcm_sync::chan::{unbounded, Receiver, Sender};
use rcm_sync::thread;

use rcm_core::{Alert, CeId, DerivedUpdate, Update, VarId};
use rcm_transport::wire::{self, Message};
use rcm_transport::Codec;
use rcm_tree::{LeafCe, LeafOutput, NodeRef, Relay, RootCe, TreeOptions, TreePlan, TreeStats};

use crate::system::RunReport;

/// One scripted fault in a tree run, triggered by the router's raw
/// update index (0-based; an index at or past the stream length fires
/// after the stream drains, before the final re-parent pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFault {
    /// Crash relay `idx` on interior tier `tier` (1-based) — the whole
    /// subtree beneath it goes dark until a re-parent pass.
    KillRelay {
        /// Interior tier, `1..=relay_tiers`.
        tier: usize,
        /// Relay index within the tier.
        idx: usize,
        /// Router update index that triggers the kill.
        at_update: u64,
    },
    /// Crash one replica of a leaf; surviving replicas keep the leaf's
    /// derived streams alive with no gap.
    KillLeafReplica {
        /// Leaf index.
        leaf: usize,
        /// Replica index within the leaf.
        replica: usize,
        /// Router update index that triggers the kill.
        at_update: u64,
    },
    /// Sever a node's uplink for `down_for` router updates: frames are
    /// withheld (counted as `frames_to_dead`) and the window replays
    /// on restore.
    SeverUplink {
        /// Tier of the severed child (`0` = leaves).
        tier: usize,
        /// Node index within the tier.
        idx: usize,
        /// Replica index (only meaningful when `tier == 0`).
        replica: usize,
        /// Router update index that severs the link.
        at_update: u64,
        /// Router updates until the link restores and replays.
        down_for: u64,
    },
    /// Run a supervisor re-parent pass: adopt every orphan of a dead
    /// relay and replay its window through the new path.
    Reparent {
        /// Router update index that triggers the pass.
        at_update: u64,
    },
}

impl TreeFault {
    fn at_update(&self) -> u64 {
        match *self {
            TreeFault::KillRelay { at_update, .. }
            | TreeFault::KillLeafReplica { at_update, .. }
            | TreeFault::SeverUplink { at_update, .. }
            | TreeFault::Reparent { at_update } => at_update,
        }
    }
}

/// What a finished tree run produced.
#[derive(Debug, Clone)]
pub struct TreeReport {
    /// Alerts the root displayed, in display order, stamped with the
    /// root's provenance.
    pub displayed: Vec<Alert>,
    /// Per leaf replica (index `leaf * replicas + replica`): the
    /// alerts it displayed on its *own* AD, pre-fan-in.
    pub leaf_alerts: Vec<Vec<Alert>>,
    /// The run's tree counters, summed across every node thread and
    /// the supervisor.
    pub stats: TreeStats,
}

impl TreeReport {
    /// Re-shapes the tree run into the flat [`RunReport`] surface so
    /// downstream consumers (the chaos gauntlet's JSON document, the
    /// scale harness) read one report type for both deployments; tree
    /// counters ride in [`RunReport::tree`].
    pub fn into_run_report(self) -> RunReport {
        RunReport {
            arrivals: self.displayed.clone(),
            displayed: self.displayed,
            ingested: Vec::new(),
            emitted: self.leaf_alerts,
            links: Vec::new(),
            faults: crate::FaultReport::default(),
            transport: rcm_transport::TransportReport::default(),
            pipeline: crate::PipelineReport::default(),
            tree: Some(self.stats),
        }
    }
}

/// Control and data messages into a relay or root thread.
enum NodeMsg {
    /// An encoded [`Message::Derived`] frame from a child.
    Frame(Vec<u8>),
    /// Adopt a new uplink and replay the sender window through it.
    Reparent(Sender<NodeMsg>),
    /// Stop transmitting upward (the uplink is severed).
    Sever,
    /// Resume transmitting and replay the sender window.
    Restore,
    /// Crash: exit immediately, closing the inbox.
    Kill,
}

/// Control and data messages into a leaf replica thread.
enum LeafMsg {
    /// A raw update routed to this leaf.
    Raw(Update),
    /// Adopt a new uplink and replay the sender window through it.
    Reparent(Sender<NodeMsg>),
    /// Stop transmitting upward.
    Sever,
    /// Resume transmitting and replay the sender window.
    Restore,
    /// Crash this replica: it ingests nothing further but keeps
    /// draining its inbox so siblings are unaffected.
    Kill,
}

/// Builder and runner for a threaded aggregation-tree deployment — the
/// tree-shaped sibling of [`SystemBuilder`](crate::SystemBuilder).
///
/// ```rust
/// use rcm_runtime::{TreeTopology, TreePlan};
/// use rcm_core::condition::{Cmp, Threshold};
/// use rcm_core::{CondId, Update, VarId};
/// use std::sync::Arc;
///
/// let x = VarId::new(0);
/// let mut plan = TreePlan::new(2).with_relay_tiers(1);
/// plan.own(x, 0).own(VarId::new(1), 1);
/// plan.add_condition(CondId::new(0), Arc::new(Threshold::new(x, Cmp::Gt, 3000.0))).unwrap();
/// let report = TreeTopology::new(plan)
///     .stream([Update::new(x, 1, 2900.0), Update::new(x, 2, 3100.0)])
///     .run();
/// assert_eq!(report.displayed.len(), 1);
/// ```
#[derive(Debug)]
pub struct TreeTopology {
    plan: TreePlan,
    opts: TreeOptions,
    codec: Codec,
    stream: Vec<Update>,
    faults: Vec<TreeFault>,
}

impl TreeTopology {
    /// A tree deployment of `plan` with default options and the binary
    /// codec on every tier link.
    pub fn new(plan: TreePlan) -> Self {
        TreeTopology {
            plan,
            opts: TreeOptions::default(),
            codec: Codec::Binary,
            stream: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Sets the deployment knobs (replicas, shards, replay window…).
    pub fn options(mut self, opts: TreeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the tier-link codec (binary by default).
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Appends raw updates to the routed input stream.
    pub fn stream<I: IntoIterator<Item = Update>>(mut self, updates: I) -> Self {
        self.stream.extend(updates);
        self
    }

    /// Appends scripted faults.
    pub fn faults<I: IntoIterator<Item = TreeFault>>(mut self, faults: I) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Spawns the tree, routes the whole stream through it, drains and
    /// joins every node thread, and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the options are degenerate (zero replicas or shards)
    /// or a scripted fault names a node outside the topology.
    pub fn run(self) -> TreeReport {
        Supervisor::deploy(self).run()
    }
}

/// Per-node sender window replayed on re-parent / link restore.
fn replay_window<'a>(
    window: impl Iterator<Item = &'a DerivedUpdate>,
    up: &Sender<NodeMsg>,
    codec: Codec,
    stats: &mut TreeStats,
) {
    for d in window {
        stats.replayed_frames += 1;
        send_frame(up, codec, d, stats);
    }
}

/// Encodes one derived update and sends the frame up; a closed uplink
/// (dead parent) counts the frame as lost in flight.
fn send_frame(up: &Sender<NodeMsg>, codec: Codec, d: &DerivedUpdate, stats: &mut TreeStats) {
    let msg = Message::Derived(d.clone());
    let bytes = wire::encode_with(codec, &msg).expect("derived frames always encode");
    stats.wire_frames += 1;
    stats.wire_bytes += bytes.len() as u64;
    if up.send(NodeMsg::Frame(bytes)).is_err() {
        stats.frames_to_dead += 1;
    }
}

/// Decodes one tier-link frame; lossless links never corrupt, so a
/// malformed frame here is a codec bug worth crashing the run for.
fn decode_derived(bytes: &[u8]) -> DerivedUpdate {
    match wire::decode_datagram(bytes) {
        Ok(Message::Derived(d)) => d,
        other => panic!("tier link carried a non-derived frame: {other:?}"),
    }
}

fn leaf_thread(
    mut leaf: LeafCe,
    rx: Receiver<LeafMsg>,
    mut up: Sender<NodeMsg>,
    codec: Codec,
) -> (Vec<Alert>, TreeStats) {
    let mut alerts = Vec::new();
    let mut stats = TreeStats::default();
    let mut severed = false;
    for msg in rx.iter() {
        match msg {
            LeafMsg::Raw(u) => {
                let mut out = LeafOutput::default();
                leaf.ingest(u, &mut out);
                stats.leaf_alerts += out.alerts.len() as u64;
                alerts.extend(out.alerts);
                for d in &out.derived {
                    if severed {
                        stats.frames_to_dead += 1; // withheld; window replays on restore
                    } else {
                        send_frame(&up, codec, d, &mut stats);
                    }
                }
            }
            LeafMsg::Reparent(new_up) => {
                up = new_up;
                if !leaf.is_dead() {
                    replay_window(leaf.window().iter(), &up, codec, &mut stats);
                }
            }
            LeafMsg::Sever => severed = true,
            LeafMsg::Restore => {
                severed = false;
                replay_window(leaf.window().iter(), &up, codec, &mut stats);
            }
            LeafMsg::Kill => leaf.kill(),
        }
    }
    stats.derived_emitted = leaf.derived_emitted();
    stats.gate_dropped_raw = leaf.dropped_by_gate();
    (alerts, stats)
}

fn relay_thread(
    mut relay: Relay,
    rx: Receiver<NodeMsg>,
    mut up: Sender<NodeMsg>,
    codec: Codec,
) -> TreeStats {
    let mut stats = TreeStats::default();
    let mut severed = false;
    for msg in rx.iter() {
        match msg {
            NodeMsg::Frame(bytes) => {
                let d = decode_derived(&bytes);
                if let Some(fwd) = relay.ingest(&d) {
                    if severed {
                        stats.frames_to_dead += 1;
                    } else {
                        send_frame(&up, codec, &fwd, &mut stats);
                    }
                }
            }
            NodeMsg::Reparent(new_up) => {
                up = new_up;
                replay_window(relay.window().iter(), &up, codec, &mut stats);
            }
            NodeMsg::Sever => severed = true,
            NodeMsg::Restore => {
                severed = false;
                replay_window(relay.window().iter(), &up, codec, &mut stats);
            }
            // Exit without draining: the inbox closes and children's
            // in-flight frames are genuinely lost, as a crash loses
            // them.
            NodeMsg::Kill => break,
        }
    }
    stats.derived_forwarded = relay.forwarded();
    stats.derived_duplicates = relay.duplicates();
    stats
}

fn root_thread(mut root: RootCe, rx: Receiver<NodeMsg>) -> (Vec<Alert>, TreeStats) {
    let mut out = Vec::new();
    for msg in rx.iter() {
        // The root cannot die or be severed; control frames are inert.
        if let NodeMsg::Frame(bytes) = msg {
            root.ingest(&decode_derived(&bytes), &mut out);
        }
    }
    let mut stats = TreeStats::default();
    stats.derived_duplicates = root.duplicates();
    stats.root_alerts = root.displayed();
    (out, stats)
}

/// The deployed tree: thread handles, channel registry, and the
/// supervisor's live-topology bookkeeping (who is alive, who uplinks
/// where) used to script faults and drive re-parent passes.
struct Supervisor {
    codec: Codec,
    owner: BTreeMap<VarId, usize>,
    stream: Vec<Update>,
    faults: Vec<TreeFault>,
    /// `parents[t][n]`: uplink of node `n` at tier `t` (`0` = leaves).
    parents: Vec<Vec<NodeRef>>,
    relay_alive: Vec<Vec<bool>>,
    leaf_txs: Vec<Vec<Sender<LeafMsg>>>,
    relay_txs: Vec<Vec<Sender<NodeMsg>>>,
    root_tx: Sender<NodeMsg>,
    leaf_joins: Vec<Vec<thread::JoinHandle<(Vec<Alert>, TreeStats)>>>,
    relay_joins: Vec<Vec<thread::JoinHandle<TreeStats>>>,
    root_join: thread::JoinHandle<(Vec<Alert>, TreeStats)>,
    stats: TreeStats,
}

impl Supervisor {
    fn deploy(topo: TreeTopology) -> Self {
        let TreeTopology { plan, opts, codec, stream, mut faults } = topo;
        assert!(opts.leaf_replicas >= 1, "need at least one replica per leaf");
        assert!(opts.shards_per_leaf >= 1, "need at least one shard per leaf");
        let (leaves_n, tiers, fanout) = (plan.leaves(), plan.relay_tiers(), plan.fanout());
        faults.sort_by_key(TreeFault::at_update);

        let mut width = vec![leaves_n];
        for t in 1..=tiers {
            width.push(width[t - 1].div_ceil(fanout).max(1));
        }
        let parents: Vec<Vec<NodeRef>> = width
            .iter()
            .enumerate()
            .map(|(t, &w)| {
                (0..w)
                    .map(|n| {
                        if t == tiers {
                            NodeRef::Root
                        } else {
                            NodeRef::Relay { tier: t + 1, idx: (n / fanout).min(width[t + 1] - 1) }
                        }
                    })
                    .collect()
            })
            .collect();

        let (root_tx, root_rx) = unbounded();
        let root = RootCe::from_plan(&plan, &opts);
        let root_join = thread::spawn(move || root_thread(root, root_rx));

        // Relays top tier first, so each tier's uplink sender exists.
        let mut relay_txs: Vec<Vec<Sender<NodeMsg>>> = vec![Vec::new(); tiers];
        let mut relay_joins: Vec<Vec<thread::JoinHandle<TreeStats>>> = Vec::new();
        for _ in 0..tiers {
            relay_joins.push(Vec::new());
        }
        for t in (1..=tiers).rev() {
            for n in 0..width[t] {
                let up = match parents[t][n] {
                    NodeRef::Root => root_tx.clone(),
                    NodeRef::Relay { tier, idx } => relay_txs[tier - 1][idx].clone(),
                };
                let (tx, rx) = unbounded();
                let relay = Relay::new(t as u8, n as u32, opts.replay_window);
                relay_txs[t - 1].push(tx);
                relay_joins[t - 1].push(thread::spawn(move || relay_thread(relay, rx, up, codec)));
            }
        }

        let mut leaf_txs: Vec<Vec<Sender<LeafMsg>>> = Vec::new();
        let mut leaf_joins = Vec::new();
        for leaf in 0..leaves_n {
            let up = match parents[0][leaf] {
                NodeRef::Root => root_tx.clone(),
                NodeRef::Relay { tier, idx } => relay_txs[tier - 1][idx].clone(),
            };
            let mut txs = Vec::new();
            let mut joins = Vec::new();
            for r in 0..opts.leaf_replicas {
                let ce = CeId::new((leaf * opts.leaf_replicas + r) as u32 + 1);
                let replica = LeafCe::from_plan(&plan, leaf, ce, &opts);
                let (tx, rx) = unbounded();
                let up = up.clone();
                txs.push(tx);
                joins.push(thread::spawn(move || leaf_thread(replica, rx, up, codec)));
            }
            leaf_txs.push(txs);
            leaf_joins.push(joins);
        }

        let owner: BTreeMap<VarId, usize> = plan.owned_vars().into_iter().collect();
        Supervisor {
            codec,
            owner,
            stream,
            faults,
            parents,
            relay_alive: width[1..].iter().map(|&w| vec![true; w]).collect(),
            leaf_txs,
            relay_txs,
            root_tx,
            leaf_joins,
            relay_joins,
            root_join,
            stats: TreeStats::default(),
        }
    }

    fn sender_for(&self, node: NodeRef) -> Sender<NodeMsg> {
        match node {
            NodeRef::Root => self.root_tx.clone(),
            NodeRef::Relay { tier, idx } => self.relay_txs[tier - 1][idx].clone(),
        }
    }

    /// Mirrors `TreeEval::adoptive_parent`: nearest live sibling of the
    /// dead relay, else its closest live ancestor (the root survives).
    fn adoptive_parent(&self, tier: usize, idx: usize) -> NodeRef {
        let mut best: Option<usize> = None;
        for (j, &alive) in self.relay_alive[tier - 1].iter().enumerate() {
            if j == idx || !alive {
                continue;
            }
            if best.is_none_or(|b| j.abs_diff(idx) < b.abs_diff(idx)) {
                best = Some(j);
            }
        }
        if let Some(j) = best {
            return NodeRef::Relay { tier, idx: j };
        }
        let mut at = self.parents[tier][idx];
        loop {
            match at {
                NodeRef::Relay { tier: t, idx: i } if !self.relay_alive[t - 1][i] => {
                    at = self.parents[t][i];
                }
                live => return live,
            }
        }
    }

    /// Adopts every child whose parent is dead and tells it to replay
    /// its window through the new uplink.
    fn reparent_orphans(&mut self) {
        for t in 0..self.parents.len() {
            for n in 0..self.parents[t].len() {
                let NodeRef::Relay { tier, idx } = self.parents[t][n] else { continue };
                if self.relay_alive[tier - 1][idx] {
                    continue;
                }
                let adopted = self.adoptive_parent(tier, idx);
                self.parents[t][n] = adopted;
                self.stats.reparent_events += 1;
                if t == 0 {
                    for tx in &self.leaf_txs[n] {
                        let _ = tx.send(LeafMsg::Reparent(self.sender_for(adopted)));
                    }
                } else {
                    let _ =
                        self.relay_txs[t - 1][n].send(NodeMsg::Reparent(self.sender_for(adopted)));
                }
            }
        }
    }

    fn fire(&mut self, fault: TreeFault, restores: &mut Vec<(u64, usize, usize, usize)>) {
        match fault {
            TreeFault::KillRelay { tier, idx, .. } => {
                self.relay_alive[tier - 1][idx] = false;
                let _ = self.relay_txs[tier - 1][idx].send(NodeMsg::Kill);
            }
            TreeFault::KillLeafReplica { leaf, replica, .. } => {
                let _ = self.leaf_txs[leaf][replica].send(LeafMsg::Kill);
            }
            TreeFault::SeverUplink { tier, idx, replica, at_update, down_for } => {
                if tier == 0 {
                    let _ = self.leaf_txs[idx][replica].send(LeafMsg::Sever);
                } else {
                    let _ = self.relay_txs[tier - 1][idx].send(NodeMsg::Sever);
                }
                restores.push((at_update.saturating_add(down_for), tier, idx, replica));
            }
            TreeFault::Reparent { .. } => self.reparent_orphans(),
        }
    }

    fn restore(&self, tier: usize, idx: usize, replica: usize) {
        if tier == 0 {
            let _ = self.leaf_txs[idx][replica].send(LeafMsg::Restore);
        } else {
            let _ = self.relay_txs[tier - 1][idx].send(NodeMsg::Restore);
        }
    }

    fn run(mut self) -> TreeReport {
        // Route the stream, firing scripted faults at their indices.
        let mut faults = std::mem::take(&mut self.faults).into_iter().peekable();
        let mut restores: Vec<(u64, usize, usize, usize)> = Vec::new();
        let stream = std::mem::take(&mut self.stream);
        for (i, u) in stream.into_iter().enumerate() {
            let i = i as u64;
            while faults.peek().is_some_and(|f| f.at_update() <= i) {
                let f = faults.next().expect("peeked");
                self.fire(f, &mut restores);
            }
            let mut j = 0;
            while j < restores.len() {
                if restores[j].0 <= i {
                    let (_, tier, idx, replica) = restores.swap_remove(j);
                    self.restore(tier, idx, replica);
                } else {
                    j += 1;
                }
            }
            match self.owner.get(&u.var) {
                None => self.stats.updates_unowned += 1,
                Some(&leaf) => {
                    self.stats.updates_routed += 1;
                    for tx in &self.leaf_txs[leaf] {
                        let _ = tx.send(LeafMsg::Raw(u));
                    }
                }
            }
        }
        // Late-scheduled faults and pending restores fire post-stream.
        for f in faults {
            self.fire(f, &mut restores);
        }
        for (_, tier, idx, replica) in restores {
            self.restore(tier, idx, replica);
        }
        // The supervisor's last duty: never shut down with an orphaned
        // subtree still holding undelivered verdicts.
        self.reparent_orphans();

        // Ownership shutdown, bottom tier first.
        let mut stats = self.stats;
        let mut leaf_alerts = Vec::new();
        drop(self.leaf_txs);
        for joins in self.leaf_joins {
            for j in joins {
                let (alerts, part) = j.join().expect("leaf thread never panics");
                leaf_alerts.push(alerts);
                accumulate(&mut stats, part);
            }
        }
        for (txs, joins) in self.relay_txs.into_iter().zip(self.relay_joins) {
            drop(txs);
            for j in joins {
                accumulate(&mut stats, j.join().expect("relay thread never panics"));
            }
        }
        drop(self.root_tx);
        let (displayed, part) = self.root_join.join().expect("root thread never panics");
        accumulate(&mut stats, part);
        TreeReport { displayed, leaf_alerts, stats }
    }
}

/// Field-wise sum of per-thread counter parts into the run total.
fn accumulate(total: &mut TreeStats, part: TreeStats) {
    total.updates_routed += part.updates_routed;
    total.updates_unowned += part.updates_unowned;
    total.gate_dropped_raw += part.gate_dropped_raw;
    total.leaf_alerts += part.leaf_alerts;
    total.derived_emitted += part.derived_emitted;
    total.derived_forwarded += part.derived_forwarded;
    total.derived_duplicates += part.derived_duplicates;
    total.reparent_events += part.reparent_events;
    total.replayed_frames += part.replayed_frames;
    total.frames_to_dead += part.frames_to_dead;
    total.root_alerts += part.root_alerts;
    total.wire_frames += part.wire_frames;
    total.wire_bytes += part.wire_bytes;
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("tiers", &self.relay_txs.len())
            .field("leaves", &self.leaf_txs.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::CondId;
    use rcm_sync::Arc;

    /// Two leaves, one threshold condition per variable.
    fn plan2(relay_tiers: usize) -> TreePlan {
        let mut plan = TreePlan::new(2).with_relay_tiers(relay_tiers).with_fanout(1);
        for v in 0..2u32 {
            plan.own(VarId::new(v), v as usize);
            plan.add_condition(
                CondId::new(v),
                Arc::new(Threshold::new(VarId::new(v), Cmp::Gt, 10.0)),
            )
            .expect("condition placed on its owning leaf");
        }
        plan
    }

    fn stream(n: u64) -> Vec<Update> {
        (1..=n)
            .flat_map(|s| [Update::new(VarId::new(0), s, 50.0), Update::new(VarId::new(1), s, 5.0)])
            .collect()
    }

    #[test]
    fn threaded_tree_matches_the_deterministic_eval() {
        let updates = stream(20);
        let report = TreeTopology::new(plan2(1)).stream(updates.iter().copied()).run();

        let mut eval = rcm_tree::TreeEval::build(plan2(1), TreeOptions::default());
        let mut want = Vec::new();
        for u in updates {
            eval.ingest(u, &mut want);
        }
        assert_eq!(report.displayed, want);
        assert_eq!(report.stats.root_alerts, 20);
        assert_eq!(report.stats.updates_routed, 40);
        assert!(report.stats.wire_frames >= 20, "every hop crossed the codec");
    }

    #[test]
    fn replicas_are_transparent_and_leaf_ads_still_display() {
        let opts = TreeOptions { leaf_replicas: 3, ..TreeOptions::default() };
        let report = TreeTopology::new(plan2(0)).options(opts).stream(stream(10)).run();
        assert_eq!(report.displayed.len(), 10, "one displayed alert per firing update");
        assert_eq!(report.leaf_alerts.len(), 6, "three replicas per leaf");
        assert_eq!(report.stats.derived_emitted, 30);
        assert_eq!(report.stats.derived_duplicates, 20);
        // Leaf 0's replicas each displayed the full alert stream locally.
        assert!(report.leaf_alerts[..3].iter().all(|a| a.len() == 10));
    }

    #[test]
    fn killed_relay_recovers_through_reparent_replay() {
        let updates = stream(30);
        let report = TreeTopology::new(plan2(1))
            .options(TreeOptions { replay_window: 256, ..TreeOptions::default() })
            .stream(updates)
            .faults([
                TreeFault::KillRelay { tier: 1, idx: 0, at_update: 20 },
                TreeFault::Reparent { at_update: 40 },
            ])
            .run();
        // Exactly-once despite the outage: window replay through the
        // adoptive parent restores every lost verdict, gates drop the
        // rest, and indices stay gapless.
        assert_eq!(report.displayed.len(), 30);
        let mut indices: Vec<u64> = report
            .displayed
            .iter()
            .filter(|a| a.cond == CondId::new(0))
            .map(|a| a.id.index)
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..30).collect::<Vec<u64>>());
        assert!(report.stats.reparent_events >= 1);
        assert!(report.stats.replayed_frames > 0);
    }

    #[test]
    fn severed_uplink_replays_on_restore() {
        let report = TreeTopology::new(plan2(0))
            .options(TreeOptions { replay_window: 256, ..TreeOptions::default() })
            .stream(stream(30))
            .faults([TreeFault::SeverUplink {
                tier: 0,
                idx: 0,
                replica: 0,
                at_update: 10,
                down_for: 20,
            }])
            .run();
        assert_eq!(report.displayed.len(), 30, "restore replay fills the gap");
        assert!(report.stats.frames_to_dead > 0, "frames were withheld while severed");
        assert!(report.stats.replayed_frames > 0);
    }

    #[test]
    fn run_report_surface_carries_tree_counters() {
        let report = TreeTopology::new(plan2(0)).stream(stream(5)).run().into_run_report();
        assert_eq!(report.displayed.len(), 5);
        let stats = report.tree.expect("tree runs report their counters");
        assert_eq!(stats.root_alerts, 5);
        assert!(report.arrivals.len() == report.displayed.len());
    }
}
