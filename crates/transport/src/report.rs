//! Per-link transport counters, aggregated into a [`TransportReport`]
//! that lands in the runtime's `RunReport` (and from there in the chaos
//! binary's `--json` output).

use serde::{Deserialize, Serialize};

/// Which transport carried the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransportMode {
    /// Channels inside one process (the default runtime).
    #[default]
    InProcess,
    /// Real UDP front links and TCP back links.
    Sockets,
}

/// Sender-side counters for one DM → CE front link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontLinkStats {
    /// Frames handed to the socket (or channel). With batching on, one
    /// frame can carry many updates — compare against `updates_sent`.
    pub frames_sent: u64,
    /// Frames dropped before delivery (loss model in-process; send
    /// errors on a socket).
    pub frames_dropped: u64,
    /// Updates handed to the link (equal to `frames_sent` when
    /// batching is off).
    #[serde(default)]
    pub updates_sent: u64,
    /// Wire bytes handed to the socket, headers included.
    #[serde(default)]
    pub bytes_sent: u64,
}

/// Receiver-side counters for one CE's UDP ingress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngressStats {
    /// Datagrams received from the socket.
    pub frames_received: u64,
    /// Updates admitted by the seqno gate and delivered downstream.
    pub delivered: u64,
    /// Updates discarded as reordered/duplicated (seqno not above the
    /// variable's high-water mark).
    pub dropped_stale: u64,
    /// Datagrams that failed to decode (bad version, checksum, codec).
    pub decode_errors: u64,
    /// Distinct end-of-stream markers seen.
    pub fins: u64,
    /// Wire bytes received from the socket, headers included.
    #[serde(default)]
    pub bytes_received: u64,
}

/// Counters for one CE → AD TCP back link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpLinkStats {
    /// Alerts transmitted (excluding duplicate resends).
    pub sent: u64,
    /// Scripted severances that fired.
    pub severs: u64,
    /// Successful reconnects (the initial connect is not one).
    pub reconnects: u64,
    /// Connect attempts paced by the backoff schedule.
    pub attempts: u64,
    /// Duplicate alerts re-sent from the unacked tail on reconnect.
    pub resent_duplicates: u64,
    /// Peak resend-queue depth while disconnected.
    pub queued_peak: u64,
    /// Alerts lost to resend-queue overflow.
    pub lost_overflow: u64,
    /// Genuine socket errors (connection refused/reset mid-write) —
    /// distinct from scripted severances.
    pub io_errors: u64,
    /// Alert-bearing frames written to the stream, duplicate resends
    /// included. With batching on, one frame can carry many alerts.
    #[serde(default)]
    pub frames_sent: u64,
    /// Wire bytes written to the stream, headers included.
    #[serde(default)]
    pub bytes_sent: u64,
    /// Alerts suppressed by within-frame dedup (safe because ADs are
    /// duplicate-indifferent; counted in `sends_seen`, not `sent`).
    #[serde(default)]
    pub dedup_suppressed: u64,
    /// Alerts shed because the bounded resend queue was full while the
    /// peer was down (each is also counted in `lost_overflow` — this
    /// counter isolates back-pressure sheds from other overflow paths).
    #[serde(default)]
    pub shed: u64,
}

/// Counters for the AD-side TCP listener.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListenerStats {
    /// Connections accepted (reconnects count again).
    pub connections: u64,
    /// Alert frames received across all connections.
    pub alerts: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Distinct end-of-stream markers seen.
    pub fins: u64,
    /// Wire bytes received across all connections, headers included.
    #[serde(default)]
    pub bytes_received: u64,
}

/// Event-loop counters from the evented engine (all zero on the
/// threaded path and in-process runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Times the loop's readiness wait returned (readiness, timer
    /// deadline, or an explicit wake).
    pub wakeups: u64,
    /// Timer-wheel deadlines that fired.
    pub timer_fires: u64,
    /// Readable wakeups that yielded zero bytes/frames — the kernel
    /// said "ready", the read said `WouldBlock`.
    pub spurious_readiness: u64,
}

/// Counters for one [`LossProxy`](crate::LossProxy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Datagrams forwarded to the target.
    pub forwarded: u64,
    /// Datagrams eaten by the loss model.
    pub dropped: u64,
}

/// Everything the transport layer observed over one run.
///
/// In-process runs fill `front_links` and `back_links` from the
/// channel-link counters (so the shape of the report is identical in
/// both modes) and leave `ingress` empty; socket runs fill all four.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportReport {
    /// Which transport carried the run.
    pub mode: TransportMode,
    /// Sender-side front-link counters as `(feed, ce, stats)`, in
    /// builder feed order.
    pub front_links: Vec<(usize, usize, FrontLinkStats)>,
    /// Per-CE UDP ingress counters (socket mode only), indexed by
    /// replica.
    pub ingress: Vec<IngressStats>,
    /// Per-CE back-link counters, indexed by replica.
    pub back_links: Vec<TcpLinkStats>,
    /// AD-side listener counters (zeroed in-process).
    pub ad: ListenerStats,
    /// Event-loop counters (zeroed on the threaded path; absent in
    /// reports that predate the evented engine).
    #[serde(default)]
    pub engine: EngineStats,
}

impl TransportReport {
    /// Total frames dropped on front links (sender side).
    pub fn front_frames_dropped(&self) -> u64 {
        self.front_links.iter().map(|(_, _, s)| s.frames_dropped).sum()
    }

    /// Total successful back-link reconnects.
    pub fn reconnects(&self) -> u64 {
        self.back_links.iter().map(|s| s.reconnects).sum()
    }

    /// Total decode errors seen anywhere (ingress + listener).
    pub fn decode_errors(&self) -> u64 {
        self.ingress.iter().map(|s| s.decode_errors).sum::<u64>() + self.ad.decode_errors
    }

    /// Total frames handed to front links (sender side).
    pub fn front_frames_sent(&self) -> u64 {
        self.front_links.iter().map(|(_, _, s)| s.frames_sent).sum()
    }

    /// Total updates handed to front links (sender side).
    pub fn front_updates_sent(&self) -> u64 {
        self.front_links.iter().map(|(_, _, s)| s.updates_sent).sum()
    }

    /// Total wire bytes put on front links (sender side).
    pub fn front_bytes_sent(&self) -> u64 {
        self.front_links.iter().map(|(_, _, s)| s.bytes_sent).sum()
    }

    /// Mean updates per front-link datagram — the batching win. `0.0`
    /// when no frames were sent (or the run predates the counter).
    pub fn updates_per_datagram(&self) -> f64 {
        let frames = self.front_frames_sent();
        if frames == 0 {
            0.0
        } else {
            self.front_updates_sent() as f64 / frames as f64
        }
    }

    /// Mean wire bytes per front-link datagram, headers included.
    /// `0.0` when no frames were sent.
    pub fn bytes_per_frame(&self) -> f64 {
        let frames = self.front_frames_sent();
        if frames == 0 {
            0.0
        } else {
            self.front_bytes_sent() as f64 / frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_stable_field_names() {
        let report = TransportReport {
            mode: TransportMode::Sockets,
            front_links: vec![(
                0,
                1,
                FrontLinkStats {
                    frames_sent: 10,
                    frames_dropped: 2,
                    updates_sent: 10,
                    bytes_sent: 500,
                },
            )],
            ingress: vec![IngressStats { frames_received: 8, delivered: 8, ..Default::default() }],
            back_links: vec![TcpLinkStats { sent: 3, reconnects: 1, ..Default::default() }],
            ad: ListenerStats {
                connections: 2,
                alerts: 3,
                decode_errors: 0,
                fins: 1,
                bytes_received: 120,
            },
            engine: EngineStats { wakeups: 40, timer_fires: 6, spurious_readiness: 1 },
        };
        let json = serde_json::to_string(&report).expect("report serializes");
        // The chaos CI step greps for these keys; keep them stable.
        for key in [
            "mode",
            "front_links",
            "ingress",
            "back_links",
            "frames_dropped",
            "reconnects",
            "updates_sent",
            "bytes_sent",
            "wakeups",
            "timer_fires",
            "spurious_readiness",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
        let back: TransportReport = serde_json::from_str(&json).expect("report parses back");
        assert_eq!(back, report);
    }

    #[test]
    fn old_reports_without_byte_counters_still_parse() {
        // Snapshots serialized before the batching counters existed
        // must deserialize with the new fields zeroed.
        let old = r#"{"frames_sent":4,"frames_dropped":1}"#;
        let stats: FrontLinkStats = serde_json::from_str(old).expect("old stats parse");
        assert_eq!(stats.frames_sent, 4);
        assert_eq!(stats.updates_sent, 0);
        assert_eq!(stats.bytes_sent, 0);
    }

    #[test]
    fn old_reports_without_engine_counters_still_parse() {
        // Reports serialized before the evented engine existed carry
        // neither the `engine` block nor the `shed` counter.
        let old = r#"{"mode":"Sockets","front_links":[],"ingress":[],"back_links":[{"sent":3,"severs":0,"reconnects":0,"attempts":1,"resent_duplicates":0,"queued_peak":0,"lost_overflow":0,"io_errors":0}],"ad":{"connections":1,"alerts":3,"decode_errors":0,"fins":1}}"#;
        let report: TransportReport = serde_json::from_str(old).expect("old report parses");
        assert_eq!(report.engine, EngineStats::default());
        assert_eq!(report.back_links[0].shed, 0);
    }

    #[test]
    fn rollups_sum_across_links() {
        let report = TransportReport {
            mode: TransportMode::Sockets,
            front_links: vec![
                (
                    0,
                    0,
                    FrontLinkStats {
                        frames_sent: 5,
                        frames_dropped: 1,
                        updates_sent: 20,
                        bytes_sent: 250,
                    },
                ),
                (
                    0,
                    1,
                    FrontLinkStats {
                        frames_sent: 5,
                        frames_dropped: 2,
                        updates_sent: 20,
                        bytes_sent: 250,
                    },
                ),
            ],
            ingress: vec![IngressStats { decode_errors: 1, ..Default::default() }],
            back_links: vec![
                TcpLinkStats { reconnects: 1, ..Default::default() },
                TcpLinkStats { reconnects: 2, ..Default::default() },
            ],
            ad: ListenerStats { decode_errors: 1, ..Default::default() },
            engine: EngineStats::default(),
        };
        assert_eq!(report.front_frames_dropped(), 3);
        assert_eq!(report.reconnects(), 3);
        assert_eq!(report.decode_errors(), 2);
        assert_eq!(report.front_frames_sent(), 10);
        assert_eq!(report.front_updates_sent(), 40);
        assert_eq!(report.front_bytes_sent(), 500);
        assert!((report.updates_per_datagram() - 4.0).abs() < f64::EPSILON);
        assert!((report.bytes_per_frame() - 50.0).abs() < f64::EPSILON);
    }

    #[test]
    fn ratio_rollups_are_zero_without_frames() {
        let report = TransportReport::default();
        assert_eq!(report.updates_per_datagram(), 0.0);
        assert_eq!(report.bytes_per_frame(), 0.0);
    }
}
