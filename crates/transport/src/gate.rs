//! Receiver-side enforcement of the front-link contract.

use std::collections::HashMap;

use rcm_core::{DerivedUpdate, SeqNo, Update, VarId};

/// Per-variable seqno high-water mark: admits an update iff its seqno
/// strictly advances its variable's cursor.
///
/// This is the paper's cheap ordered-delivery mechanism ("tag all
/// messages with a sequence number and let the receiver discard
/// messages that arrive out of order") applied at the update level: a
/// UDP socket may reorder or duplicate datagrams, and the gate turns
/// both into *loss* — which the downstream CE already tolerates — so
/// the evaluator still sees a strictly-ordered `U_i` per variable.
///
/// The runtime's crash-recovery path re-exports this type as its
/// `IngestGate`: surviving a replica restart and surviving datagram
/// reordering are the same invariant (exactly-once, in-order admission
/// per `(variable, seqno)`), so they share one implementation.
#[derive(Debug, Clone, Default)]
pub struct SeqGate {
    cursor: HashMap<VarId, u64>,
}

impl SeqGate {
    /// A gate that admits any first seqno per variable.
    pub fn new() -> Self {
        SeqGate::default()
    }

    /// Admits `update` iff its seqno advances the variable's cursor;
    /// admission advances the cursor.
    pub fn admit(&mut self, update: &Update) -> bool {
        self.admit_at(update.var, update.seqno)
    }

    /// Admits a derived update on a tier link — identical contract,
    /// keyed on the stream's synthetic variable id. Leaves and
    /// interior CEs share one derived-stream `(var, seqno)` space with
    /// raw front links, so one gate instance can front both kinds.
    pub fn admit_derived(&mut self, derived: &DerivedUpdate) -> bool {
        self.admit_at(derived.var, derived.seqno)
    }

    /// The raw admission primitive both entry points share.
    pub fn admit_at(&mut self, var: VarId, seqno: SeqNo) -> bool {
        let cursor = self.cursor.entry(var).or_insert(0);
        if seqno.get() > *cursor {
            *cursor = seqno.get();
            true
        } else {
            false
        }
    }

    /// The highest admitted seqno for `var`, if any.
    pub fn cursor(&self, var: VarId) -> Option<u64> {
        self.cursor.get(&var).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(var: u32, seqno: u64) -> Update {
        Update::new(VarId::new(var), seqno, 0.0)
    }

    #[test]
    fn reorders_and_duplicates_become_loss() {
        let mut gate = SeqGate::new();
        assert!(gate.admit(&u(0, 1)));
        assert!(gate.admit(&u(0, 3)), "gap is fine — that is loss, not reorder");
        assert!(!gate.admit(&u(0, 2)), "overtaken datagram discarded");
        assert!(!gate.admit(&u(0, 3)), "duplicated datagram discarded");
        assert!(gate.admit(&u(0, 4)));
        assert_eq!(gate.cursor(VarId::new(0)), Some(4));
    }

    #[test]
    fn derived_streams_share_the_admission_contract() {
        use rcm_core::{derived_var, DerivedPayload};
        let mut gate = SeqGate::new();
        let var = derived_var(0, 2);
        let d = |seqno| DerivedUpdate {
            var,
            seqno: SeqNo::new(seqno),
            payload: DerivedPayload::Aggregate(0.0),
        };
        assert!(gate.admit_derived(&d(1)));
        assert!(!gate.admit_derived(&d(1)), "replica duplicate discarded");
        assert!(gate.admit_derived(&d(2)));
        assert!(!gate.admit_derived(&d(2)), "re-parent replay discarded");
        assert_eq!(gate.cursor(var), Some(2));
    }

    #[test]
    fn variables_are_independent() {
        let mut gate = SeqGate::new();
        assert!(gate.admit(&u(0, 5)));
        assert!(gate.admit(&u(1, 1)), "var 1 starts its own cursor");
        assert!(!gate.admit(&u(1, 1)));
        assert_eq!(gate.cursor(VarId::new(1)), Some(1));
        assert_eq!(gate.cursor(VarId::new(2)), None);
    }
}
