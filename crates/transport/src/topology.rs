//! Deployment topology: the address plan for one DM / CE×n / AD
//! system, and the eagerly-bound sockets behind it.
//!
//! A [`Topology`] is the *spec* — how many CE replicas, which
//! condition expressions, which addresses. [`Topology::bind`] turns it
//! into a [`BoundTopology`] by actually binding every socket up front:
//! with `127.0.0.1:0` everywhere (the [`Topology::loopback`]
//! constructor) the OS picks ephemeral ports, the bound addresses are
//! captured before any node thread starts, and a test suite can run
//! many systems in parallel without port collisions.
//!
//! The runtime's `SystemBuilder` consumes a [`BoundTopology`] to run
//! the very same pipeline it normally drives over channels across real
//! sockets instead; the `rcm-dm` / `rcm-ce` / `rcm-ad` binaries use the
//! same address conventions with fixed ports.

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::VarRegistry;
use rcm_sync::time::Duration;

use crate::batch::BatchPolicy;
use crate::engine::Engine;
use crate::wire::Codec;

/// An address plan: where each CE listens for updates and where the AD
/// listens for alerts — plus the wire configuration (payload codec and
/// batching policy per link direction) every node derives from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    conditions: Vec<String>,
    ce_update: Vec<SocketAddr>,
    ad_alert: SocketAddr,
    front_codec: Codec,
    back_codec: Codec,
    front_batch: BatchPolicy,
    back_batch: BatchPolicy,
    engine: Engine,
}

impl Topology {
    /// A loopback plan with `replicas` CEs, all ports ephemeral —
    /// the parallel-safe default for tests and single-host runs.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn loopback(replicas: usize) -> Self {
        assert!(replicas > 0, "a topology needs at least one CE replica");
        let any: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
        Topology {
            conditions: Vec::new(),
            ce_update: vec![any; replicas],
            ad_alert: any,
            front_codec: Codec::default(),
            back_codec: Codec::default(),
            front_batch: BatchPolicy::off(),
            back_batch: BatchPolicy::off(),
            engine: Engine::default(),
        }
    }

    /// A plan with explicit addresses (fixed ports for a real
    /// deployment): one UDP address per CE, one TCP address for the AD.
    ///
    /// # Panics
    ///
    /// Panics if `ce_update` is empty.
    pub fn with_addrs(ce_update: Vec<SocketAddr>, ad_alert: SocketAddr) -> Self {
        assert!(!ce_update.is_empty(), "a topology needs at least one CE replica");
        Topology {
            conditions: Vec::new(),
            ce_update,
            ad_alert,
            front_codec: Codec::default(),
            back_codec: Codec::default(),
            front_batch: BatchPolicy::off(),
            back_batch: BatchPolicy::off(),
            engine: Engine::default(),
        }
    }

    /// Adds a condition expression every CE will evaluate.
    #[must_use]
    pub fn with_condition(mut self, expr: impl Into<String>) -> Self {
        self.conditions.push(expr.into());
        self
    }

    /// Selects one payload codec for both link directions (default
    /// binary). Receivers always speak both; this sets what the
    /// senders emit.
    #[must_use]
    pub fn with_codec(self, codec: Codec) -> Self {
        self.with_codecs(codec, codec)
    }

    /// Selects the payload codec per direction — `front` for DM → CE
    /// updates, `back` for CE → AD alerts. Mixing codecs is the
    /// rollout scenario: a binary CE can serve a JSON AD because every
    /// frame names its codec in the version byte.
    #[must_use]
    pub fn with_codecs(mut self, front: Codec, back: Codec) -> Self {
        self.front_codec = front;
        self.back_codec = back;
        self
    }

    /// Enables update batching on the DM → CE front links
    /// (default off).
    #[must_use]
    pub fn with_front_batching(mut self, policy: BatchPolicy) -> Self {
        self.front_batch = policy;
        self
    }

    /// Enables alert batching on the CE → AD back links (default off).
    #[must_use]
    pub fn with_back_batching(mut self, policy: BatchPolicy) -> Self {
        self.back_batch = policy;
        self
    }

    /// Selects which socket engine carries the run (default evented;
    /// threaded is the reference implementation).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Which socket engine carries the run.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The front-link (DM → CE) payload codec.
    pub fn front_codec(&self) -> Codec {
        self.front_codec
    }

    /// The back-link (CE → AD) payload codec.
    pub fn back_codec(&self) -> Codec {
        self.back_codec
    }

    /// The CE replica count.
    pub fn replicas(&self) -> usize {
        self.ce_update.len()
    }

    /// The condition expressions, in insertion order.
    pub fn conditions(&self) -> &[String] {
        &self.conditions
    }

    /// Compiles every condition expression against `registry`.
    ///
    /// # Errors
    ///
    /// Returns the first compile error (`rcm_core::Error::Parse`).
    pub fn compile_conditions(
        &self,
        registry: &mut VarRegistry,
    ) -> Result<Vec<CompiledCondition>, rcm_core::Error> {
        self.conditions.iter().map(|expr| CompiledCondition::compile(expr, registry)).collect()
    }

    /// Binds every socket in the plan, capturing the real addresses.
    ///
    /// # Errors
    ///
    /// Propagates the first bind failure.
    pub fn bind(self) -> io::Result<BoundTopology> {
        let mut ce_sockets = Vec::with_capacity(self.ce_update.len());
        let mut ce_addrs = Vec::with_capacity(self.ce_update.len());
        for addr in &self.ce_update {
            let sock = UdpSocket::bind(addr)?;
            ce_addrs.push(sock.local_addr()?);
            ce_sockets.push(sock);
        }
        let listener = TcpListener::bind(self.ad_alert)?;
        let ad_addr = listener.local_addr()?;
        Ok(BoundTopology {
            conditions: self.conditions,
            ce_sockets,
            listener,
            dm_targets: ce_addrs.clone(),
            ce_addrs,
            ad_addr,
            fin_repeats: 16,
            idle_timeout: Duration::from_secs(5),
            front_codec: self.front_codec,
            back_codec: self.back_codec,
            front_batch: self.front_batch,
            back_batch: self.back_batch,
            engine: self.engine,
        })
    }
}

/// A topology with every socket bound and every address real.
#[derive(Debug)]
pub struct BoundTopology {
    conditions: Vec<String>,
    ce_sockets: Vec<UdpSocket>,
    listener: TcpListener,
    ce_addrs: Vec<SocketAddr>,
    /// Where DMs actually send — normally the CE addresses, but tests
    /// interpose a [`LossProxy`](crate::LossProxy) per replica.
    dm_targets: Vec<SocketAddr>,
    ad_addr: SocketAddr,
    fin_repeats: usize,
    idle_timeout: Duration,
    front_codec: Codec,
    back_codec: Codec,
    front_batch: BatchPolicy,
    back_batch: BatchPolicy,
    engine: Engine,
}

impl BoundTopology {
    /// The bound per-CE update addresses.
    pub fn ce_addrs(&self) -> &[SocketAddr] {
        &self.ce_addrs
    }

    /// The bound AD alert address.
    pub fn ad_addr(&self) -> SocketAddr {
        self.ad_addr
    }

    /// The condition expressions carried over from the spec.
    pub fn conditions(&self) -> &[String] {
        &self.conditions
    }

    /// The CE replica count.
    pub fn replicas(&self) -> usize {
        self.ce_sockets.len()
    }

    /// Reroutes DM traffic through interposed addresses (one per CE
    /// replica, e.g. a loss proxy in front of each).
    ///
    /// # Panics
    ///
    /// Panics unless `targets` has exactly one address per replica.
    #[must_use]
    pub fn route_front_links(mut self, targets: Vec<SocketAddr>) -> Self {
        assert_eq!(targets.len(), self.ce_sockets.len(), "one DM target per CE replica");
        self.dm_targets = targets;
        self
    }

    /// How many times each DM repeats its end-of-stream marker
    /// (default 16 — enough to survive heavy scripted loss).
    #[must_use]
    pub fn fin_repeats(mut self, repeats: usize) -> Self {
        self.fin_repeats = repeats.max(1);
        self
    }

    /// Receiver idle backstop for lost end-of-stream markers
    /// (default 5 s).
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Dismantles the bound topology into the pieces a system runner
    /// needs.
    pub fn into_parts(self) -> TopologyParts {
        TopologyParts {
            ce_sockets: self.ce_sockets,
            listener: self.listener,
            dm_targets: self.dm_targets,
            ad_addr: self.ad_addr,
            fin_repeats: self.fin_repeats,
            idle_timeout: self.idle_timeout,
            front_codec: self.front_codec,
            back_codec: self.back_codec,
            front_batch: self.front_batch,
            back_batch: self.back_batch,
            engine: self.engine,
        }
    }
}

/// The raw pieces of a [`BoundTopology`], handed to whoever wires the
/// node threads (the runtime's `SystemBuilder` in socket mode).
#[derive(Debug)]
pub struct TopologyParts {
    /// One bound UDP socket per CE replica, in replica order.
    pub ce_sockets: Vec<UdpSocket>,
    /// The bound AD alert listener.
    pub listener: TcpListener,
    /// Where each DM sends for each replica (proxy-aware).
    pub dm_targets: Vec<SocketAddr>,
    /// The AD listener's address, for the CE back links.
    pub ad_addr: SocketAddr,
    /// DM end-of-stream repeat count.
    pub fin_repeats: usize,
    /// Receiver idle backstop.
    pub idle_timeout: Duration,
    /// Payload codec the DMs emit on the front links.
    pub front_codec: Codec,
    /// Payload codec the CEs emit on the back links.
    pub back_codec: Codec,
    /// Update-batching policy for the front links.
    pub front_batch: BatchPolicy,
    /// Alert-batching policy for the back links.
    pub back_batch: BatchPolicy,
    /// Which socket engine carries the run.
    pub engine: Engine,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_bind_assigns_real_distinct_ports() {
        let bound = Topology::loopback(3).bind().expect("bind topology");
        assert_eq!(bound.replicas(), 3);
        let mut ports: Vec<u16> = bound.ce_addrs().iter().map(|a| a.port()).collect();
        ports.push(bound.ad_addr().port());
        assert!(ports.iter().all(|&p| p != 0), "ephemeral ports resolved: {ports:?}");
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4, "all sockets distinct");
        // Default routing sends straight to the CE sockets.
        assert_eq!(bound.dm_targets, bound.ce_addrs);
    }

    #[test]
    fn conditions_carry_through_and_compile() {
        let topology = Topology::loopback(2)
            .with_condition("temp[0].value > 3000")
            .with_condition("pressure[0].value > 10");
        let mut registry = VarRegistry::new();
        let compiled = topology.compile_conditions(&mut registry).expect("valid expressions");
        assert_eq!(compiled.len(), 2);
        assert!(registry.lookup("temp").is_some());
        assert!(registry.lookup("pressure").is_some());
        let bound = topology.bind().expect("bind topology");
        assert_eq!(bound.conditions().len(), 2);
    }

    #[test]
    fn bad_condition_reports_a_compile_error() {
        let topology = Topology::loopback(1).with_condition("temp[0].value >");
        assert!(topology.compile_conditions(&mut VarRegistry::new()).is_err());
    }

    #[test]
    fn rerouting_replaces_dm_targets() {
        let proxy_addrs: Vec<SocketAddr> =
            vec!["127.0.0.1:4001".parse().expect("addr"), "127.0.0.1:4002".parse().expect("addr")];
        let bound = Topology::loopback(2)
            .bind()
            .expect("bind topology")
            .route_front_links(proxy_addrs.clone())
            .fin_repeats(4)
            .idle_timeout(Duration::from_secs(1));
        let parts = bound.into_parts();
        assert_eq!(parts.dm_targets, proxy_addrs);
        assert_eq!(parts.fin_repeats, 4);
        assert_eq!(parts.idle_timeout, Duration::from_secs(1));
        assert_eq!(parts.ce_sockets.len(), 2);
    }

    #[test]
    fn wire_config_defaults_and_threads_through_bind() {
        let topology = Topology::loopback(1);
        assert_eq!(topology.front_codec(), Codec::Binary);
        assert_eq!(topology.back_codec(), Codec::Binary);

        let parts = Topology::loopback(1)
            .with_codecs(Codec::Binary, Codec::Json)
            .with_front_batching(BatchPolicy::datagram())
            .with_back_batching(BatchPolicy::stream())
            .bind()
            .expect("bind topology")
            .into_parts();
        assert_eq!(parts.front_codec, Codec::Binary);
        assert_eq!(parts.back_codec, Codec::Json);
        assert_eq!(parts.front_batch, BatchPolicy::datagram());
        assert_eq!(parts.back_batch, BatchPolicy::stream());

        // Defaults: binary payloads, no batching.
        let parts = Topology::loopback(1).bind().expect("bind topology").into_parts();
        assert_eq!(parts.front_codec, Codec::Binary);
        assert_eq!(parts.front_batch, BatchPolicy::off());
        assert_eq!(parts.back_batch, BatchPolicy::off());
        assert_eq!(parts.engine, Engine::Evented, "evented is the default engine");
    }

    #[test]
    fn engine_selector_threads_through_bind() {
        let topology = Topology::loopback(1).with_engine(Engine::Threaded);
        assert_eq!(topology.engine(), Engine::Threaded);
        let parts = topology.bind().expect("bind topology").into_parts();
        assert_eq!(parts.engine, Engine::Threaded);
    }

    #[test]
    #[should_panic(expected = "one DM target per CE replica")]
    fn mismatched_route_length_panics() {
        let bound = Topology::loopback(2).bind().expect("bind topology");
        let _ = bound.route_front_links(vec!["127.0.0.1:4001".parse().expect("addr")]);
    }
}
