//! Frame batching policy: when a link coalesces several messages into
//! one wire frame, and when it stops waiting and flushes.
//!
//! Batching amortizes the per-frame fixed costs (header + checksum,
//! one syscall per datagram or stream write) across many messages —
//! the transport-throughput lever the codec alone cannot pull. A batch
//! flushes on the **first** of three triggers:
//!
//! * **count** — the batch holds [`max_count`](BatchPolicy::max_count)
//!   messages;
//! * **size** — the encoded frame would exceed
//!   [`max_bytes`](BatchPolicy::max_bytes) (kept under the path MTU on
//!   UDP so a batch never fragments — losing one IP fragment loses the
//!   whole datagram, which would *amplify* loss);
//! * **deadline** — the oldest buffered message has waited
//!   [`max_delay`](BatchPolicy::max_delay).
//!
//! The deadline is checked on each subsequent send (the links own no
//! timer thread), so the worst-case added latency is `max_delay` plus
//! the sender's inter-send gap; callers that go quiet flush explicitly
//! or on `finish`. With the default [`BatchPolicy::off`] every message
//! is its own frame and links behave exactly as they did before
//! batching existed.

use rcm_sync::time::{Duration, Instant};

/// When a batching link flushes its buffered messages. See the module
/// docs for the flush triggers; construct with [`BatchPolicy::off`],
/// [`BatchPolicy::datagram`], [`BatchPolicy::stream`], or literal
/// fields for full control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many messages are buffered. `1` (or `0`)
    /// disables batching entirely.
    pub max_count: usize,
    /// Flush before the encoded frame would exceed this many bytes.
    pub max_bytes: usize,
    /// Flush once the oldest buffered message has waited this long.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// No batching: every message is its own frame (the default).
    pub const fn off() -> Self {
        BatchPolicy { max_count: 1, max_bytes: usize::MAX, max_delay: Duration::ZERO }
    }

    /// Defaults tuned for UDP front links: up to 64 updates per
    /// datagram, capped at 1200 bytes to stay safely under common path
    /// MTUs, 1ms deadline so batching never costs a visible delay at
    /// monitoring timescales.
    pub const fn datagram() -> Self {
        BatchPolicy { max_count: 64, max_bytes: 1200, max_delay: Duration::from_millis(1) }
    }

    /// Defaults tuned for TCP back links: same count and deadline as
    /// [`BatchPolicy::datagram`] but a 32 KiB size cap — a stream has
    /// no MTU concern, only write-buffer sanity.
    pub const fn stream() -> Self {
        BatchPolicy { max_count: 64, max_bytes: 32 * 1024, max_delay: Duration::from_millis(1) }
    }

    /// Whether this policy disables batching.
    pub const fn is_off(&self) -> bool {
        self.max_count <= 1
    }

    /// Whether a batch of `count` messages has hit the count trigger.
    pub const fn count_full(&self, count: usize) -> bool {
        count >= self.max_count
    }

    /// Whether a batch of `bytes` encoded bytes has hit the size
    /// trigger.
    pub const fn bytes_full(&self, bytes: usize) -> bool {
        bytes >= self.max_bytes
    }

    /// Whether a batch whose oldest message was buffered at `oldest`
    /// has hit the deadline trigger.
    pub fn expired(&self, oldest: Instant) -> bool {
        oldest.elapsed() >= self.max_delay
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_never_batches() {
        assert_eq!(BatchPolicy::default(), BatchPolicy::off());
        assert!(BatchPolicy::off().is_off());
        assert!(BatchPolicy::off().count_full(1));
    }

    #[test]
    fn presets_batch() {
        for policy in [BatchPolicy::datagram(), BatchPolicy::stream()] {
            assert!(!policy.is_off());
            assert!(!policy.count_full(policy.max_count - 1));
            assert!(policy.count_full(policy.max_count));
            assert!(!policy.bytes_full(policy.max_bytes - 1));
            assert!(policy.bytes_full(policy.max_bytes));
        }
        // Datagram batches must fit one unfragmented packet.
        assert!(BatchPolicy::datagram().max_bytes <= 1400);
    }

    #[test]
    fn deadline_triggers_on_elapsed_time() {
        let now = Instant::now();
        let patient =
            BatchPolicy { max_delay: Duration::from_secs(3600), ..BatchPolicy::datagram() };
        assert!(!patient.expired(now));
        // A zero deadline is always already expired — off() never
        // buffers anyway, but the math should hold.
        let impatient = BatchPolicy { max_delay: Duration::ZERO, ..BatchPolicy::datagram() };
        assert!(impatient.expired(now));
    }
}
