//! The UDP front link: DM → CE updates over a real datagram socket.
//!
//! The paper picks "a UDP-like datagram protocol" for front links
//! because a DM is a simple device multicasting numerous updates, the
//! stream is loss-tolerant, and in-order delivery can be recovered
//! cheaply by "tagging all messages with a sequence number and letting
//! the receiver discard messages that arrive out of order". That is
//! literally what this module does: the sender puts one frame per
//! datagram on the wire, and [`UdpFrontReceiver`] discards anything
//! whose seqno does not advance its variable's high-water mark
//! ([`SeqGate`]) — reordering and duplication become loss, which the
//! CE already tolerates.
//!
//! With a [`BatchPolicy`] the sender coalesces updates into one
//! `UpdateBatch` frame per datagram (flushed on count/size/deadline),
//! amortizing the header and the syscall; the receiver runs a batch's
//! updates through the gate in batch order, so delivery is exactly
//! what individual datagrams arriving in that order would produce.
//! Both halves speak whichever [`Codec`] each frame's version byte
//! names, so mixed-codec fleets interoperate; the sender's codec is
//! configuration.
//!
//! LOCK ORDER: the only mutexes are the per-link `stats` counter
//! blocks, leaves — never held across a socket call.

use std::io;
use std::net::{SocketAddr, UdpSocket};

use rcm_core::Update;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::{Arc, Mutex};

use crate::batch::BatchPolicy;
use crate::gate::SeqGate;
use crate::report::{FrontLinkStats, IngressStats};
use crate::wire::{self, Codec, Message};

/// How often the receiver wakes from `recv` to check its idle
/// deadline.
const RECV_TICK: Duration = Duration::from_millis(20);

/// Binds an ephemeral socket suitable for talking to `peer`: loopback
/// peers get a loopback bind so the traffic never leaves the host.
fn bind_for(peer: SocketAddr) -> io::Result<UdpSocket> {
    let local: SocketAddr = match peer {
        SocketAddr::V4(p) if p.ip().is_loopback() => "127.0.0.1:0".parse().expect("literal addr"),
        SocketAddr::V4(_) => "0.0.0.0:0".parse().expect("literal addr"),
        SocketAddr::V6(_) => "[::]:0".parse().expect("literal addr"),
    };
    UdpSocket::bind(local)
}

/// The sending half of a front link: one CE target, one frame per
/// datagram (one *batch* per datagram under a [`BatchPolicy`]).
pub struct UdpFrontLink {
    sock: UdpSocket,
    node: u32,
    codec: Codec,
    batch: BatchPolicy,
    pending: Vec<Update>,
    pending_bytes: usize,
    pending_since: Instant,
    frame: Vec<u8>,
    stats: Arc<Mutex<FrontLinkStats>>,
}

impl std::fmt::Debug for UdpFrontLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpFrontLink")
            .field("peer", &self.sock.peer_addr().ok())
            .field("node", &self.node)
            .field("codec", &self.codec)
            .field("batch", &self.batch)
            .field("pending", &self.pending.len())
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl UdpFrontLink {
    /// Opens a link to the CE at `peer`; `node` is the sending DM's
    /// index, carried in the end-of-stream marker.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect failures.
    pub fn connect(peer: SocketAddr, node: u32) -> io::Result<Self> {
        let sock = bind_for(peer)?;
        sock.connect(peer)?;
        Ok(UdpFrontLink {
            sock,
            node,
            codec: Codec::default(),
            batch: BatchPolicy::off(),
            pending: Vec::new(),
            pending_bytes: 0,
            pending_since: Instant::now(),
            frame: Vec::new(),
            stats: Arc::new(Mutex::new(FrontLinkStats::default())),
        })
    }

    /// Selects the payload codec this link speaks (default binary).
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Enables frame batching under `policy` (default off: one update
    /// per datagram).
    #[must_use]
    pub fn batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// A handle for reading the link's counters after a DM thread has
    /// taken ownership of the link.
    pub fn stats_handle(&self) -> Arc<Mutex<FrontLinkStats>> {
        Arc::clone(&self.stats)
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Sends one update; returns whether the link accepted it. With
    /// batching off the update goes out as its own datagram; with
    /// batching on it is buffered (always accepted) and flushed with
    /// its batch on count/size/deadline. UDP gives no delivery
    /// guarantee either way — a `true` here can still be lost in
    /// flight, which is the point.
    pub fn send_update(&mut self, update: Update) -> bool {
        if self.batch.is_off() {
            return self.send_batch(&[update]);
        }
        // Size trigger first, *before* buffering: a batch never grows
        // past the policy's datagram budget.
        let add = match wire::frame_len(self.codec, &Message::Update(update)) {
            // Per-update payload cost; slightly over for the batch
            // encoding (which shares one tag), never under for binary.
            Ok(len) => len - wire::HEADER_LEN,
            Err(_) => 64,
        };
        if !self.pending.is_empty() && self.batch.bytes_full(self.pending_bytes + add) {
            self.flush();
        }
        if self.pending.is_empty() {
            self.pending_since = Instant::now();
            self.pending_bytes = wire::HEADER_LEN + 2; // tag + count
        } else if self.batch.expired(self.pending_since) {
            self.flush();
            self.pending_since = Instant::now();
            self.pending_bytes = wire::HEADER_LEN + 2;
        }
        self.pending.push(update);
        self.pending_bytes += add;
        if self.batch.count_full(self.pending.len()) {
            self.flush();
        }
        true
    }

    /// Sends any buffered batch now; returns whether a datagram was
    /// put on the wire (`false` when nothing was pending or the socket
    /// refused it).
    pub fn flush(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let sent = {
            // Move the batch out so `send_batch` can borrow `self`;
            // swapping back afterwards keeps the allocation.
            let pending = std::mem::take(&mut self.pending);
            let ok = self.send_batch(&pending);
            self.pending = pending;
            ok
        };
        self.pending.clear();
        self.pending_bytes = 0;
        sent
    }

    /// Encodes `updates` as one frame (a plain `Update` frame for a
    /// lone update, so unbatched traffic is byte-identical to the
    /// pre-batching wire format) and puts it on the socket.
    fn send_batch(&mut self, updates: &[Update]) -> bool {
        self.frame.clear();
        let result = match updates {
            [single] => wire::encode_into(self.codec, &Message::Update(*single), &mut self.frame),
            many => wire::encode_updates_into(self.codec, many, &mut self.frame),
        };
        if result.is_err() {
            // Unreachable for well-formed updates; counted, not
            // panicked, because this is the hot path.
            let mut stats = self.stats.lock();
            stats.frames_sent += 1;
            stats.updates_sent += updates.len() as u64;
            stats.frames_dropped += 1;
            return false;
        }
        let ok = self.sock.send(&self.frame).is_ok();
        let mut stats = self.stats.lock();
        stats.frames_sent += 1;
        stats.updates_sent += updates.len() as u64;
        stats.bytes_sent += self.frame.len() as u64;
        if !ok {
            stats.frames_dropped += 1;
        }
        ok
    }

    /// Signals end-of-stream by flushing any buffered batch and then
    /// sending the Fin marker `repeats` times (spaced slightly so a
    /// bursty loss episode cannot eat them all). Fin datagrams are not
    /// counted as frames.
    pub fn finish(&mut self, repeats: usize) {
        self.flush();
        self.frame.clear();
        if wire::encode_into(self.codec, &Message::Fin { node: self.node }, &mut self.frame)
            .is_err()
        {
            return;
        }
        for i in 0..repeats.max(1) {
            let _ = self.sock.send(&self.frame);
            if i + 1 < repeats {
                rcm_sync::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// The receiving half: owns the CE's UDP socket, enforces the
/// front-link contract, and hands admitted updates to a caller
/// closure.
pub struct UdpFrontReceiver {
    sock: UdpSocket,
    gate: SeqGate,
    stats: Arc<Mutex<IngressStats>>,
    expected_fins: usize,
    idle_timeout: Duration,
}

impl std::fmt::Debug for UdpFrontReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpFrontReceiver")
            .field("local", &self.sock.local_addr().ok())
            .field("expected_fins", &self.expected_fins)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl UdpFrontReceiver {
    /// Binds a fresh socket (use `127.0.0.1:0` in tests for an
    /// ephemeral parallel-safe port).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: SocketAddr) -> io::Result<Self> {
        Self::from_socket(UdpSocket::bind(addr)?)
    }

    /// Wraps an already-bound socket (the topology binder uses this to
    /// reserve ports before any node starts).
    ///
    /// # Errors
    ///
    /// Propagates the read-timeout configuration failure.
    pub fn from_socket(sock: UdpSocket) -> io::Result<Self> {
        sock.set_read_timeout(Some(RECV_TICK))?;
        Ok(UdpFrontReceiver {
            sock,
            gate: SeqGate::new(),
            stats: Arc::new(Mutex::new(IngressStats::default())),
            expected_fins: 1,
            idle_timeout: Duration::from_secs(5),
        })
    }

    /// How many distinct DM end-of-stream markers terminate the run
    /// (one per feed; default 1).
    #[must_use]
    pub fn expected_fins(mut self, fins: usize) -> Self {
        self.expected_fins = fins;
        self
    }

    /// Backstop: stop anyway after this long with no datagrams at all,
    /// in case every Fin was lost (default 5 s).
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// The bound address (query this after an ephemeral-port bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// A handle for reading the ingress counters while `run` owns the
    /// receiver.
    pub fn stats_handle(&self) -> Arc<Mutex<IngressStats>> {
        Arc::clone(&self.stats)
    }

    /// Receives until every expected Fin arrived (or the idle backstop
    /// fires), delivering each admitted update to `deliver` in arrival
    /// order. Returns the final counters.
    pub fn run(mut self, mut deliver: impl FnMut(Update)) -> IngressStats {
        let mut fins_seen = std::collections::HashSet::new();
        let mut buf = [0u8; 65_535];
        let mut last_activity = Instant::now();
        loop {
            let len = match self.sock.recv(&mut buf) {
                Ok(len) => len,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if last_activity.elapsed() >= self.idle_timeout {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            last_activity = Instant::now();
            {
                let mut stats = self.stats.lock();
                stats.frames_received += 1;
                stats.bytes_received += len as u64;
            }
            match wire::decode_datagram(&buf[..len]) {
                Ok(Message::Update(update)) => {
                    if self.gate.admit(&update) {
                        self.stats.lock().delivered += 1;
                        deliver(update);
                    } else {
                        self.stats.lock().dropped_stale += 1;
                    }
                }
                // A batch is delivered exactly as if its updates had
                // arrived as individual datagrams in batch order — the
                // gate is the same per-variable high-water mark either
                // way.
                Ok(Message::UpdateBatch(updates)) => {
                    for update in updates {
                        if self.gate.admit(&update) {
                            self.stats.lock().delivered += 1;
                            deliver(update);
                        } else {
                            self.stats.lock().dropped_stale += 1;
                        }
                    }
                }
                Ok(Message::Fin { node }) => {
                    if fins_seen.insert(node) {
                        self.stats.lock().fins += 1;
                    }
                    if fins_seen.len() >= self.expected_fins {
                        break;
                    }
                }
                // An alert or hello on a front link is protocol abuse;
                // count it with the undecodable garbage.
                Ok(_) | Err(_) => self.stats.lock().decode_errors += 1,
            }
        }
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::VarId;

    fn u(seqno: u64, value: f64) -> Update {
        Update::new(VarId::new(0), seqno, value)
    }

    fn pair() -> (UdpFrontLink, UdpFrontReceiver) {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .idle_timeout(Duration::from_secs(2));
        let tx =
            UdpFrontLink::connect(rx.local_addr().expect("bound addr"), 0).expect("connect sender");
        (tx, rx)
    }

    #[test]
    fn updates_flow_end_to_end_in_order() {
        let (mut tx, rx) = pair();
        let stats = rx.stats_handle();
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let final_stats = rx.run(|u| got.push(u.seqno.get()));
            (got, final_stats)
        });
        for s in 1..=5 {
            assert!(tx.send_update(u(s, s as f64)));
        }
        tx.finish(4);
        let (got, final_stats) = handle.join().expect("receiver thread");
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert_eq!(final_stats.delivered, 5);
        assert_eq!(final_stats.fins, 1);
        assert_eq!(final_stats.decode_errors, 0);
        assert_eq!(stats.lock().delivered, 5);
        assert_eq!(tx.stats_handle().lock().frames_sent, 5);
    }

    /// Craft raw datagrams out of order on a bare socket: the gate
    /// must turn the reorder and the duplicate into drops.
    #[test]
    fn receiver_discards_reordered_and_duplicated_datagrams() {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .idle_timeout(Duration::from_secs(2));
        let target = rx.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = rx.run(|u| got.push(u.seqno.get()));
            (got, stats)
        });
        let raw = UdpSocket::bind("127.0.0.1:0").expect("bind raw");
        let send = |msg: &Message| {
            let frame = wire::encode(msg).expect("encodes");
            raw.send_to(&frame, target).expect("send_to");
            // Space the datagrams so the kernel cannot reorder them
            // on us — the reorder under test is the crafted one.
            rcm_sync::thread::sleep(Duration::from_millis(2));
        };
        send(&Message::Update(u(1, 1.0)));
        send(&Message::Update(u(3, 3.0)));
        send(&Message::Update(u(2, 2.0))); // overtaken → discarded
        send(&Message::Update(u(3, 3.0))); // duplicate → discarded
        send(&Message::Update(u(4, 4.0)));
        send(&Message::Fin { node: 0 });
        let (got, stats) = handle.join().expect("receiver thread");
        assert_eq!(got, vec![1, 3, 4], "stream stayed in order; reorder became loss");
        assert_eq!(stats.dropped_stale, 2);
        assert_eq!(stats.frames_received, 6);
    }

    #[test]
    fn corrupt_datagrams_count_as_decode_errors_and_never_panic() {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .idle_timeout(Duration::from_secs(2));
        let target = rx.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || rx.run(|_| {}));
        let raw = UdpSocket::bind("127.0.0.1:0").expect("bind raw");
        let mut corrupted = wire::encode(&Message::Update(u(1, 1.0))).expect("encodes");
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        for payload in [&b"\x00garbage"[..], &corrupted[..]] {
            raw.send_to(payload, target).expect("send_to");
            rcm_sync::thread::sleep(Duration::from_millis(2));
        }
        // An alert does not belong on a front link either.
        let misdirected = wire::encode(&Message::Hello { node: 9 }).expect("encodes");
        raw.send_to(&misdirected, target).expect("send_to");
        rcm_sync::thread::sleep(Duration::from_millis(2));
        raw.send_to(&wire::encode(&Message::Fin { node: 0 }).expect("encodes"), target)
            .expect("send_to");
        let stats = handle.join().expect("receiver thread");
        assert_eq!(stats.decode_errors, 3);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn idle_timeout_is_a_backstop_when_every_fin_is_lost() {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .idle_timeout(Duration::from_millis(150));
        let start = Instant::now();
        let stats = rx.run(|_| {});
        assert!(start.elapsed() >= Duration::from_millis(150));
        assert_eq!(stats.fins, 0);
    }

    #[test]
    fn batched_updates_coalesce_and_deliver_in_order() {
        let (tx, rx) = pair();
        let mut tx = tx.batching(BatchPolicy {
            max_count: 5,
            max_bytes: 1200,
            max_delay: Duration::from_secs(10),
        });
        let stats = tx.stats_handle();
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let final_stats = rx.run(|u| got.push(u.seqno.get()));
            (got, final_stats)
        });
        for s in 1..=20 {
            assert!(tx.send_update(u(s, s as f64)));
        }
        tx.finish(4);
        let (got, final_stats) = handle.join().expect("receiver thread");
        assert_eq!(got, (1..=20).collect::<Vec<_>>());
        assert_eq!(final_stats.delivered, 20);
        assert_eq!(final_stats.frames_received, 5, "4 batch datagrams + 1 fin");
        assert!(final_stats.bytes_received > 0);
        let s = *stats.lock();
        assert_eq!(s.frames_sent, 4, "count trigger: 20 updates, 5 per datagram");
        assert_eq!(s.updates_sent, 20);
        assert!(s.bytes_sent > 0);
    }

    #[test]
    fn zero_deadline_flushes_the_previous_batch_on_each_send() {
        let (tx, rx) = pair();
        let mut tx =
            tx.batching(BatchPolicy { max_count: 100, max_bytes: 1200, max_delay: Duration::ZERO });
        let stats = tx.stats_handle();
        let handle = rcm_sync::thread::spawn(move || rx.run(|_| {}));
        for s in 1..=3 {
            assert!(tx.send_update(u(s, 0.0)));
        }
        assert!(tx.flush(), "the last update was still buffered");
        assert!(!tx.flush(), "nothing left to flush");
        tx.finish(2);
        let final_stats = handle.join().expect("receiver thread");
        assert_eq!(final_stats.delivered, 3);
        let s = *stats.lock();
        assert_eq!(s.frames_sent, 3, "each send flushed the previously buffered update");
        assert_eq!(s.updates_sent, 3);
    }

    #[test]
    fn receiver_speaks_both_codecs_frame_by_frame() {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .idle_timeout(Duration::from_secs(2));
        let target = rx.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = rx.run(|u| got.push(u.seqno.get()));
            (got, stats)
        });
        let mut json_tx =
            UdpFrontLink::connect(target, 0).expect("connect json").codec(Codec::Json);
        let mut bin_tx = UdpFrontLink::connect(target, 1).expect("connect binary");
        json_tx.send_update(u(1, 1.0));
        rcm_sync::thread::sleep(Duration::from_millis(2));
        bin_tx.send_update(u(2, 2.0));
        rcm_sync::thread::sleep(Duration::from_millis(2));
        json_tx.send_update(u(3, 3.0));
        rcm_sync::thread::sleep(Duration::from_millis(2));
        json_tx.finish(2);
        let (got, stats) = handle.join().expect("receiver thread");
        assert_eq!(got, vec![1, 2, 3], "frames dispatched per version byte, one gate");
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn two_feeds_terminate_on_two_distinct_fins() {
        let rx = UdpFrontReceiver::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind receiver")
            .expected_fins(2)
            .idle_timeout(Duration::from_secs(2));
        let target = rx.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || rx.run(|_| {}));
        let mut a = UdpFrontLink::connect(target, 0).expect("connect a");
        let mut b = UdpFrontLink::connect(target, 1).expect("connect b");
        a.finish(3); // repeated Fins from one node count once
        rcm_sync::thread::sleep(Duration::from_millis(10));
        b.finish(3);
        let stats = handle.join().expect("receiver thread");
        assert_eq!(stats.fins, 2);
    }
}
