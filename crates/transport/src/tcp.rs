//! The TCP back link: CE → AD alerts over a real connection, lossless
//! across drops.
//!
//! The paper justifies a "TCP-like protocol" for back links: alert
//! traffic is light, the CE buffers alerts anyway, and losing an alert
//! is far worse than losing an update. A TCP connection gives in-order
//! bytes while it lives — the machinery here is for when it dies:
//!
//! * a scripted severance (for chaos tests) or a genuine socket error
//!   marks the link down and closes the stream;
//! * sends while down go to a bounded FIFO queue (overflow drops the
//!   oldest and is *counted*, never silent);
//! * reconnect attempts are paced by a seeded
//!   [`Backoff`](rcm_net::Backoff) schedule;
//! * on reconnect the link re-sends its unacked tail (a real transport
//!   cannot know which in-flight frames survived the cut) and then
//!   drains the queue in order — so the AD sees exact duplicates
//!   around every reconnect, which is precisely the adversarial input
//!   every AD algorithm already discards.
//!
//! This mirrors the in-process `BackLink` in `rcm-runtime` send for
//! send; the two share their counters' meaning so `RunReport.faults`
//! reads the same in both modes.
//!
//! With a [`BatchPolicy`] the link coalesces alerts into one
//! `AlertBatch` frame per stream write (flushed on
//! count/size/deadline), deduplicating identical alerts *within* a
//! frame — safe because every AD filter is duplicate-indifferent, and
//! counted in `dedup_suppressed` so nothing disappears silently. The
//! sever/queue/reconnect state machine is unchanged: a buffered batch
//! spills into the resend queue the moment the link goes down, before
//! anything newer is queued, so FIFO order and the lossless contract
//! survive batching. The payload [`Codec`] is per-link configuration;
//! the listener dispatches on each frame's version byte.
//!
//! LOCK ORDER: the only mutexes are the `stats` counter blocks,
//! leaves — never held across a socket call, a sleep, or a channel
//! send.

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use rcm_core::Alert;
use rcm_net::Backoff;
use rcm_sync::atomic::{AtomicBool, Ordering};
use rcm_sync::chan::Sender;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::{Arc, Mutex};

use crate::batch::BatchPolicy;
use crate::report::{ListenerStats, TcpLinkStats};
use crate::wire::{self, Codec, FrameBuf, Message};

/// How many recently-sent alerts the link keeps for post-reconnect
/// resend (same tail length as the in-process back link).
const UNACKED_TAIL: usize = 8;

/// Read-timeout tick for listener reader threads.
const RECV_TICK: Duration = Duration::from_millis(50);

/// Connect-attempt cap for *reconnects*. A bare `connect` can block
/// for the OS handshake timeout (minutes against a silently dropping
/// peer), which would stall the CE inside `send_alert`; reconnect
/// attempts are therefore bounded and paced by the backoff schedule
/// instead. The initial connect stays unbounded — a back link that
/// never existed is a deployment error worth waiting to discover.
const RECONNECT_CONNECT_CAP: Duration = Duration::from_millis(250);

/// The sending half of a back link: owns the connection to the AD and
/// the full sever/queue/reconnect state machine.
pub struct TcpBackLink {
    peer: SocketAddr,
    node: u32,
    stream: Option<TcpStream>,
    down: bool,
    /// Earliest instant a scripted outage allows reconnection.
    floor: Option<Instant>,
    /// Pending severances, ascending by send index: `(at_send, down_for)`.
    severs: VecDeque<(u64, Duration)>,
    sends_seen: u64,
    next_attempt: Instant,
    backoff: Backoff,
    queue: VecDeque<Alert>,
    queue_cap: usize,
    unacked: VecDeque<Alert>,
    unacked_cap: usize,
    /// How long a blocking flush keeps retrying before declaring the
    /// peer gone and counting the queue as lost.
    blocking_deadline: Duration,
    codec: Codec,
    batch: BatchPolicy,
    /// Alerts buffered for the next batch frame (only while up; spills
    /// into `queue` the moment the link goes down).
    pending: Vec<Alert>,
    pending_bytes: usize,
    pending_since: Instant,
    /// Reused frame-encode scratch buffer.
    frame: Vec<u8>,
    stats: Arc<Mutex<TcpLinkStats>>,
}

impl std::fmt::Debug for TcpBackLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBackLink")
            .field("peer", &self.peer)
            .field("down", &self.down)
            .field("queued", &self.queue.len())
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl TcpBackLink {
    /// Connects to the AD listener at `peer` and sends the Hello
    /// preamble; `node` is the CE replica index carried in Hello/Fin.
    ///
    /// # Errors
    ///
    /// Propagates the initial connect failure — a back link that never
    /// existed is a deployment error, not an outage to ride out.
    pub fn connect(peer: SocketAddr, node: u32, backoff: Backoff) -> io::Result<Self> {
        let mut stream = open_stream(peer, None)?;
        write_msg(&mut stream, Codec::default(), &Message::Hello { node })?;
        Ok(TcpBackLink {
            peer,
            node,
            stream: Some(stream),
            down: false,
            floor: None,
            severs: VecDeque::new(),
            sends_seen: 0,
            next_attempt: Instant::now(),
            backoff,
            queue: VecDeque::new(),
            queue_cap: 1024,
            unacked: VecDeque::new(),
            unacked_cap: UNACKED_TAIL,
            blocking_deadline: Duration::from_secs(10),
            codec: Codec::default(),
            batch: BatchPolicy::off(),
            pending: Vec::new(),
            pending_bytes: 0,
            pending_since: Instant::now(),
            frame: Vec::new(),
            stats: Arc::new(Mutex::new(TcpLinkStats::default())),
        })
    }

    /// Selects the payload codec this link speaks (default binary).
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Enables frame batching under `policy` (default off: one alert
    /// per stream write).
    #[must_use]
    pub fn batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Scripts severances as `(at_send, down_for)` pairs; `at_send`
    /// counts prior send calls, so `(0, d)` severs before the first.
    /// Pairs are sorted internally.
    #[must_use]
    pub fn with_severs(mut self, mut severs: Vec<(u64, Duration)>) -> Self {
        severs.sort_by_key(|&(at, _)| at);
        self.severs = severs.into();
        self
    }

    /// Bounds the resend queue (default 1024).
    #[must_use]
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the unacked-tail length resent on reconnect (default 8;
    /// 0 disables duplicate resends).
    #[must_use]
    pub fn unacked_cap(mut self, cap: usize) -> Self {
        self.unacked_cap = cap;
        self.unacked.truncate(cap);
        self
    }

    /// How long [`finish`](Self::finish) keeps retrying a dead peer
    /// before counting the queue as lost (default 10 s).
    #[must_use]
    pub fn reconnect_deadline(mut self, deadline: Duration) -> Self {
        self.blocking_deadline = deadline;
        self
    }

    /// A handle for reading the link's counters after the CE thread
    /// has taken ownership of the link.
    pub fn stats_handle(&self) -> Arc<Mutex<TcpLinkStats>> {
        Arc::clone(&self.stats)
    }

    /// Whether the link is currently disconnected.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Sends one alert: transmitted immediately when connected, queued
    /// when down (a non-blocking reconnect attempt is made first if
    /// the backoff schedule allows one). With batching on, a connected
    /// link buffers the alert and flushes the batch on
    /// count/size/deadline — identical alerts already in the buffer
    /// are suppressed (`dedup_suppressed`), which is safe because ADs
    /// are duplicate-indifferent.
    pub fn send_alert(&mut self, alert: Alert) {
        if let Some(&(at, down_for)) = self.severs.front() {
            if self.sends_seen >= at {
                self.severs.pop_front();
                self.stats.lock().severs += 1;
                // A severance landing while already down extends the
                // outage rather than stacking a second one.
                self.mark_down(Some(Instant::now() + down_for));
            }
        }
        self.sends_seen += 1;
        if self.batch.is_off() {
            if self.down {
                self.try_reconnect(false);
            }
            if self.down {
                self.enqueue(alert);
            } else if !self.write_alert(alert.clone()) {
                self.enqueue(alert);
            }
            return;
        }
        if self.down {
            self.try_reconnect(false);
        }
        if self.down {
            // FIFO across the outage: the buffered batch (older) goes
            // to the queue before this alert does.
            self.spill_pending();
            self.enqueue(alert);
            return;
        }
        if self.pending.iter().any(|a| *a == alert) {
            self.stats.lock().dedup_suppressed += 1;
            return;
        }
        let add = match wire::frame_len(self.codec, &Message::Alert(alert.clone())) {
            // Per-alert payload cost; slightly over for the batch
            // encoding (which shares one tag), never under for binary.
            Ok(len) => len - wire::HEADER_LEN,
            Err(_) => 256,
        };
        if !self.pending.is_empty()
            && (self.batch.expired(self.pending_since)
                || self.batch.bytes_full(self.pending_bytes + add))
        {
            self.flush_pending();
        }
        if self.down {
            // The flush hit a write error and spilled; keep FIFO.
            self.enqueue(alert);
            return;
        }
        if self.pending.is_empty() {
            self.pending_since = Instant::now();
            self.pending_bytes = wire::HEADER_LEN + 2; // tag + count
        }
        self.pending.push(alert);
        self.pending_bytes += add;
        if self.batch.count_full(self.pending.len()) {
            self.flush_pending();
        }
    }

    /// Writes the buffered batch as one frame now. When the link is
    /// down (or the write fails and marks it down) the batch spills
    /// into the resend queue instead — never lost, never reordered.
    pub fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if self.down {
            self.spill_pending();
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        if self.write_batch(&pending) {
            for alert in pending {
                self.push_unacked(alert);
            }
        } else {
            for alert in pending {
                self.enqueue(alert);
            }
        }
    }

    /// Moves buffered-but-unwritten alerts into the resend queue,
    /// oldest first. FIFO holds because alerts are only buffered while
    /// the link is up — at which point the queue is empty — so the
    /// spilled batch always predates anything enqueued after it.
    fn spill_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        for alert in pending {
            self.enqueue(alert);
        }
    }

    /// Blocks until the link is up and everything queued has been
    /// transmitted, then sends the Fin marker and closes. Call at
    /// end-of-stream: this is what turns "bounded queue while down"
    /// into the paper's lossless contract. If the peer stays
    /// unreachable past the deadline, the remaining queue is counted
    /// into `lost_overflow` — loss is never silent.
    pub fn finish(&mut self) {
        // A buffered batch goes first: written if up, spilled to the
        // queue (and flushed by the blocking reconnect) if not.
        self.flush_pending();
        if self.down {
            self.try_reconnect(true);
        }
        if self.down {
            let dropped = self.queue.len() as u64;
            self.queue.clear();
            self.stats.lock().lost_overflow += dropped;
            return;
        }
        debug_assert!(self.queue.is_empty(), "reconnect flushes the queue");
        let codec = self.codec;
        if let Some(stream) = self.stream.as_mut() {
            let _ = write_msg(stream, codec, &Message::Fin { node: self.node });
        }
        self.stream = None;
    }

    /// Deliberately drops everything queued and closes after a
    /// best-effort Fin — the path for a replica that exhausted its
    /// restart budget, whose queued alerts are sanctioned loss (same
    /// as the in-process abandoned path) but whose listener still
    /// needs the end-of-stream marker to shut down.
    pub fn abandon(&mut self) {
        self.pending.clear();
        self.pending_bytes = 0;
        self.queue.clear();
        self.unacked.clear();
        if self.down {
            self.try_reconnect(true);
        }
        let codec = self.codec;
        if let Some(stream) = self.stream.as_mut() {
            let _ = write_msg(stream, codec, &Message::Fin { node: self.node });
        }
        self.stream = None;
    }

    fn mark_down(&mut self, floor: Option<Instant>) {
        self.stream = None;
        self.down = true;
        self.floor = match (self.floor, floor) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.next_attempt = Instant::now();
        self.backoff.reset();
    }

    /// Attempts reconnection, pacing attempts by the backoff schedule.
    /// Blocking mode sleeps between attempts until the link is up or
    /// the deadline passes; non-blocking mode makes at most one
    /// attempt and returns.
    fn try_reconnect(&mut self, blocking: bool) {
        let deadline = Instant::now() + self.blocking_deadline;
        loop {
            if !self.down {
                return;
            }
            let now = Instant::now();
            if blocking && now >= deadline {
                return;
            }
            if now < self.next_attempt {
                if !blocking {
                    return;
                }
                rcm_sync::thread::sleep(self.next_attempt - now);
            }
            self.stats.lock().attempts += 1;
            if self.floor.is_none_or(|f| Instant::now() >= f) {
                if let Ok(mut stream) = open_stream(self.peer, Some(RECONNECT_CONNECT_CAP)) {
                    if write_msg(&mut stream, self.codec, &Message::Hello { node: self.node })
                        .is_ok()
                    {
                        self.stream = Some(stream);
                        self.down = false;
                        self.floor = None;
                        self.backoff.reset();
                        self.stats.lock().reconnects += 1;
                        self.resend_unacked();
                        self.flush_queue();
                        // resend/flush can mark the link down again on
                        // a fresh write error; the loop re-checks.
                        continue;
                    }
                }
            }
            self.next_attempt = Instant::now() + self.backoff.next_delay();
            if !blocking {
                return;
            }
        }
    }

    /// Re-sends the unacked tail: pure duplicates, exactly the
    /// adversarial input the AD filters must tolerate. Each duplicate
    /// travels as its own frame and is counted in
    /// `frames_sent`/`bytes_sent` but not `sent`.
    fn resend_unacked(&mut self) {
        let tail: Vec<Alert> = self.unacked.iter().cloned().collect();
        for alert in tail {
            if self.stream.is_none() {
                return;
            }
            self.frame.clear();
            if wire::encode_into(self.codec, &Message::Alert(alert), &mut self.frame).is_err() {
                return;
            }
            let Some(stream) = self.stream.as_mut() else { return };
            if stream.write_all(&self.frame).is_err() {
                self.stats.lock().io_errors += 1;
                self.mark_down(None);
                return;
            }
            let mut stats = self.stats.lock();
            stats.resent_duplicates += 1;
            stats.frames_sent += 1;
            stats.bytes_sent += self.frame.len() as u64;
        }
    }

    /// Drains the down-period queue in FIFO order; a write error puts
    /// the failing alert back at the *front* so order is preserved.
    fn flush_queue(&mut self) {
        while let Some(alert) = self.queue.pop_front() {
            if !self.write_alert(alert.clone()) {
                self.queue.push_front(alert);
                return;
            }
        }
    }

    /// Transmits one alert on the live stream; on success it joins the
    /// unacked tail. On a genuine socket error the link marks itself
    /// down (no scripted floor) and reports `false` — the caller
    /// decides where the alert goes.
    fn write_alert(&mut self, alert: Alert) -> bool {
        if !self.write_batch(std::slice::from_ref(&alert)) {
            return false;
        }
        self.push_unacked(alert);
        true
    }

    /// Encodes `alerts` as one frame in the link's codec (a plain
    /// `Alert` frame for a lone alert, so unbatched traffic keeps the
    /// pre-batching wire format; an `AlertBatch` otherwise) and writes
    /// it to the live stream. Counts `sent`/`frames_sent`/`bytes_sent`
    /// on success; marks the link down on a socket error. The caller
    /// owns the unacked-tail bookkeeping.
    fn write_batch(&mut self, alerts: &[Alert]) -> bool {
        if self.stream.is_none() {
            return false;
        }
        self.frame.clear();
        let result = match alerts {
            [single] => {
                wire::encode_into(self.codec, &Message::Alert(single.clone()), &mut self.frame)
            }
            many => wire::encode_alerts_into(self.codec, many, &mut self.frame),
        };
        if result.is_err() {
            // Unreachable for well-formed alerts; counted, not
            // panicked.
            self.stats.lock().io_errors += 1;
            return false;
        }
        let Some(stream) = self.stream.as_mut() else { return false };
        if stream.write_all(&self.frame).is_err() {
            self.stats.lock().io_errors += 1;
            self.mark_down(None);
            return false;
        }
        let mut stats = self.stats.lock();
        stats.sent += alerts.len() as u64;
        stats.frames_sent += 1;
        stats.bytes_sent += self.frame.len() as u64;
        true
    }

    fn push_unacked(&mut self, alert: Alert) {
        if self.unacked_cap > 0 {
            if self.unacked.len() == self.unacked_cap {
                self.unacked.pop_front();
            }
            self.unacked.push_back(alert);
        }
    }

    fn enqueue(&mut self, alert: Alert) {
        let mut stats = self.stats.lock();
        if self.queue.len() >= self.queue_cap {
            // Strictly non-blocking back-pressure: shed the oldest and
            // count it, never stall the caller on a down peer.
            self.queue.pop_front();
            stats.lost_overflow += 1;
            stats.shed += 1;
        }
        self.queue.push_back(alert);
        stats.queued_peak = stats.queued_peak.max(self.queue.len() as u64);
    }
}

fn open_stream(peer: SocketAddr, cap: Option<Duration>) -> io::Result<TcpStream> {
    let stream = match cap {
        Some(cap) => TcpStream::connect_timeout(&peer, cap)?,
        None => TcpStream::connect(peer)?,
    };
    // Alerts are small and latency-sensitive; never batch them behind
    // Nagle.
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn write_msg(stream: &mut TcpStream, codec: Codec, msg: &Message) -> io::Result<()> {
    let frame = wire::encode_with(codec, msg).map_err(io::Error::other)?;
    stream.write_all(&frame)
}

/// What a reader thread saw on its connection, relayed to the
/// listener's run loop so the caller's `deliver` closure never needs
/// to be `Send`.
enum Event {
    Alert(Alert),
    Fin(u32),
    DecodeError,
}

/// The AD side: accepts back-link connections (including reconnects)
/// and hands every alert frame to a caller closure.
pub struct TcpAlertListener {
    listener: TcpListener,
    stats: Arc<Mutex<ListenerStats>>,
    expected_fins: usize,
    idle_timeout: Duration,
}

impl std::fmt::Debug for TcpAlertListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAlertListener")
            .field("local", &self.listener.local_addr().ok())
            .field("expected_fins", &self.expected_fins)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl TcpAlertListener {
    /// Binds a fresh listener (use `127.0.0.1:0` in tests for an
    /// ephemeral parallel-safe port).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: SocketAddr) -> io::Result<Self> {
        Self::from_listener(TcpListener::bind(addr)?)
    }

    /// Wraps an already-bound listener (the topology binder uses this
    /// to reserve the port before any node starts).
    ///
    /// # Errors
    ///
    /// Propagates the non-blocking configuration failure.
    pub fn from_listener(listener: TcpListener) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(TcpAlertListener {
            listener,
            stats: Arc::new(Mutex::new(ListenerStats::default())),
            expected_fins: 1,
            idle_timeout: Duration::from_secs(10),
        })
    }

    /// How many distinct CE end-of-stream markers terminate the run
    /// (one per replica; default 1).
    #[must_use]
    pub fn expected_fins(mut self, fins: usize) -> Self {
        self.expected_fins = fins;
        self
    }

    /// Backstop: stop anyway after this long with no connections or
    /// frames at all, in case a CE died without its Fin (default 10 s).
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// The bound address (query this after an ephemeral-port bind).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for reading the listener's counters while `run` owns
    /// the listener.
    pub fn stats_handle(&self) -> Arc<Mutex<ListenerStats>> {
        Arc::clone(&self.stats)
    }

    /// Accepts and reads until every expected Fin arrived (or the idle
    /// backstop fires), delivering each alert to `deliver` in arrival
    /// order per connection. Returns the final counters.
    pub fn run(self, mut deliver: impl FnMut(Alert)) -> ListenerStats {
        let (tx, rx) = rcm_sync::chan::unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers: Vec<rcm_sync::thread::JoinHandle<()>> = Vec::new();
        let mut fins: HashSet<u32> = HashSet::new();
        let mut last_activity = Instant::now();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    last_activity = Instant::now();
                    self.stats.lock().connections += 1;
                    if stream.set_nonblocking(false).is_ok()
                        && stream.set_read_timeout(Some(RECV_TICK)).is_ok()
                    {
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        let stats = Arc::clone(&self.stats);
                        readers.push(rcm_sync::thread::spawn(move || {
                            reader_loop(stream, &tx, &stop, &stats);
                        }));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => break,
            }
            let mut idle = true;
            while let Ok(event) = rx.try_recv() {
                idle = false;
                self.handle(event, &mut fins, &mut deliver);
            }
            if !idle {
                last_activity = Instant::now();
            }
            if fins.len() >= self.expected_fins {
                break;
            }
            if last_activity.elapsed() >= self.idle_timeout {
                break;
            }
            if idle {
                rcm_sync::thread::sleep(Duration::from_millis(1));
            }
        }
        stop.store(true, Ordering::SeqCst);
        drop(tx);
        for handle in readers {
            let _ = handle.join();
        }
        // Alerts that raced in while we were deciding to stop still
        // count — nothing received is ever dropped on the floor.
        while let Ok(event) = rx.try_recv() {
            self.handle(event, &mut fins, &mut deliver);
        }
        *self.stats.lock()
    }

    fn handle(&self, event: Event, fins: &mut HashSet<u32>, deliver: &mut impl FnMut(Alert)) {
        match event {
            Event::Alert(alert) => {
                self.stats.lock().alerts += 1;
                deliver(alert);
            }
            Event::Fin(node) => {
                if fins.insert(node) {
                    self.stats.lock().fins += 1;
                }
            }
            Event::DecodeError => self.stats.lock().decode_errors += 1,
        }
    }
}

/// Per-connection reader: decodes frames off the stream and relays
/// them as events (frames of either codec, dispatched per version
/// byte). Exits on EOF, a fatal decode error (a desynchronized stream
/// cannot be trusted again), a socket error, or the listener's stop
/// flag. Only touches the shared stats for the byte counter — a leaf
/// lock, per the file's LOCK ORDER note.
fn reader_loop(
    mut stream: TcpStream,
    tx: &Sender<Event>,
    stop: &AtomicBool,
    stats: &Mutex<ListenerStats>,
) {
    let mut frames = FrameBuf::new();
    let mut buf = [0u8; 8192];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                stats.lock().bytes_received += n as u64;
                frames.push(&buf[..n]);
                loop {
                    match wire::decode(&mut frames) {
                        Ok(Some(Message::Alert(alert))) => {
                            if tx.send(Event::Alert(alert)).is_err() {
                                return;
                            }
                        }
                        Ok(Some(Message::AlertBatch(alerts))) => {
                            for alert in alerts {
                                if tx.send(Event::Alert(alert)).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(Some(Message::Fin { node })) => {
                            let _ = tx.send(Event::Fin(node));
                        }
                        Ok(Some(Message::Hello { .. })) => {}
                        Ok(Some(
                            Message::Update(_) | Message::UpdateBatch(_) | Message::Derived(_),
                        )) => {
                            // An update (raw or derived) on a back
                            // link is protocol abuse; count it, keep
                            // the stream.
                            let _ = tx.send(Event::DecodeError);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let _ = tx.send(Event::DecodeError);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};

    fn alert(index: u64) -> Alert {
        Alert::new(
            CondId::new(0),
            HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(index)]),
            vec![Update::new(VarId::new(0), index, index as f64)],
            AlertId { ce: CeId::new(0), index },
        )
    }

    fn backoff() -> Backoff {
        Backoff::new(Duration::from_micros(200), Duration::from_millis(5), 11)
    }

    fn seqnos(alerts: &[Alert]) -> Vec<u64> {
        alerts.iter().map(|a| a.fingerprint.iter().next().expect("one var").1[0].get()).collect()
    }

    /// First-occurrence dedup, the way AD-1 treats repeated offers.
    fn dedup(seq: Vec<u64>) -> Vec<u64> {
        let mut seen = HashSet::new();
        seq.into_iter().filter(|s| seen.insert(*s)).collect()
    }

    #[test]
    fn alerts_flow_end_to_end_in_order() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(3));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link = TcpBackLink::connect(addr, 0, backoff()).expect("connect");
        for i in 1..=5 {
            link.send_alert(alert(i));
        }
        link.finish();
        let (got, stats) = handle.join().expect("listener thread");
        assert_eq!(seqnos(&got), vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.alerts, 5);
        assert_eq!(stats.fins, 1);
        assert_eq!(stats.decode_errors, 0);
        let link_stats = *link.stats_handle().lock();
        assert_eq!(link_stats.sent, 5);
        assert_eq!(link_stats.severs, 0);
        assert_eq!(link_stats.io_errors, 0);
    }

    #[test]
    fn scripted_sever_reconnects_without_losing_an_alert() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(5));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link = TcpBackLink::connect(addr, 0, backoff())
            .expect("connect")
            .with_severs(vec![(2, Duration::from_millis(40))]);
        for i in 1..=6 {
            link.send_alert(alert(i));
        }
        link.finish();
        let (got, stats) = handle.join().expect("listener thread");
        // The reconnect re-sends the unacked tail, so duplicates are
        // allowed — but after first-occurrence dedup (what AD-1 does)
        // the sequence must be complete and in order.
        assert_eq!(dedup(seqnos(&got)), vec![1, 2, 3, 4, 5, 6], "lossless across the sever");
        assert!(stats.connections >= 2, "sever forced a reconnect, got {stats:?}");
        let link_stats = *link.stats_handle().lock();
        assert_eq!(link_stats.severs, 1);
        assert!(link_stats.reconnects >= 1);
        assert!(link_stats.attempts >= 1);
        assert_eq!(link_stats.lost_overflow, 0);
    }

    #[test]
    fn undersized_queue_loses_oldest_and_counts() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(5));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link = TcpBackLink::connect(addr, 0, backoff())
            .expect("connect")
            .with_severs(vec![(0, Duration::from_millis(60))])
            .unacked_cap(0)
            .queue_cap(2);
        for i in 1..=5 {
            link.send_alert(alert(i));
        }
        link.finish();
        let (got, _) = handle.join().expect("listener thread");
        assert_eq!(seqnos(&got), vec![4, 5], "kept the newest two");
        let link_stats = *link.stats_handle().lock();
        assert_eq!(link_stats.lost_overflow, 3);
        assert_eq!(link_stats.shed, 3, "every overflow was a non-blocking shed");
    }

    #[test]
    fn batched_alerts_coalesce_and_dedup_within_the_frame() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(3));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link =
            TcpBackLink::connect(addr, 0, backoff()).expect("connect").batching(BatchPolicy {
                max_count: 3,
                max_bytes: 32 * 1024,
                max_delay: Duration::from_secs(10),
            });
        link.send_alert(alert(1));
        link.send_alert(alert(1)); // identical, same frame → suppressed
        link.send_alert(alert(2));
        link.send_alert(alert(3)); // count trigger: flushes [1, 2, 3]
        link.send_alert(alert(4));
        link.send_alert(alert(5));
        link.finish(); // flushes [4, 5]
        let (got, stats) = handle.join().expect("listener thread");
        assert_eq!(seqnos(&got), vec![1, 2, 3, 4, 5], "in order, duplicate suppressed");
        assert_eq!(stats.alerts, 5);
        assert_eq!(stats.fins, 1);
        assert!(stats.bytes_received > 0);
        let link_stats = *link.stats_handle().lock();
        assert_eq!(link_stats.sent, 5);
        assert_eq!(link_stats.dedup_suppressed, 1);
        assert_eq!(link_stats.frames_sent, 2, "two batch frames, Fin not counted");
        assert!(link_stats.bytes_sent > 0);
        assert_eq!(link_stats.lost_overflow, 0);
    }

    #[test]
    fn batched_link_survives_a_sever_without_loss() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(5));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link = TcpBackLink::connect(addr, 0, backoff())
            .expect("connect")
            .with_severs(vec![(2, Duration::from_millis(40))])
            .batching(BatchPolicy {
                max_count: 2,
                max_bytes: 32 * 1024,
                max_delay: Duration::from_secs(10),
            });
        for i in 1..=6 {
            link.send_alert(alert(i));
        }
        link.finish();
        let (got, _) = handle.join().expect("listener thread");
        assert_eq!(dedup(seqnos(&got)), vec![1, 2, 3, 4, 5, 6], "lossless across the sever");
        let link_stats = *link.stats_handle().lock();
        assert_eq!(link_stats.severs, 1);
        assert!(link_stats.reconnects >= 1);
        assert_eq!(link_stats.lost_overflow, 0);
    }

    #[test]
    fn json_codec_link_interops_with_the_listener() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(3));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link =
            TcpBackLink::connect(addr, 0, backoff()).expect("connect").codec(Codec::Json);
        for i in 1..=3 {
            link.send_alert(alert(i));
        }
        link.finish();
        let (got, stats) = handle.join().expect("listener thread");
        assert_eq!(seqnos(&got), vec![1, 2, 3]);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.fins, 1);
    }

    #[test]
    fn connect_to_dead_port_is_a_deployment_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let sock = TcpListener::bind("127.0.0.1:0").expect("bind probe");
            sock.local_addr().expect("probe addr")
        };
        assert!(TcpBackLink::connect(addr, 0, backoff()).is_err());
    }

    #[test]
    fn two_replicas_fan_into_one_listener() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .expected_fins(2)
            .idle_timeout(Duration::from_secs(3));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut a = TcpBackLink::connect(addr, 0, backoff()).expect("connect a");
        let mut b = TcpBackLink::connect(addr, 1, backoff()).expect("connect b");
        for i in 1..=3 {
            a.send_alert(alert(i));
            b.send_alert(alert(i));
        }
        a.finish();
        b.finish();
        let (got, stats) = handle.join().expect("listener thread");
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.fins, 2);
        assert_eq!(got.len(), 6, "both replicas' offers arrive");
        // Interleaving across connections is arbitrary, but dedup
        // still yields each offer once.
        assert_eq!(dedup(seqnos(&got)), vec![1, 2, 3]);
    }

    #[test]
    fn corrupted_stream_counts_a_decode_error() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_millis(400));
        let addr = listener.local_addr().expect("bound addr");
        let stats_handle = listener.stats_handle();
        let handle = rcm_sync::thread::spawn(move || listener.run(|_| {}));
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(b"\xffnot a frame at all").expect("write garbage");
        drop(raw);
        let stats = handle.join().expect("listener thread");
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.alerts, 0);
        assert_eq!(stats_handle.lock().decode_errors, 1);
    }

    #[test]
    fn abandon_closes_with_a_fin_but_drops_the_queue() {
        let listener = TcpAlertListener::bind("127.0.0.1:0".parse().expect("literal addr"))
            .expect("bind listener")
            .idle_timeout(Duration::from_secs(3));
        let addr = listener.local_addr().expect("bound addr");
        let handle = rcm_sync::thread::spawn(move || {
            let mut got = Vec::new();
            let stats = listener.run(|a| got.push(a));
            (got, stats)
        });
        let mut link = TcpBackLink::connect(addr, 0, backoff())
            .expect("connect")
            .with_severs(vec![(1, Duration::from_millis(30))]);
        link.send_alert(alert(1));
        link.send_alert(alert(2)); // severed: queued
        link.abandon();
        let (got, stats) = handle.join().expect("listener thread");
        assert_eq!(dedup(seqnos(&got)), vec![1], "queued alert was sanctioned loss");
        assert_eq!(stats.fins, 1, "the listener still got its end-of-stream marker");
    }
}
