//! A loss-injecting UDP forwarder: the network impairment knob for
//! loopback integration tests.
//!
//! Real loopback links essentially never drop datagrams, so the
//! scripted and stochastic loss the simulator applies in-process has
//! to be injected *somewhere* on a socket path. The proxy is that
//! somewhere: DMs send to the proxy's address instead of the CE's, and
//! the proxy replays an [`rcm_net::LossModel`] — [`Scripted`] for
//! exact drop positions, [`Bernoulli`]/[`GilbertElliott`] for
//! stochastic runs — onto the real datagrams before forwarding the
//! survivors. A single forwarding thread keeps arrival order intact,
//! so a [`Scripted`] model makes the whole socket pipeline
//! deterministic.
//!
//! [`Scripted`]: rcm_net::Scripted
//! [`Bernoulli`]: rcm_net::Bernoulli
//! [`GilbertElliott`]: rcm_net::GilbertElliott
//!
//! LOCK ORDER: the only mutex is the `stats` counter block, a leaf —
//! never held across a socket call.

use std::io;
use std::net::{SocketAddr, UdpSocket};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rcm_net::LossModel;
use rcm_sync::atomic::{AtomicBool, Ordering};
use rcm_sync::time::Duration;
use rcm_sync::{Arc, Mutex};

use crate::report::ProxyStats;

/// Forward-loop wake interval (stop-flag check cadence).
const TICK: Duration = Duration::from_millis(10);

/// A one-hop UDP forwarder applying a loss model to every datagram.
pub struct LossProxy {
    sock: UdpSocket,
    target: SocketAddr,
    loss: Box<dyn LossModel>,
    rng: ChaCha8Rng,
    stats: Arc<Mutex<ProxyStats>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for LossProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LossProxy")
            .field("local", &self.sock.local_addr().ok())
            .field("target", &self.target)
            .field("loss", &self.loss)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl LossProxy {
    /// Binds an ephemeral loopback socket forwarding to `target`
    /// through `loss`; `seed` drives any stochastic model (ignored by
    /// scripted ones).
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configure failures.
    pub fn bind(target: SocketAddr, loss: Box<dyn LossModel>, seed: u64) -> io::Result<Self> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.set_read_timeout(Some(TICK))?;
        Ok(LossProxy {
            sock,
            target,
            loss,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stats: Arc::new(Mutex::new(ProxyStats::default())),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The proxy's receiving address — point the DM here instead of at
    /// the CE.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Starts the forwarding thread and returns its control handle.
    ///
    /// # Errors
    ///
    /// Propagates the address query failure.
    pub fn spawn(mut self) -> io::Result<ProxyHandle> {
        let addr = self.local_addr()?;
        let stats = Arc::clone(&self.stats);
        let stop = Arc::clone(&self.stop);
        let handle = rcm_sync::thread::spawn(move || self.forward_loop());
        Ok(ProxyHandle { addr, stats, stop, handle: Some(handle) })
    }

    /// The forwarding loop: one thread, so arrival order is preserved
    /// and a scripted model's drop positions line up with send order.
    fn forward_loop(&mut self) {
        let mut buf = [0u8; 65_535];
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let len = match self.sock.recv(&mut buf) {
                Ok(len) => len,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            };
            if self.loss.drops(&mut self.rng) {
                self.stats.lock().dropped += 1;
            } else {
                let _ = self.sock.send_to(&buf[..len], self.target);
                self.stats.lock().forwarded += 1;
            }
        }
    }
}

/// Control handle for a running [`LossProxy`].
#[derive(Debug)]
pub struct ProxyHandle {
    addr: SocketAddr,
    stats: Arc<Mutex<ProxyStats>>,
    stop: Arc<AtomicBool>,
    handle: Option<rcm_sync::thread::JoinHandle<()>>,
}

impl ProxyHandle {
    /// The address the proxy listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live view of the proxy's counters.
    pub fn stats(&self) -> ProxyStats {
        *self.stats.lock()
    }

    /// Stops the forwarding thread and returns the final counters.
    pub fn stop(mut self) -> ProxyStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        *self.stats.lock()
    }
}

impl Drop for ProxyHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_net::{Lossless, Scripted};

    fn recv_all(sock: &UdpSocket, idle: Duration) -> Vec<Vec<u8>> {
        sock.set_read_timeout(Some(idle)).expect("set timeout");
        let mut buf = [0u8; 2048];
        let mut got = Vec::new();
        while let Ok(len) = sock.recv(&mut buf) {
            got.push(buf[..len].to_vec());
        }
        got
    }

    #[test]
    fn lossless_proxy_forwards_everything_in_order() {
        let sink = UdpSocket::bind("127.0.0.1:0").expect("bind sink");
        let proxy = LossProxy::bind(sink.local_addr().expect("sink addr"), Box::new(Lossless), 0)
            .expect("bind proxy")
            .spawn()
            .expect("spawn proxy");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        for i in 0..10u8 {
            tx.send_to(&[i], proxy.addr()).expect("send");
            // Pace the datagrams so kernel scheduling cannot reorder
            // them before the proxy's single thread sees them.
            rcm_sync::thread::sleep(Duration::from_millis(1));
        }
        let got = recv_all(&sink, Duration::from_millis(200));
        assert_eq!(got, (0..10u8).map(|i| vec![i]).collect::<Vec<_>>());
        let stats = proxy.stop();
        assert_eq!(stats, ProxyStats { forwarded: 10, dropped: 0 });
    }

    #[test]
    fn scripted_proxy_drops_exact_positions() {
        let sink = UdpSocket::bind("127.0.0.1:0").expect("bind sink");
        let proxy = LossProxy::bind(
            sink.local_addr().expect("sink addr"),
            Box::new(Scripted::new([1, 3])),
            42,
        )
        .expect("bind proxy")
        .spawn()
        .expect("spawn proxy");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        for i in 0..5u8 {
            tx.send_to(&[i], proxy.addr()).expect("send");
            rcm_sync::thread::sleep(Duration::from_millis(1));
        }
        let got = recv_all(&sink, Duration::from_millis(200));
        assert_eq!(got, vec![vec![0], vec![2], vec![4]], "positions 1 and 3 eaten");
        let stats = proxy.stop();
        assert_eq!(stats, ProxyStats { forwarded: 3, dropped: 2 });
    }
}
