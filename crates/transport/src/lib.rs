//! # rcm-transport — real socket transport for replicated condition
//! monitoring
//!
//! The paper's link model is *explicitly* a transport spec: front
//! links (DM → CE) are "UDP-like" — in-order but potentially lossy —
//! and back links (CE → AD) are "TCP-like" — in-order and lossless.
//! This crate implements both over actual sockets so the same
//! monitoring pipeline the in-process runtime drives over channels can
//! be deployed as separate OS processes:
//!
//! * [`wire`] — the shared frame codec (version byte, length prefix,
//!   checksum, payload) used by every link, in-process or socket. The
//!   version byte selects the payload [`Codec`] behind the pluggable
//!   [`wire::SerDes`] seam: version-2 JSON or the default version-3
//!   compact binary layout, interoperable frame by frame;
//! * [`BatchPolicy`] — frame batching: links coalesce many updates per
//!   datagram / many alerts per stream write, flushing on
//!   count/size/deadline, with delivery semantics identical to
//!   unbatched sends;
//! * [`UdpFrontLink`] / [`UdpFrontReceiver`] — updates over UDP, with
//!   the receiver enforcing the front-link contract by discarding
//!   reordered and duplicated datagrams via a per-variable seqno
//!   high-water mark ([`SeqGate`]);
//! * [`TcpBackLink`] / [`TcpAlertListener`] — alerts over TCP with
//!   reconnect driven by [`rcm_net::Backoff`] and a bounded resend
//!   queue, preserving the lossless contract across connection drops;
//! * [`LossProxy`] — a UDP forwarder replaying [`rcm_net`] loss models
//!   onto real packets, for deterministic loss injection in loopback
//!   integration tests;
//! * [`Topology`] / [`BoundTopology`] — address plans binding a whole
//!   DM / CE×n / AD deployment, used by the runtime's `SystemBuilder`
//!   and the `rcm-dm` / `rcm-ce` / `rcm-ad` node binaries.
//!
//! Two engines carry these links. The *threaded* engine — the
//! original, kept as the reference implementation — spends a blocked
//! OS thread (blocking socket + short read timeout) per link. The
//! *evented* engine ([`engine`], the default) runs every socket of a
//! node as a state machine on one `rcm-poll` readiness loop, so a
//! single CE process holds 10k+ idle front links; the [`Engine`]
//! selector threads from [`Topology`] through the runtime and node
//! binaries, and the loopback equivalence suite pins both engines to
//! the in-process pipeline's output. All concurrency goes through the
//! `rcm-sync` shim, same discipline as the runtime, so `cargo xtask
//! lint` covers this crate too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod engine;
mod gate;
mod proxy;
mod report;
mod tcp;
mod topology;
mod udp;
pub mod wire;

pub use batch::BatchPolicy;
pub use engine::{BackLinkSpec, Engine, EventLoop, EventedBackLink};
pub use gate::SeqGate;
pub use proxy::{LossProxy, ProxyHandle};
pub use report::{
    EngineStats, FrontLinkStats, IngressStats, ListenerStats, ProxyStats, TcpLinkStats,
    TransportMode, TransportReport,
};
pub use tcp::{TcpAlertListener, TcpBackLink};
pub use topology::{BoundTopology, Topology, TopologyParts};
pub use udp::{UdpFrontLink, UdpFrontReceiver};
pub use wire::Codec;
