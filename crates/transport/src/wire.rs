//! The shared frame codec: every byte that crosses a monitoring link —
//! in-process or on a real socket — goes through here.
//!
//! Frame layout (header integers big-endian):
//!
//! ```text
//! +---------+-------------------+---------------------+-----------------+
//! | version | payload length u32| FNV-1a-32 checksum  | payload         |
//! |  1 byte |      4 bytes      |       4 bytes       | `length` bytes  |
//! +---------+-------------------+---------------------+-----------------+
//! ```
//!
//! The version byte selects the payload codec — it is the negotiation
//! mechanism, not just a skew check. Two codecs are live behind the
//! [`SerDes`] seam:
//!
//! * version 2 — [`JsonSerDes`]: the original self-describing JSON
//!   payload, kept for rollout interop and human-readable captures;
//! * version 3 — [`BinarySerDes`]: a hand-rolled compact layout — one
//!   tag byte, LEB128 varints for every id/seqno/count, and raw
//!   little-endian `f64` bits — encoded into a caller-provided buffer
//!   and decoded straight off the frame with no intermediate
//!   allocation.
//!
//! Receivers dispatch per frame on the version byte, so a binary CE
//! can serve a JSON AD (and vice versa) during a mixed-codec rollout;
//! any *other* version byte fails fast on the first byte. The checksum
//! rejects payload corruption before either parser sees it (UDP's
//! 16-bit checksum is weak and optional, and a TCP stream that
//! desynchronizes mid-frame would otherwise feed garbage lengths
//! forever). The codec is symmetric and self-delimiting: a TCP byte
//! stream decodes incrementally through a [`FrameBuf`], and a UDP
//! datagram carries exactly one frame decoded with [`decode_datagram`].
//!
//! Binary payload layout (`varint` = unsigned LEB128, ≤ 10 bytes):
//!
//! ```text
//! payload   := tag:u8 body
//! tag       := 0 Update | 1 Alert | 2 Hello | 3 Fin
//!            | 4 UpdateBatch | 5 AlertBatch | 6 Derived
//! update    := var:varint seqno:varint value:f64-le-bits
//! alert     := cond:varint ce:varint index:varint
//!              nvars:varint { var:varint nseq:varint seqno:varint* }*
//!              nsnap:varint update*
//! hello/fin := node:varint
//! batches   := count:varint item*
//! derived   := var:varint seqno:varint kind:u8 body
//!              kind 0 (aggregate): value:f64-le-bits
//!              kind 1 (verdict):   alert
//! ```
//!
//! This module used to live in `rcm-runtime::wire` (which still
//! re-exports it); it moved here so the socket transport and the
//! in-process runtime share one frame format by construction.

use std::io;

use rcm_core::{Alert, AlertId, CeId, CondId, DerivedPayload, DerivedUpdate, SeqNo, Update, VarId};
use serde::{Deserialize, Serialize};

/// A message on a monitoring link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A data update (front links).
    Update(Update),
    /// An alert (back links).
    Alert(Alert),
    /// Connection preamble: which node is speaking. Sent by a TCP back
    /// link on every (re)connect so the receiver can attribute the
    /// stream.
    Hello {
        /// Sender's node index (CE replica index on back links).
        node: u32,
    },
    /// End-of-stream marker: the sending node has no more messages.
    /// Repeated a few times on lossy links so the receiver's shutdown
    /// does not hinge on one datagram surviving.
    Fin {
        /// Sender's node index (DM index on front links, CE replica
        /// index on back links).
        node: u32,
    },
    /// Several updates coalesced into one frame by a batching front
    /// link. Receivers run each update through the seqno gate in batch
    /// order, so delivery is indistinguishable from the updates having
    /// arrived as individual frames.
    UpdateBatch(Vec<Update>),
    /// Several alerts coalesced into one back-link write. Order within
    /// the batch is the send order.
    AlertBatch(Vec<Alert>),
    /// One derived update on a hierarchical tier link (leaf or
    /// interior CE → parent CE): a synthetic variable id, the
    /// emitter's per-stream consecutive seqno, and an aggregate or
    /// verdict payload. Version-gated like every other message — a
    /// build that predates the tag rejects the frame cleanly as an
    /// unknown message tag instead of misparsing it.
    Derived(DerivedUpdate),
}

/// How much of an alert's history set is put on the wire.
///
/// The paper's §2: "although conceptually we send all histories in an
/// alert, in practice this is often not necessary. … some systems do
/// not need this information at all. Others need only the update
/// sequence numbers contained in the histories. Still others only use
/// these sequence numbers in a simple equality test, in which case it
/// may be sufficient to send just a checksum of the histories."
///
/// Minimum fidelity per AD algorithm:
///
/// | Fidelity | Sufficient for |
/// |----------|----------------|
/// | [`Fidelity::Digest`] | AD-1 (equality test only) |
/// | [`Fidelity::Heads`] | AD-2, AD-5 (per-variable `a.seqno.x` comparisons) |
/// | [`Fidelity::Seqnos`] | AD-3, AD-4, AD-6 (full history seqnos for the spanning-set test) |
/// | [`Fidelity::Full`] | displays that show triggering values to the user |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Only a 64-bit checksum of the histories.
    Digest,
    /// Only the newest seqno per variable.
    Heads,
    /// All history seqnos, no values.
    Seqnos,
    /// The complete alert including the value snapshot.
    Full,
}

/// An alert reduced to a wire fidelity level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompactAlert {
    /// Checksum only.
    Digest {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// [`HistoryDigest`](rcm_core::ad::HistoryDigest) value.
        digest: u64,
    },
    /// Newest seqno per variable.
    Heads {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// `(variable, a.seqno.var)` pairs, ascending by variable.
        heads: Vec<(rcm_core::VarId, rcm_core::SeqNo)>,
    },
    /// Full history seqnos, values stripped.
    Seqnos {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// The complete fingerprint.
        fingerprint: rcm_core::HistoryFingerprint,
    },
    /// The complete alert.
    Full(Alert),
}

impl CompactAlert {
    /// Reduces an alert to the requested fidelity.
    pub fn of(alert: &Alert, fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Digest => CompactAlert::Digest {
                cond: alert.cond,
                id: alert.id,
                digest: rcm_core::ad::HistoryDigest::of(alert).get(),
            },
            Fidelity::Heads => CompactAlert::Heads {
                cond: alert.cond,
                id: alert.id,
                heads: alert.fingerprint.iter().map(|(v, seqnos)| (v, seqnos[0])).collect(),
            },
            Fidelity::Seqnos => CompactAlert::Seqnos {
                cond: alert.cond,
                id: alert.id,
                fingerprint: alert.fingerprint.clone(),
            },
            Fidelity::Full => CompactAlert::Full(alert.clone()),
        }
    }

    /// Serialized JSON payload size in bytes at this fidelity,
    /// measured through the [`SerDes`] seam's counting sink — no
    /// serialization buffer is allocated.
    pub fn encoded_len(&self) -> usize {
        match json_len(self) {
            Ok(len) => len,
            // Unreachable for well-formed alerts; a zero length is a
            // harmless answer for a sizing query on the hot path.
            Err(_) => 0,
        }
    }
}

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// The payload was not valid JSON for a [`Message`].
    Codec(serde_json::Error),
    /// A binary payload was structurally invalid (bad tag, truncated
    /// body, overflowing varint, malformed fingerprint, …).
    Malformed {
        /// What the decoder tripped on.
        context: &'static str,
    },
    /// A frame declared a length larger than the cap.
    FrameTooLarge {
        /// Declared payload size.
        declared: usize,
    },
    /// The frame's version byte names no codec this build speaks.
    BadVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The payload failed its checksum: corruption in flight.
    BadChecksum {
        /// Checksum carried in the header.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// A datagram ended before its declared payload did.
    Truncated {
        /// Declared payload size.
        declared: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// A datagram carried bytes past its single frame.
    TrailingBytes {
        /// Extra byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "payload codec error: {e}"),
            WireError::Malformed { context } => write!(f, "malformed binary payload: {context}"),
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the {MAX_FRAME} byte cap")
            }
            WireError::BadVersion { found } => {
                write!(
                    f,
                    "wire version {found} (this build speaks {WIRE_VERSION} and \
                     {BINARY_WIRE_VERSION})"
                )
            }
            WireError::BadChecksum { declared, computed } => {
                write!(f, "payload checksum {computed:#010x} != declared {declared:#010x}")
            }
            WireError::Truncated { declared, got } => {
                write!(f, "datagram truncated: {got} of {declared} payload bytes")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "datagram carries {extra} bytes past its frame")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

/// The JSON codec's version byte (the original frame format revision).
pub const WIRE_VERSION: u8 = 2;

/// The compact binary codec's version byte.
pub const BINARY_WIRE_VERSION: u8 = 3;

/// Bytes before the payload: version, length, checksum.
pub const HEADER_LEN: usize = 9;

/// Maximum accepted payload size; an alert's histories are bounded by
/// the condition degree and batches are flushed long before this, so
/// real frames are tiny — the cap exists to fail fast on corrupted
/// length prefixes.
pub const MAX_FRAME: usize = 1 << 20;

/// Which payload codec a link speaks. The runtime-dispatch selector in
/// front of the [`SerDes`] seam: configuration (topology, node-binary
/// flags) carries a `Codec`, the seam does the work.
///
/// Receivers do not need one — they dispatch on each frame's version
/// byte, which is what lets mixed-codec fleets interoperate during a
/// rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Version-2 self-describing JSON payloads.
    Json,
    /// Version-3 compact binary payloads (the default).
    #[default]
    Binary,
}

impl Codec {
    /// The version byte frames of this codec carry.
    pub const fn version(self) -> u8 {
        match self {
            Codec::Json => JsonSerDes::VERSION,
            Codec::Binary => BinarySerDes::VERSION,
        }
    }

    /// The codec a version byte names, if any.
    pub const fn from_version(version: u8) -> Option<Codec> {
        match version {
            WIRE_VERSION => Some(Codec::Json),
            BINARY_WIRE_VERSION => Some(Codec::Binary),
            _ => None,
        }
    }

    /// The flag spelling used by the node binaries (`--codec json`).
    pub const fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

impl std::str::FromStr for Codec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(Codec::Json),
            "binary" => Ok(Codec::Binary),
            other => Err(format!("unknown codec {other:?} (expected json or binary)")),
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The pluggable serializer/deserializer seam. A codec implements this
/// to plug into the shared framing (version byte, length, checksum):
/// encoding appends to a caller-provided buffer so steady-state links
/// reuse one allocation, decoding reads straight off the frame slice,
/// and sizing is computed without serializing into a buffer at all.
pub trait SerDes {
    /// The version byte frames of this codec carry on the wire.
    const VERSION: u8;

    /// Appends `msg`'s payload encoding (no header) to `out`.
    ///
    /// # Errors
    ///
    /// Codec-specific serialization failures.
    fn encode_payload(msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError>;

    /// Appends a borrowed update run as an `UpdateBatch` payload —
    /// the batching fast path, identical bytes to
    /// `encode_payload(&Message::UpdateBatch(updates.to_vec()))`
    /// without taking ownership of the batch.
    ///
    /// # Errors
    ///
    /// Codec-specific serialization failures.
    fn encode_update_slice(updates: &[Update], out: &mut Vec<u8>) -> Result<(), WireError>;

    /// Appends a borrowed alert run as an `AlertBatch` payload; see
    /// [`SerDes::encode_update_slice`].
    ///
    /// # Errors
    ///
    /// Codec-specific serialization failures.
    fn encode_alert_slice(alerts: &[Alert], out: &mut Vec<u8>) -> Result<(), WireError>;

    /// Decodes one complete payload.
    ///
    /// # Errors
    ///
    /// Codec-specific parse failures; must never panic, whatever the
    /// bytes.
    fn decode_payload(payload: &[u8]) -> Result<Message, WireError>;

    /// Exact encoded payload size in bytes, computed without
    /// allocating.
    ///
    /// # Errors
    ///
    /// Codec-specific serialization failures.
    fn payload_len(msg: &Message) -> Result<usize, WireError>;
}

/// An `io::Write` sink that only counts — the allocation-free length
/// path of the JSON codec.
struct ByteCount(usize);

impl io::Write for ByteCount {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0 += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Serialized JSON size of any value, streamed into a counting sink.
fn json_len<T: Serialize + ?Sized>(value: &T) -> Result<usize, WireError> {
    let mut sink = ByteCount(0);
    serde_json::to_writer(&mut sink, value).map_err(WireError::Codec)?;
    Ok(sink.0)
}

/// Serde mirror of the batch variants over borrowed slices: serializes
/// byte-identically to the owned [`Message`] variants (same externally
/// tagged layout, same variant names).
#[derive(Serialize)]
enum BorrowedBatch<'a> {
    UpdateBatch(&'a [Update]),
    AlertBatch(&'a [Alert]),
}

/// The version-2 JSON codec: self-describing, interoperable,
/// human-readable in a capture — and an order of magnitude slower than
/// [`BinarySerDes`], which is why it is no longer the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSerDes;

impl SerDes for JsonSerDes {
    const VERSION: u8 = WIRE_VERSION;

    fn encode_payload(msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError> {
        serde_json::to_writer(&mut *out, msg).map_err(WireError::Codec)
    }

    fn encode_update_slice(updates: &[Update], out: &mut Vec<u8>) -> Result<(), WireError> {
        serde_json::to_writer(&mut *out, &BorrowedBatch::UpdateBatch(updates))
            .map_err(WireError::Codec)
    }

    fn encode_alert_slice(alerts: &[Alert], out: &mut Vec<u8>) -> Result<(), WireError> {
        serde_json::to_writer(&mut *out, &BorrowedBatch::AlertBatch(alerts))
            .map_err(WireError::Codec)
    }

    fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
        serde_json::from_slice(payload).map_err(WireError::Codec)
    }

    fn payload_len(msg: &Message) -> Result<usize, WireError> {
        json_len(msg)
    }
}

/// Message tags of the binary payload layout.
mod tag {
    pub const UPDATE: u8 = 0;
    pub const ALERT: u8 = 1;
    pub const HELLO: u8 = 2;
    pub const FIN: u8 = 3;
    pub const UPDATE_BATCH: u8 = 4;
    pub const ALERT_BATCH: u8 = 5;
    pub const DERIVED: u8 = 6;
}

/// Payload-kind bytes inside a [`tag::DERIVED`] body.
mod derived_kind {
    pub const AGGREGATE: u8 = 0;
    pub const VERDICT: u8 = 1;
}

/// Smallest possible binary encoding of one update (two 1-byte varints
/// plus the 8 value bytes) — used to bound declared batch counts.
const UPDATE_WIRE_MIN: usize = 10;

/// Smallest possible binary encoding of one alert (five 1-byte
/// varints: cond, ce, index, zero history entries, zero snapshot).
const ALERT_WIRE_MIN: usize = 5;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

fn put_update(out: &mut Vec<u8>, update: &Update) {
    put_varint(out, u64::from(update.var.index()));
    put_varint(out, update.seqno.get());
    out.extend_from_slice(&update.value.to_bits().to_le_bytes());
}

fn update_wire_len(update: &Update) -> usize {
    varint_len(u64::from(update.var.index())) + varint_len(update.seqno.get()) + 8
}

fn put_alert(out: &mut Vec<u8>, alert: &Alert) {
    put_varint(out, u64::from(alert.cond.index()));
    put_varint(out, u64::from(alert.id.ce.index()));
    put_varint(out, alert.id.index);
    put_varint(out, alert.fingerprint.iter().count() as u64);
    for (var, seqnos) in alert.fingerprint.iter() {
        put_varint(out, u64::from(var.index()));
        put_varint(out, seqnos.len() as u64);
        for s in seqnos {
            put_varint(out, s.get());
        }
    }
    put_varint(out, alert.snapshot.len() as u64);
    for update in alert.snapshot.iter() {
        put_update(out, update);
    }
}

fn put_derived(out: &mut Vec<u8>, derived: &DerivedUpdate) {
    put_varint(out, u64::from(derived.var.index()));
    put_varint(out, derived.seqno.get());
    match &derived.payload {
        DerivedPayload::Aggregate(value) => {
            out.push(derived_kind::AGGREGATE);
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        DerivedPayload::Verdict(alert) => {
            out.push(derived_kind::VERDICT);
            put_alert(out, alert);
        }
    }
}

fn derived_wire_len(derived: &DerivedUpdate) -> usize {
    let body = match &derived.payload {
        DerivedPayload::Aggregate(_) => 8,
        DerivedPayload::Verdict(alert) => alert_wire_len(alert),
    };
    varint_len(u64::from(derived.var.index())) + varint_len(derived.seqno.get()) + 1 + body
}

fn alert_wire_len(alert: &Alert) -> usize {
    let mut len = varint_len(u64::from(alert.cond.index()))
        + varint_len(u64::from(alert.id.ce.index()))
        + varint_len(alert.id.index)
        + varint_len(alert.fingerprint.iter().count() as u64)
        + varint_len(alert.snapshot.len() as u64);
    for (var, seqnos) in alert.fingerprint.iter() {
        len += varint_len(u64::from(var.index())) + varint_len(seqnos.len() as u64);
        for s in seqnos {
            len += varint_len(s.get());
        }
    }
    for update in alert.snapshot.iter() {
        len += update_wire_len(update);
    }
    len
}

/// Forward-only reader over a binary payload. Every accessor reports
/// truncation instead of panicking — the decoder's promise on garbage.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Malformed { context: "payload ended early" });
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift: u32 = 0;
        loop {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift > 63 || (shift == 63 && bits > 1) {
                return Err(WireError::Malformed { context: "varint overflows 64 bits" });
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn varint_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.varint()?)
            .map_err(|_| WireError::Malformed { context: "id overflows 32 bits" })
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let raw = self.take(8)?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    fn update(&mut self) -> Result<Update, WireError> {
        let var = VarId::new(self.varint_u32()?);
        let seqno = self.varint()?;
        let value = self.f64()?;
        Ok(Update::new(var, seqno, value))
    }

    fn update_batch(&mut self) -> Result<Vec<Update>, WireError> {
        let count = self.varint()? as usize;
        if count > self.remaining() / UPDATE_WIRE_MIN + 1 {
            return Err(WireError::Malformed { context: "batch count exceeds payload" });
        }
        let mut updates = Vec::with_capacity(count);
        for _ in 0..count {
            updates.push(self.update()?);
        }
        Ok(updates)
    }

    fn alert(&mut self) -> Result<Alert, WireError> {
        let cond = CondId::new(self.varint_u32()?);
        let ce = CeId::new(self.varint_u32()?);
        let index = self.varint()?;
        let nvars = self.varint()? as usize;
        if nvars > self.remaining() / 2 + 1 {
            return Err(WireError::Malformed { context: "history count exceeds payload" });
        }
        let mut entries: Vec<(VarId, Vec<SeqNo>)> = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let var = VarId::new(self.varint_u32()?);
            let nseq = self.varint()? as usize;
            if nseq > self.remaining() {
                return Err(WireError::Malformed { context: "history count exceeds payload" });
            }
            let mut seqnos = Vec::with_capacity(nseq);
            for _ in 0..nseq {
                seqnos.push(SeqNo::new(self.varint()?));
            }
            entries.push((var, seqnos));
        }
        let fingerprint = rcm_core::HistoryFingerprint::try_new(entries)
            .map_err(|_| WireError::Malformed { context: "invalid history fingerprint" })?;
        let snapshot = self.update_batch()?;
        Ok(Alert::new(cond, fingerprint, snapshot, AlertId { ce, index }))
    }

    fn derived(&mut self) -> Result<DerivedUpdate, WireError> {
        let var = VarId::new(self.varint_u32()?);
        let seqno = SeqNo::new(self.varint()?);
        let payload = match self.u8()? {
            derived_kind::AGGREGATE => DerivedPayload::Aggregate(self.f64()?),
            derived_kind::VERDICT => DerivedPayload::Verdict(self.alert()?),
            _ => return Err(WireError::Malformed { context: "unknown derived payload kind" }),
        };
        Ok(DerivedUpdate { var, seqno, payload })
    }
}

/// The version-3 compact binary codec. See the module docs for the
/// layout; the design point is that the per-message fixed cost is a
/// handful of varint reads instead of a JSON parse, and encode writes
/// straight into the caller's frame buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinarySerDes;

impl SerDes for BinarySerDes {
    const VERSION: u8 = BINARY_WIRE_VERSION;

    fn encode_payload(msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError> {
        match msg {
            Message::Update(u) => {
                out.push(tag::UPDATE);
                put_update(out, u);
            }
            Message::Alert(a) => {
                out.push(tag::ALERT);
                put_alert(out, a);
            }
            Message::Hello { node } => {
                out.push(tag::HELLO);
                put_varint(out, u64::from(*node));
            }
            Message::Fin { node } => {
                out.push(tag::FIN);
                put_varint(out, u64::from(*node));
            }
            Message::Derived(derived) => {
                out.push(tag::DERIVED);
                put_derived(out, derived);
            }
            Message::UpdateBatch(updates) => return Self::encode_update_slice(updates, out),
            Message::AlertBatch(alerts) => return Self::encode_alert_slice(alerts, out),
        }
        Ok(())
    }

    fn encode_update_slice(updates: &[Update], out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(tag::UPDATE_BATCH);
        put_varint(out, updates.len() as u64);
        for u in updates {
            put_update(out, u);
        }
        Ok(())
    }

    fn encode_alert_slice(alerts: &[Alert], out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(tag::ALERT_BATCH);
        put_varint(out, alerts.len() as u64);
        for a in alerts {
            put_alert(out, a);
        }
        Ok(())
    }

    fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            tag::UPDATE => Message::Update(r.update()?),
            tag::ALERT => Message::Alert(r.alert()?),
            tag::HELLO => Message::Hello { node: r.varint_u32()? },
            tag::FIN => Message::Fin { node: r.varint_u32()? },
            tag::UPDATE_BATCH => Message::UpdateBatch(r.update_batch()?),
            tag::DERIVED => Message::Derived(r.derived()?),
            tag::ALERT_BATCH => {
                let count = r.varint()? as usize;
                if count > r.remaining() / ALERT_WIRE_MIN + 1 {
                    return Err(WireError::Malformed { context: "batch count exceeds payload" });
                }
                let mut alerts = Vec::with_capacity(count);
                for _ in 0..count {
                    alerts.push(r.alert()?);
                }
                Message::AlertBatch(alerts)
            }
            _ => return Err(WireError::Malformed { context: "unknown message tag" }),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed { context: "trailing payload bytes" });
        }
        Ok(msg)
    }

    fn payload_len(msg: &Message) -> Result<usize, WireError> {
        Ok(match msg {
            Message::Update(u) => 1 + update_wire_len(u),
            Message::Alert(a) => 1 + alert_wire_len(a),
            Message::Derived(d) => 1 + derived_wire_len(d),
            Message::Hello { node } | Message::Fin { node } => 1 + varint_len(u64::from(*node)),
            Message::UpdateBatch(updates) => {
                1 + varint_len(updates.len() as u64)
                    + updates.iter().map(update_wire_len).sum::<usize>()
            }
            Message::AlertBatch(alerts) => {
                1 + varint_len(alerts.len() as u64)
                    + alerts.iter().map(alert_wire_len).sum::<usize>()
            }
        })
    }
}

/// FNV-1a over the payload: cheap, dependency-free, and plenty to
/// catch the bit flips and desynchronized-stream garbage this header
/// field exists for (it is an integrity check, not an authenticator).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Appends one complete frame to `out`: writes the version byte,
/// leaves room for the length/checksum, runs `encode`, then patches
/// the header over what it produced. On error `out` is truncated back
/// to its original length.
fn frame_with(
    codec: Codec,
    out: &mut Vec<u8>,
    encode: impl FnOnce(&mut Vec<u8>) -> Result<(), WireError>,
) -> Result<(), WireError> {
    let start = out.len();
    out.push(codec.version());
    out.extend_from_slice(&[0u8; 8]);
    if let Err(e) = encode(out) {
        out.truncate(start);
        return Err(e);
    }
    let payload_start = start + HEADER_LEN;
    let payload_len = out.len() - payload_start;
    if payload_len > MAX_FRAME {
        out.truncate(start);
        return Err(WireError::FrameTooLarge { declared: payload_len });
    }
    // analyze: allow(hot-path): this function appended the HEADER_LEN placeholder
    // analyze: allow(hot-path): bytes at `start` itself, so the payload slice and
    let checksum = fnv1a(&out[payload_start..]);
    // analyze: allow(hot-path): both four-byte header windows stay in bounds
    out[start + 1..start + 5].copy_from_slice(&(payload_len as u32).to_be_bytes());
    // analyze: allow(hot-path): second half of the header backpatched above
    out[start + 5..start + 9].copy_from_slice(&checksum.to_be_bytes());
    Ok(())
}

/// Encodes a message as one framed byte vector in the legacy JSON
/// codec — kept for tests and captures that want self-describing
/// frames; production links use [`encode_into`] with a configured
/// [`Codec`] and a reused buffer.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if serialization fails (cannot happen
/// for well-formed messages; kept fallible for API honesty).
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    encode_with(Codec::Json, msg)
}

/// Encodes a message as one framed byte vector in the given codec.
///
/// # Errors
///
/// Serialization failures from the selected codec.
pub fn encode_with(codec: Codec, msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode_into(codec, msg, &mut out)?;
    Ok(out)
}

/// Appends one complete frame for `msg` to `out` — the zero-allocation
/// encode path: a link clears and reuses one buffer across sends.
///
/// # Errors
///
/// Serialization failures from the selected codec; `out` is left
/// unchanged on error.
pub fn encode_into(codec: Codec, msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError> {
    frame_with(codec, out, |out| match codec {
        Codec::Json => JsonSerDes::encode_payload(msg, out),
        Codec::Binary => BinarySerDes::encode_payload(msg, out),
    })
}

/// Appends one `UpdateBatch` frame for a borrowed update run —
/// byte-identical to `encode_into` of [`Message::UpdateBatch`] without
/// taking ownership of the batch.
///
/// # Errors
///
/// Serialization failures from the selected codec; `out` is left
/// unchanged on error.
pub fn encode_updates_into(
    codec: Codec,
    updates: &[Update],
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    frame_with(codec, out, |out| match codec {
        Codec::Json => JsonSerDes::encode_update_slice(updates, out),
        Codec::Binary => BinarySerDes::encode_update_slice(updates, out),
    })
}

/// Appends one `AlertBatch` frame for a borrowed alert run; see
/// [`encode_updates_into`].
///
/// # Errors
///
/// Serialization failures from the selected codec; `out` is left
/// unchanged on error.
pub fn encode_alerts_into(
    codec: Codec,
    alerts: &[Alert],
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    frame_with(codec, out, |out| match codec {
        Codec::Json => JsonSerDes::encode_alert_slice(alerts, out),
        Codec::Binary => BinarySerDes::encode_alert_slice(alerts, out),
    })
}

/// The complete frame size (header + payload) `msg` would occupy in
/// `codec`, computed without encoding — what the batching links use
/// for their size-triggered flush.
///
/// # Errors
///
/// Serialization failures from the selected codec.
pub fn frame_len(codec: Codec, msg: &Message) -> Result<usize, WireError> {
    let payload = match codec {
        Codec::Json => JsonSerDes::payload_len(msg)?,
        Codec::Binary => BinarySerDes::payload_len(msg)?,
    };
    Ok(HEADER_LEN + payload)
}

/// An incremental decode buffer for framed byte streams (the TCP
/// side): push received bytes in, pull whole frames out with
/// [`decode`]. Consumed bytes are reclaimed lazily so a long-lived
/// connection does not creep.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    head: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed space before growing, once it dominates.
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether every pushed byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes.
    fn pending(&self) -> &[u8] {
        // analyze: allow(hot-path): head <= buf.len() is this type's invariant
        &self.buf[self.head..]
    }

    fn consume(&mut self, n: usize) {
        self.head += n;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> Self {
        FrameBuf { buf: bytes.to_vec(), head: 0 }
    }
}

/// Parses one frame header from `bytes`; `Ok(None)` means incomplete.
/// On success returns the payload codec (dispatched off the version
/// byte) and the payload length (the payload begins at [`HEADER_LEN`]).
fn parse_header(bytes: &[u8]) -> Result<Option<(Codec, usize)>, WireError> {
    let Some(&version) = bytes.first() else { return Ok(None) };
    let Some(codec) = Codec::from_version(version) else {
        return Err(WireError::BadVersion { found: version });
    };
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    let declared = u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
    if declared > MAX_FRAME {
        return Err(WireError::FrameTooLarge { declared });
    }
    Ok(Some((codec, declared)))
}

/// Verifies and deserializes a complete frame's payload.
fn parse_payload(codec: Codec, header: &[u8], payload: &[u8]) -> Result<Message, WireError> {
    let declared = u32::from_be_bytes([header[5], header[6], header[7], header[8]]);
    let computed = fnv1a(payload);
    if computed != declared {
        return Err(WireError::BadChecksum { declared, computed });
    }
    match codec {
        Codec::Json => JsonSerDes::decode_payload(payload),
        Codec::Binary => BinarySerDes::decode_payload(payload),
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame (read more bytes and retry); on success the frame's bytes are
/// consumed from `buf`. Frames of either codec are accepted, each
/// dispatched on its own version byte.
///
/// A decode error is fatal for the stream: the buffer's read position
/// is left at the bad frame, and a desynchronized or corrupted peer
/// should be disconnected, not resynchronized.
///
/// # Errors
///
/// [`WireError::BadVersion`] for protocol skew,
/// [`WireError::FrameTooLarge`] for implausible length prefixes,
/// [`WireError::BadChecksum`] for corrupted payloads and
/// [`WireError::Codec`] / [`WireError::Malformed`] for undecodable
/// ones.
pub fn decode(buf: &mut FrameBuf) -> Result<Option<Message>, WireError> {
    let Some((codec, declared)) = parse_header(buf.pending())? else { return Ok(None) };
    if buf.len() < HEADER_LEN + declared {
        return Ok(None);
    }
    let (header, rest) = buf.pending().split_at(HEADER_LEN);
    // analyze: allow(hot-path): the guard above returns unless len >= HEADER_LEN + declared
    let msg = parse_payload(codec, header, &rest[..declared])?;
    buf.consume(HEADER_LEN + declared);
    Ok(Some(msg))
}

/// Decodes a datagram that must contain exactly one whole frame — the
/// UDP side, where the kernel already delimits messages and a partial
/// or over-full datagram is corruption, not back-pressure. Frames of
/// either codec are accepted.
///
/// # Errors
///
/// Everything [`decode`] can return, plus [`WireError::Truncated`] and
/// [`WireError::TrailingBytes`] for mis-sized datagrams.
pub fn decode_datagram(bytes: &[u8]) -> Result<Message, WireError> {
    let Some((codec, declared)) = parse_header(bytes)? else {
        return Err(WireError::Truncated { declared: HEADER_LEN, got: bytes.len() });
    };
    let got = bytes.len() - HEADER_LEN;
    if got < declared {
        return Err(WireError::Truncated { declared, got });
    }
    if got > declared {
        return Err(WireError::TrailingBytes { extra: got - declared });
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    parse_payload(codec, header, payload)
}

/// Round-trips a message through the binary codec — used by the
/// in-process links to make every delivered message cross a real
/// serialization boundary.
///
/// # Panics
///
/// Panics if the codec disagrees with itself; that is a bug worth
/// crashing on.
pub fn roundtrip(msg: &Message) -> Message {
    roundtrip_with(Codec::Binary, msg)
}

/// Round-trips a message through the given codec; see [`roundtrip`].
///
/// # Panics
///
/// Panics if the codec disagrees with itself; that is a bug worth
/// crashing on.
pub fn roundtrip_with(codec: Codec, msg: &Message) -> Message {
    let bytes = match encode_with(codec, msg) {
        Ok(bytes) => bytes,
        Err(e) => panic!("encoding well-formed message: {e}"),
    };
    match decode_datagram(&bytes) {
        Ok(msg) => msg,
        Err(e) => panic!("decoding own frame: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};

    const CODECS: [Codec; 2] = [Codec::Json, Codec::Binary];

    fn update() -> Update {
        Update::new(VarId::new(3), 17, 3000.5)
    }

    fn alert() -> Alert {
        Alert::new(
            CondId::new(2),
            HistoryFingerprint::single(VarId::new(3), vec![SeqNo::new(17), SeqNo::new(15)]),
            vec![update()],
            AlertId { ce: CeId::new(1), index: 9 },
        )
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Update(update()),
            Message::Alert(alert()),
            Message::Hello { node: 7 },
            Message::Fin { node: 0 },
            Message::UpdateBatch(vec![]),
            Message::UpdateBatch(
                (0..5).map(|i| Update::new(VarId::new(1), i + 1, i as f64)).collect(),
            ),
            Message::AlertBatch(vec![alert(), alert()]),
            Message::Derived(DerivedUpdate {
                var: rcm_core::derived_var(0, 3),
                seqno: SeqNo::new(4),
                payload: DerivedPayload::Aggregate(12.75),
            }),
            Message::Derived(DerivedUpdate {
                var: rcm_core::derived_var(1, 0),
                seqno: SeqNo::new(1),
                payload: DerivedPayload::Verdict(alert()),
            }),
        ]
    }

    #[test]
    fn update_roundtrip() {
        let m = Message::Update(update());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [Message::Hello { node: 7 }, Message::Fin { node: 0 }] {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn every_message_roundtrips_in_both_codecs() {
        for codec in CODECS {
            for m in sample_messages() {
                assert_eq!(roundtrip_with(codec, &m), m, "{codec} codec, {m:?}");
            }
        }
    }

    #[test]
    fn alert_roundtrip_preserves_fingerprint_and_provenance() {
        for codec in CODECS {
            let m = Message::Alert(alert());
            let back = roundtrip_with(codec, &m);
            match (m, back) {
                (Message::Alert(a), Message::Alert(b)) => {
                    assert_eq!(a, b); // identity (cond + fingerprint)
                    assert_eq!(a.id, b.id); // provenance survives too
                    assert_eq!(a.snapshot[..], b.snapshot[..]); // values exact in both codecs
                }
                _ => panic!("variant changed in flight"),
            }
        }
    }

    #[test]
    fn payload_len_is_exact_without_encoding() {
        for codec in CODECS {
            for m in sample_messages() {
                let frame = encode_with(codec, &m).expect("encodes");
                assert_eq!(
                    frame_len(codec, &m).expect("sized"),
                    frame.len(),
                    "{codec} codec, {m:?}"
                );
            }
        }
    }

    #[test]
    fn binary_frames_are_smaller_than_json() {
        for m in [Message::Update(update()), Message::Alert(alert())] {
            let json = encode_with(Codec::Json, &m).expect("encodes").len();
            let binary = encode_with(Codec::Binary, &m).expect("encodes").len();
            assert!(binary * 3 < json, "binary {binary} vs json {json} for {m:?}");
        }
    }

    #[test]
    fn encode_into_appends_reusing_the_buffer() {
        let mut buf = Vec::new();
        let m1 = Message::Update(update());
        let m2 = Message::Fin { node: 1 };
        encode_into(Codec::Binary, &m1, &mut buf).expect("encodes");
        let first = buf.len();
        encode_into(Codec::Binary, &m2, &mut buf).expect("encodes");
        assert_eq!(&buf[..first], &encode_with(Codec::Binary, &m1).expect("encodes")[..]);
        assert_eq!(&buf[first..], &encode_with(Codec::Binary, &m2).expect("encodes")[..]);
        // The streaming decoder consumes both appended frames.
        let mut frames = FrameBuf::from(&buf[..]);
        assert_eq!(decode(&mut frames).expect("decodes"), Some(m1));
        assert_eq!(decode(&mut frames).expect("decodes"), Some(m2));
        assert!(frames.is_empty());
    }

    #[test]
    fn slice_encoders_match_the_owned_batch_variants() {
        let updates: Vec<Update> = (0..4).map(|i| Update::new(VarId::new(0), i + 1, 0.5)).collect();
        let alerts = vec![alert(), alert()];
        for codec in CODECS {
            let mut from_slice = Vec::new();
            encode_updates_into(codec, &updates, &mut from_slice).expect("encodes");
            let owned =
                encode_with(codec, &Message::UpdateBatch(updates.clone())).expect("encodes");
            assert_eq!(from_slice, owned, "{codec} update batch");
            let mut from_slice = Vec::new();
            encode_alerts_into(codec, &alerts, &mut from_slice).expect("encodes");
            let owned = encode_with(codec, &Message::AlertBatch(alerts.clone())).expect("encodes");
            assert_eq!(from_slice, owned, "{codec} alert batch");
        }
    }

    #[test]
    fn cross_codec_relabel_is_rejected_not_misparsed() {
        // A frame whose version byte is rewritten to the *other* codec
        // passes the checksum (it covers only the payload) but must
        // fail cleanly in the payload parser — this is what makes the
        // version byte a safe negotiation mechanism for mixed fleets.
        for m in sample_messages() {
            let mut as_binary = encode_with(Codec::Binary, &m).expect("encodes");
            as_binary[0] = WIRE_VERSION;
            assert!(
                matches!(decode_datagram(&as_binary), Err(WireError::Codec(_))),
                "binary payload misparsed as JSON for {m:?}"
            );
            let mut as_json = encode_with(Codec::Json, &m).expect("encodes");
            as_json[0] = BINARY_WIRE_VERSION;
            assert!(
                matches!(decode_datagram(&as_json), Err(WireError::Malformed { .. })),
                "JSON payload misparsed as binary for {m:?}"
            );
        }
    }

    #[test]
    fn streamed_frames_decode_incrementally() {
        let m1 = Message::Update(update());
        let m2 = Message::Alert(alert());
        // Mixed-codec stream: one JSON frame, one binary frame.
        let f1 = encode_with(Codec::Json, &m1).expect("update frame encodes");
        let f2 = encode_with(Codec::Binary, &m2).expect("alert frame encodes");
        let mut buf = FrameBuf::new();
        // Feed byte by byte; decoder must wait for full frames.
        let all: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();
        let mut decoded = Vec::new();
        for b in all {
            buf.push(&[b]);
            while let Some(m) = decode(&mut buf).expect("well-formed frame decodes") {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, vec![m1, m2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frame_rejected() {
        for version in [WIRE_VERSION, BINARY_WIRE_VERSION] {
            let mut raw = vec![version];
            raw.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
            raw.extend_from_slice(&[0; 12]);
            let mut buf = FrameBuf::from(&raw[..]);
            assert!(matches!(decode(&mut buf), Err(WireError::FrameTooLarge { .. })));
        }
    }

    #[test]
    fn unknown_version_rejected_on_the_first_byte() {
        // 2 and 3 are live codecs; anything else is skew. One byte
        // suffices: the reject happens before any length read.
        let mut frame = encode(&Message::Update(update())).expect("encodes");
        frame[0] = 9;
        let mut buf = FrameBuf::from(&frame[..1]);
        assert!(matches!(decode(&mut buf), Err(WireError::BadVersion { found: 9 })));
        assert!(matches!(decode_datagram(&frame), Err(WireError::BadVersion { .. })));
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        for codec in CODECS {
            let mut frame = encode_with(codec, &Message::Alert(alert())).expect("encodes");
            let last = frame.len() - 1;
            frame[last] ^= 0x01;
            let mut buf = FrameBuf::from(&frame[..]);
            assert!(matches!(decode(&mut buf), Err(WireError::BadChecksum { .. })));
            assert!(matches!(decode_datagram(&frame), Err(WireError::BadChecksum { .. })));
        }
    }

    fn raw_frame(version: u8, payload: &[u8]) -> Vec<u8> {
        let mut raw = vec![version];
        raw.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        raw.extend_from_slice(&fnv1a(payload).to_be_bytes());
        raw.extend_from_slice(payload);
        raw
    }

    #[test]
    fn garbage_payload_with_honest_checksum_rejected_by_codec() {
        let mut buf = FrameBuf::from(&raw_frame(WIRE_VERSION, b"wat")[..]);
        assert!(matches!(decode(&mut buf), Err(WireError::Codec(_))));
    }

    #[test]
    fn malformed_binary_payloads_error_without_panicking() {
        // tag 9 does not exist
        let bad_tag = raw_frame(BINARY_WIRE_VERSION, &[9]);
        // update truncated after the var id
        let truncated = raw_frame(BINARY_WIRE_VERSION, &[tag::UPDATE, 3]);
        // alert with an increasing (invalid) seqno history: cond 0,
        // ce 0, index 0, 1 var, var 0, 2 seqnos: 2 then 3
        let bad_fp = raw_frame(BINARY_WIRE_VERSION, &[tag::ALERT, 0, 0, 0, 1, 0, 2, 2, 3, 0]);
        // batch declaring far more updates than the payload could hold
        let bad_count = raw_frame(BINARY_WIRE_VERSION, &[tag::UPDATE_BATCH, 0xff, 0xff, 0x03]);
        // valid fin with a trailing byte inside the payload
        let trailing = raw_frame(BINARY_WIRE_VERSION, &[tag::FIN, 1, 0]);
        // a varint that never terminates within 64 bits
        let overflow = raw_frame(
            BINARY_WIRE_VERSION,
            &[tag::FIN, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f],
        );
        // derived update with an unknown payload kind (var 1, seqno 1, kind 7)
        let bad_kind = raw_frame(BINARY_WIRE_VERSION, &[tag::DERIVED, 1, 1, 7]);
        // derived aggregate truncated mid-f64 (var 1, seqno 1, kind 0, 3 of 8 bytes)
        let short_agg = raw_frame(BINARY_WIRE_VERSION, &[tag::DERIVED, 1, 1, 0, 9, 9, 9]);
        // derived verdict whose inner alert carries a bad fingerprint
        let bad_verdict =
            raw_frame(BINARY_WIRE_VERSION, &[tag::DERIVED, 1, 1, 1, 0, 0, 0, 1, 0, 2, 2, 3, 0]);
        for raw in [
            &bad_tag,
            &truncated,
            &bad_fp,
            &bad_count,
            &trailing,
            &overflow,
            &bad_kind,
            &short_agg,
            &bad_verdict,
        ] {
            assert!(
                matches!(decode_datagram(raw), Err(WireError::Malformed { .. })),
                "{raw:?} should be Malformed, got {:?}",
                decode_datagram(raw)
            );
        }
    }

    #[test]
    fn binary_values_survive_exactly_including_nonfinite() {
        // JSON cannot represent these at all; the binary codec ships
        // raw bits, so in-process roundtripping is total over f64.
        for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE] {
            let m = Message::Update(Update::new(VarId::new(0), 1, value));
            match roundtrip_with(Codec::Binary, &m) {
                Message::Update(u) => assert_eq!(u.value.to_bits(), value.to_bits()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn codec_parses_from_flag_spellings() {
        assert_eq!("json".parse::<Codec>(), Ok(Codec::Json));
        assert_eq!("binary".parse::<Codec>(), Ok(Codec::Binary));
        assert!("msgpack".parse::<Codec>().is_err());
        assert_eq!(Codec::Json.version(), WIRE_VERSION);
        assert_eq!(Codec::Binary.version(), BINARY_WIRE_VERSION);
        assert_eq!(Codec::from_version(WIRE_VERSION), Some(Codec::Json));
        assert_eq!(Codec::from_version(BINARY_WIRE_VERSION), Some(Codec::Binary));
        assert_eq!(Codec::from_version(9), None);
        assert_eq!(Codec::default(), Codec::Binary);
    }

    #[test]
    fn datagram_must_hold_exactly_one_frame() {
        for codec in CODECS {
            let frame = encode_with(codec, &Message::Update(update())).expect("encodes");
            assert!(matches!(
                decode_datagram(&frame[..frame.len() - 1]),
                Err(WireError::Truncated { .. })
            ));
            let mut padded = frame.clone();
            padded.push(0);
            assert!(matches!(decode_datagram(&padded), Err(WireError::TrailingBytes { extra: 1 })));
        }
        assert!(matches!(decode_datagram(&[]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn short_buffer_returns_none() {
        let mut buf = FrameBuf::new();
        assert!(decode(&mut buf).expect("empty buffer is not an error").is_none());
        buf.push(&[WIRE_VERSION]);
        assert!(decode(&mut buf).expect("partial header is not an error").is_none());
        let mut buf = FrameBuf::new();
        buf.push(&[BINARY_WIRE_VERSION]);
        assert!(decode(&mut buf).expect("partial header is not an error").is_none());
    }

    #[test]
    fn framebuf_reclaims_consumed_space() {
        let frame = encode(&Message::Update(update())).expect("encodes");
        let mut buf = FrameBuf::new();
        for _ in 0..200 {
            buf.push(&frame);
            while decode(&mut buf).expect("own frames decode").is_some() {}
        }
        assert!(buf.is_empty());
        assert!(buf.buf.len() < 8192, "consumed bytes were reclaimed");
    }

    #[test]
    fn fidelity_levels_shrink() {
        let a = alert();
        let full = CompactAlert::of(&a, Fidelity::Full).encoded_len();
        let seqnos = CompactAlert::of(&a, Fidelity::Seqnos).encoded_len();
        let heads = CompactAlert::of(&a, Fidelity::Heads).encoded_len();
        let digest = CompactAlert::of(&a, Fidelity::Digest).encoded_len();
        assert!(full > seqnos, "{full} > {seqnos} expected");
        assert!(seqnos > heads, "{seqnos} > {heads} expected");
        assert!(seqnos > digest, "{seqnos} > {digest} expected");
    }

    #[test]
    fn encoded_len_matches_actual_serialization() {
        let a = alert();
        for fidelity in [Fidelity::Digest, Fidelity::Heads, Fidelity::Seqnos, Fidelity::Full] {
            let c = CompactAlert::of(&a, fidelity);
            let actual = serde_json::to_vec(&c).expect("compact alert serializes").len();
            assert_eq!(c.encoded_len(), actual, "{fidelity:?}");
        }
    }

    #[test]
    fn digest_size_is_constant_in_the_degree() {
        // The paper's checksum point: history payload grows with the
        // condition degree, the digest does not.
        let deep = |degree: u64| {
            let seqnos: Vec<SeqNo> = (0..degree).map(|i| SeqNo::new(100 - i)).collect();
            Alert::new(
                CondId::new(1),
                HistoryFingerprint::single(VarId::new(0), seqnos),
                vec![],
                AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        let d2 = deep(2);
        let d8 = deep(8);
        assert!(
            CompactAlert::of(&d8, Fidelity::Seqnos).encoded_len()
                > CompactAlert::of(&d2, Fidelity::Seqnos).encoded_len()
        );
        // Digest length varies only with the decimal rendering of the
        // checksum, never with the degree.
        let l2 = CompactAlert::of(&d2, Fidelity::Digest).encoded_len();
        let l8 = CompactAlert::of(&d8, Fidelity::Digest).encoded_len();
        assert!(l2.abs_diff(l8) <= 20, "{l2} vs {l8}");
    }

    #[test]
    fn heads_keep_the_newest_seqno_per_variable() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Heads) {
            CompactAlert::Heads { heads, .. } => {
                assert_eq!(heads, vec![(VarId::new(3), SeqNo::new(17))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn digest_matches_core_digest() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Digest) {
            CompactAlert::Digest { digest, cond, .. } => {
                assert_eq!(digest, rcm_core::ad::HistoryDigest::of(&a).get());
                assert_eq!(cond, a.cond);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compact_alert_serde_roundtrip() {
        let a = alert();
        for fidelity in [Fidelity::Digest, Fidelity::Heads, Fidelity::Seqnos, Fidelity::Full] {
            let c = CompactAlert::of(&a, fidelity);
            let json = serde_json::to_string(&c).expect("compact alert serializes");
            assert_eq!(
                serde_json::from_str::<CompactAlert>(&json).expect("compact alert parses back"),
                c
            );
        }
    }
}
