//! The shared frame codec: every byte that crosses a monitoring link —
//! in-process or on a real socket — goes through here.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! +---------+-------------------+---------------------+-----------------+
//! | version | payload length u32| FNV-1a-32 checksum  | payload (JSON)  |
//! |  1 byte |      4 bytes      |       4 bytes       | `length` bytes  |
//! +---------+-------------------+---------------------+-----------------+
//! ```
//!
//! The version byte fails fast on protocol skew between nodes built
//! from different revisions; the checksum rejects payload corruption
//! before the JSON parser ever sees it (UDP's 16-bit checksum is weak
//! and optional, and a TCP stream that desynchronizes mid-frame would
//! otherwise feed garbage lengths forever). The codec is symmetric and
//! self-delimiting: a TCP byte stream decodes incrementally through a
//! [`FrameBuf`], and a UDP datagram carries exactly one frame decoded
//! with [`decode_datagram`].
//!
//! This module used to live in `rcm-runtime::wire` (which still
//! re-exports it); it moved here so the socket transport and the
//! in-process runtime share one frame format by construction.

use rcm_core::{Alert, Update};
use serde::{Deserialize, Serialize};

/// A message on a monitoring link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A data update (front links).
    Update(Update),
    /// An alert (back links).
    Alert(Alert),
    /// Connection preamble: which node is speaking. Sent by a TCP back
    /// link on every (re)connect so the receiver can attribute the
    /// stream.
    Hello {
        /// Sender's node index (CE replica index on back links).
        node: u32,
    },
    /// End-of-stream marker: the sending node has no more messages.
    /// Repeated a few times on lossy links so the receiver's shutdown
    /// does not hinge on one datagram surviving.
    Fin {
        /// Sender's node index (DM index on front links, CE replica
        /// index on back links).
        node: u32,
    },
}

/// How much of an alert's history set is put on the wire.
///
/// The paper's §2: "although conceptually we send all histories in an
/// alert, in practice this is often not necessary. … some systems do
/// not need this information at all. Others need only the update
/// sequence numbers contained in the histories. Still others only use
/// these sequence numbers in a simple equality test, in which case it
/// may be sufficient to send just a checksum of the histories."
///
/// Minimum fidelity per AD algorithm:
///
/// | Fidelity | Sufficient for |
/// |----------|----------------|
/// | [`Fidelity::Digest`] | AD-1 (equality test only) |
/// | [`Fidelity::Heads`] | AD-2, AD-5 (per-variable `a.seqno.x` comparisons) |
/// | [`Fidelity::Seqnos`] | AD-3, AD-4, AD-6 (full history seqnos for the spanning-set test) |
/// | [`Fidelity::Full`] | displays that show triggering values to the user |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Only a 64-bit checksum of the histories.
    Digest,
    /// Only the newest seqno per variable.
    Heads,
    /// All history seqnos, no values.
    Seqnos,
    /// The complete alert including the value snapshot.
    Full,
}

/// An alert reduced to a wire fidelity level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompactAlert {
    /// Checksum only.
    Digest {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// [`HistoryDigest`](rcm_core::ad::HistoryDigest) value.
        digest: u64,
    },
    /// Newest seqno per variable.
    Heads {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// `(variable, a.seqno.var)` pairs, ascending by variable.
        heads: Vec<(rcm_core::VarId, rcm_core::SeqNo)>,
    },
    /// Full history seqnos, values stripped.
    Seqnos {
        /// Condition id.
        cond: rcm_core::CondId,
        /// Provenance.
        id: rcm_core::AlertId,
        /// The complete fingerprint.
        fingerprint: rcm_core::HistoryFingerprint,
    },
    /// The complete alert.
    Full(Alert),
}

impl CompactAlert {
    /// Reduces an alert to the requested fidelity.
    pub fn of(alert: &Alert, fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Digest => CompactAlert::Digest {
                cond: alert.cond,
                id: alert.id,
                digest: rcm_core::ad::HistoryDigest::of(alert).get(),
            },
            Fidelity::Heads => CompactAlert::Heads {
                cond: alert.cond,
                id: alert.id,
                heads: alert.fingerprint.iter().map(|(v, seqnos)| (v, seqnos[0])).collect(),
            },
            Fidelity::Seqnos => CompactAlert::Seqnos {
                cond: alert.cond,
                id: alert.id,
                fingerprint: alert.fingerprint.clone(),
            },
            Fidelity::Full => CompactAlert::Full(alert.clone()),
        }
    }

    /// Serialized payload size in bytes at this fidelity.
    pub fn encoded_len(&self) -> usize {
        serde_json::to_vec(self).expect("well-formed alert serializes").len()
    }
}

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// The payload was not valid JSON for a [`Message`].
    Codec(serde_json::Error),
    /// A frame declared a length larger than the cap.
    FrameTooLarge {
        /// Declared payload size.
        declared: usize,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The payload failed its checksum: corruption in flight.
    BadChecksum {
        /// Checksum carried in the header.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// A datagram ended before its declared payload did.
    Truncated {
        /// Declared payload size.
        declared: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// A datagram carried bytes past its single frame.
    TrailingBytes {
        /// Extra byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "payload codec error: {e}"),
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame of {declared} bytes exceeds the {MAX_FRAME} byte cap")
            }
            WireError::BadVersion { found } => {
                write!(f, "wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::BadChecksum { declared, computed } => {
                write!(f, "payload checksum {computed:#010x} != declared {declared:#010x}")
            }
            WireError::Truncated { declared, got } => {
                write!(f, "datagram truncated: {got} of {declared} payload bytes")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "datagram carries {extra} bytes past its frame")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

/// The frame format revision this build speaks. Bump when the layout
/// or the payload schema changes incompatibly.
pub const WIRE_VERSION: u8 = 2;

/// Bytes before the payload: version, length, checksum.
pub const HEADER_LEN: usize = 9;

/// Maximum accepted payload size; an alert's histories are bounded by
/// the condition degree, so real frames are tiny — the cap exists to
/// fail fast on corrupted length prefixes.
pub const MAX_FRAME: usize = 1 << 20;

/// FNV-1a over the payload: cheap, dependency-free, and plenty to
/// catch the bit flips and desynchronized-stream garbage this header
/// field exists for (it is an integrity check, not an authenticator).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes a message as one framed byte vector.
///
/// # Errors
///
/// Returns [`WireError::Codec`] if serialization fails (cannot happen
/// for well-formed messages; kept fallible for API honesty).
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    let payload = serde_json::to_vec(msg).map_err(WireError::Codec)?;
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.push(WIRE_VERSION);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    buf.extend_from_slice(&payload);
    Ok(buf)
}

/// An incremental decode buffer for framed byte streams (the TCP
/// side): push received bytes in, pull whole frames out with
/// [`decode`]. Consumed bytes are reclaimed lazily so a long-lived
/// connection does not creep.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    head: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed space before growing, once it dominates.
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether every pushed byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes.
    fn pending(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    fn consume(&mut self, n: usize) {
        self.head += n;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> Self {
        FrameBuf { buf: bytes.to_vec(), head: 0 }
    }
}

/// Parses one frame header from `bytes`; `Ok(None)` means incomplete.
/// On success returns the payload length (the payload begins at
/// [`HEADER_LEN`]).
fn parse_header(bytes: &[u8]) -> Result<Option<usize>, WireError> {
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes[0] != WIRE_VERSION {
        return Err(WireError::BadVersion { found: bytes[0] });
    }
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    let declared = u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
    if declared > MAX_FRAME {
        return Err(WireError::FrameTooLarge { declared });
    }
    Ok(Some(declared))
}

/// Verifies and deserializes a complete frame's payload.
fn parse_payload(header: &[u8], payload: &[u8]) -> Result<Message, WireError> {
    let declared = u32::from_be_bytes([header[5], header[6], header[7], header[8]]);
    let computed = fnv1a(payload);
    if computed != declared {
        return Err(WireError::BadChecksum { declared, computed });
    }
    serde_json::from_slice(payload).map_err(WireError::Codec)
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame (read more bytes and retry); on success the frame's bytes are
/// consumed from `buf`.
///
/// A decode error is fatal for the stream: the buffer's read position
/// is left at the bad frame, and a desynchronized or corrupted peer
/// should be disconnected, not resynchronized.
///
/// # Errors
///
/// [`WireError::BadVersion`] for protocol skew,
/// [`WireError::FrameTooLarge`] for implausible length prefixes,
/// [`WireError::BadChecksum`] for corrupted payloads and
/// [`WireError::Codec`] for undecodable ones.
pub fn decode(buf: &mut FrameBuf) -> Result<Option<Message>, WireError> {
    let Some(declared) = parse_header(buf.pending())? else { return Ok(None) };
    if buf.len() < HEADER_LEN + declared {
        return Ok(None);
    }
    let (header, rest) = buf.pending().split_at(HEADER_LEN);
    let msg = parse_payload(header, &rest[..declared])?;
    buf.consume(HEADER_LEN + declared);
    Ok(Some(msg))
}

/// Decodes a datagram that must contain exactly one whole frame — the
/// UDP side, where the kernel already delimits messages and a partial
/// or over-full datagram is corruption, not back-pressure.
///
/// # Errors
///
/// Everything [`decode`] can return, plus [`WireError::Truncated`] and
/// [`WireError::TrailingBytes`] for mis-sized datagrams.
pub fn decode_datagram(bytes: &[u8]) -> Result<Message, WireError> {
    let Some(declared) = parse_header(bytes)? else {
        return Err(WireError::Truncated { declared: HEADER_LEN, got: bytes.len() });
    };
    let got = bytes.len() - HEADER_LEN;
    if got < declared {
        return Err(WireError::Truncated { declared, got });
    }
    if got > declared {
        return Err(WireError::TrailingBytes { extra: got - declared });
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    parse_payload(header, payload)
}

/// Round-trips a message through the codec — used by links to make
/// every delivered message cross a real serialization boundary.
///
/// # Panics
///
/// Panics if the codec disagrees with itself; that is a bug worth
/// crashing on.
pub fn roundtrip(msg: &Message) -> Message {
    let bytes = encode(msg).expect("encoding well-formed message");
    decode_datagram(&bytes).expect("decoding own frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};

    fn update() -> Update {
        Update::new(VarId::new(3), 17, 3000.5)
    }

    fn alert() -> Alert {
        Alert::new(
            CondId::new(2),
            HistoryFingerprint::single(VarId::new(3), vec![SeqNo::new(17), SeqNo::new(15)]),
            vec![update()],
            AlertId { ce: CeId::new(1), index: 9 },
        )
    }

    #[test]
    fn update_roundtrip() {
        let m = Message::Update(update());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [Message::Hello { node: 7 }, Message::Fin { node: 0 }] {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn alert_roundtrip_preserves_fingerprint_and_provenance() {
        let m = Message::Alert(alert());
        let back = roundtrip(&m);
        match (m, back) {
            (Message::Alert(a), Message::Alert(b)) => {
                assert_eq!(a, b); // identity (cond + fingerprint)
                assert_eq!(a.id, b.id); // provenance survives too
                assert_eq!(a.snapshot.len(), b.snapshot.len());
            }
            _ => panic!("variant changed in flight"),
        }
    }

    #[test]
    fn streamed_frames_decode_incrementally() {
        let m1 = Message::Update(update());
        let m2 = Message::Alert(alert());
        let f1 = encode(&m1).expect("update frame encodes");
        let f2 = encode(&m2).expect("alert frame encodes");
        let mut buf = FrameBuf::new();
        // Feed byte by byte; decoder must wait for full frames.
        let all: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();
        let mut decoded = Vec::new();
        for b in all {
            buf.push(&[b]);
            while let Some(m) = decode(&mut buf).expect("well-formed frame decodes") {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, vec![m1, m2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut raw = vec![WIRE_VERSION];
        raw.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        raw.extend_from_slice(&[0; 12]);
        let mut buf = FrameBuf::from(&raw[..]);
        assert!(matches!(decode(&mut buf), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn wrong_version_rejected_on_the_first_byte() {
        let mut frame = encode(&Message::Update(update())).expect("encodes");
        frame[0] = WIRE_VERSION + 1;
        let mut buf = FrameBuf::from(&frame[..1]);
        // One byte suffices: skew fails fast, before any length read.
        assert!(
            matches!(decode(&mut buf), Err(WireError::BadVersion { found }) if found == WIRE_VERSION + 1)
        );
        assert!(matches!(decode_datagram(&frame), Err(WireError::BadVersion { .. })));
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut frame = encode(&Message::Alert(alert())).expect("encodes");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut buf = FrameBuf::from(&frame[..]);
        assert!(matches!(decode(&mut buf), Err(WireError::BadChecksum { .. })));
        assert!(matches!(decode_datagram(&frame), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn garbage_payload_with_honest_checksum_rejected_by_codec() {
        let payload = b"wat";
        let mut raw = vec![WIRE_VERSION];
        raw.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        raw.extend_from_slice(&fnv1a(payload).to_be_bytes());
        raw.extend_from_slice(payload);
        let mut buf = FrameBuf::from(&raw[..]);
        assert!(matches!(decode(&mut buf), Err(WireError::Codec(_))));
    }

    #[test]
    fn datagram_must_hold_exactly_one_frame() {
        let frame = encode(&Message::Update(update())).expect("encodes");
        assert!(matches!(
            decode_datagram(&frame[..frame.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut padded = frame.clone();
        padded.push(0);
        assert!(matches!(decode_datagram(&padded), Err(WireError::TrailingBytes { extra: 1 })));
        assert!(matches!(decode_datagram(&[]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn short_buffer_returns_none() {
        let mut buf = FrameBuf::new();
        assert!(decode(&mut buf).expect("empty buffer is not an error").is_none());
        buf.push(&[WIRE_VERSION]);
        assert!(decode(&mut buf).expect("partial header is not an error").is_none());
    }

    #[test]
    fn framebuf_reclaims_consumed_space() {
        let frame = encode(&Message::Update(update())).expect("encodes");
        let mut buf = FrameBuf::new();
        for _ in 0..200 {
            buf.push(&frame);
            while decode(&mut buf).expect("own frames decode").is_some() {}
        }
        assert!(buf.is_empty());
        assert!(buf.buf.len() < 8192, "consumed bytes were reclaimed");
    }

    #[test]
    fn fidelity_levels_shrink() {
        let a = alert();
        let full = CompactAlert::of(&a, Fidelity::Full).encoded_len();
        let seqnos = CompactAlert::of(&a, Fidelity::Seqnos).encoded_len();
        let heads = CompactAlert::of(&a, Fidelity::Heads).encoded_len();
        let digest = CompactAlert::of(&a, Fidelity::Digest).encoded_len();
        assert!(full > seqnos, "{full} > {seqnos} expected");
        assert!(seqnos > heads, "{seqnos} > {heads} expected");
        assert!(seqnos > digest, "{seqnos} > {digest} expected");
    }

    #[test]
    fn digest_size_is_constant_in_the_degree() {
        // The paper's checksum point: history payload grows with the
        // condition degree, the digest does not.
        let deep = |degree: u64| {
            let seqnos: Vec<SeqNo> = (0..degree).map(|i| SeqNo::new(100 - i)).collect();
            Alert::new(
                CondId::new(1),
                HistoryFingerprint::single(VarId::new(0), seqnos),
                vec![],
                AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        let d2 = deep(2);
        let d8 = deep(8);
        assert!(
            CompactAlert::of(&d8, Fidelity::Seqnos).encoded_len()
                > CompactAlert::of(&d2, Fidelity::Seqnos).encoded_len()
        );
        // Digest length varies only with the decimal rendering of the
        // checksum, never with the degree.
        let l2 = CompactAlert::of(&d2, Fidelity::Digest).encoded_len();
        let l8 = CompactAlert::of(&d8, Fidelity::Digest).encoded_len();
        assert!(l2.abs_diff(l8) <= 20, "{l2} vs {l8}");
    }

    #[test]
    fn heads_keep_the_newest_seqno_per_variable() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Heads) {
            CompactAlert::Heads { heads, .. } => {
                assert_eq!(heads, vec![(VarId::new(3), SeqNo::new(17))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn digest_matches_core_digest() {
        let a = alert();
        match CompactAlert::of(&a, Fidelity::Digest) {
            CompactAlert::Digest { digest, cond, .. } => {
                assert_eq!(digest, rcm_core::ad::HistoryDigest::of(&a).get());
                assert_eq!(cond, a.cond);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compact_alert_serde_roundtrip() {
        let a = alert();
        for fidelity in [Fidelity::Digest, Fidelity::Heads, Fidelity::Seqnos, Fidelity::Full] {
            let c = CompactAlert::of(&a, fidelity);
            let json = serde_json::to_string(&c).expect("compact alert serializes");
            assert_eq!(
                serde_json::from_str::<CompactAlert>(&json).expect("compact alert parses back"),
                c
            );
        }
    }
}
