//! The evented AD listener: `TcpAlertListener`'s contract without the
//! per-connection reader threads.
//!
//! The threaded listener spawns one reader thread per accepted back
//! link and funnels events through a channel. Here each accepted
//! connection is its own [`ConnSource`] slot on the loop; a conn's
//! readable handler returns its decoded events as plain values and
//! the loop routes them to the owning [`ListenerSource`] *after* the
//! conn slot is settled — two slots are never borrowed at once, so no
//! shared state (and no lock) connects them.

// LOCK ORDER: no locks — the acceptor owns its sockets; results travel by channel.

use std::collections::HashSet;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;

use rcm_core::Alert;
use rcm_poll::TimerKey;
use rcm_sync::atomic::Ordering;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

use super::counters::ListenerCounters;
use super::event_loop::{timer_data, Core, KIND_IDLE};
use crate::wire::{self, FrameBuf, Message};

/// What one conn's readable round produced, for the listener to fold.
pub(super) enum ConnOut {
    Alert(Alert),
    Fin(u32),
    DecodeError,
}

/// The accept socket plus the listener-level termination state.
pub(super) struct ListenerSource {
    listener: TcpListener,
    deliver: Box<dyn FnMut(Alert) + Send>,
    counters: Arc<ListenerCounters>,
    fins: HashSet<u32>,
    expected_fins: usize,
    idle_timeout: Duration,
    last_activity: Instant,
    idle_timer: TimerKey,
    /// Slab slots of the connections riding on this listener.
    conns: Vec<usize>,
}

impl ListenerSource {
    pub(super) fn new(
        listener: TcpListener,
        expected_fins: usize,
        idle_timeout: Duration,
        deliver: Box<dyn FnMut(Alert) + Send>,
        idle_timer: TimerKey,
        now: Instant,
    ) -> Self {
        ListenerSource {
            listener,
            deliver,
            counters: Arc::new(ListenerCounters::default()),
            fins: HashSet::new(),
            expected_fins,
            idle_timeout,
            last_activity: now,
            idle_timer,
            conns: Vec::new(),
        }
    }

    pub(super) fn counters(&self) -> Arc<ListenerCounters> {
        Arc::clone(&self.counters)
    }

    pub(super) fn track_conn(&mut self, id: usize) {
        self.conns.push(id);
    }

    pub(super) fn take_conns(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.conns)
    }

    /// Accepts everything pending and returns the new streams, already
    /// non-blocking; the loop gives each a slot and registers it.
    pub(super) fn accept_ready(&mut self, core: &mut Core) -> Vec<TcpStream> {
        let mut accepted = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.last_activity = Instant::now();
                    self.counters.connections.fetch_add(1, Ordering::SeqCst);
                    if stream.set_nonblocking(true).is_ok() {
                        accepted.push(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        if accepted.is_empty() {
            core.counters.spurious_readiness.fetch_add(1, Ordering::SeqCst);
        }
        accepted
    }

    /// Folds one conn's events in. Returns `true` when every expected
    /// Fin has arrived and the listener should retire.
    pub(super) fn handle_outs(&mut self, outs: Vec<ConnOut>) -> bool {
        self.last_activity = Instant::now();
        for out in outs {
            match out {
                ConnOut::Alert(alert) => {
                    self.counters.alerts.fetch_add(1, Ordering::SeqCst);
                    (self.deliver)(alert);
                }
                ConnOut::Fin(node) => {
                    if self.fins.insert(node) {
                        self.counters.fins.fetch_add(1, Ordering::SeqCst);
                    }
                }
                ConnOut::DecodeError => {
                    self.counters.decode_errors.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        self.fins.len() >= self.expected_fins
    }

    /// Idle-backstop fire, lazily rescheduled like the front's.
    pub(super) fn on_idle(&mut self, core: &mut Core, id: usize) -> bool {
        let now = Instant::now();
        if now - self.last_activity >= self.idle_timeout {
            return true;
        }
        self.idle_timer = core
            .wheel
            .schedule_at(self.last_activity + self.idle_timeout, timer_data(id, KIND_IDLE));
        false
    }

    /// Deregisters the accept socket; the loop closes the conns.
    pub(super) fn shutdown(&mut self, core: &mut Core) {
        core.poller.deregister(self.listener.as_raw_fd());
        core.wheel.cancel(self.idle_timer);
    }
}

/// One accepted back-link connection: a stream plus its frame
/// reassembly buffer.
pub(super) struct ConnSource {
    stream: TcpStream,
    frames: FrameBuf,
    listener: usize,
    counters: Arc<ListenerCounters>,
}

impl ConnSource {
    pub(super) fn new(stream: TcpStream, listener: usize, counters: Arc<ListenerCounters>) -> Self {
        ConnSource { stream, frames: FrameBuf::new(), listener, counters }
    }

    pub(super) fn listener_id(&self) -> usize {
        self.listener
    }

    /// Reads and decodes everything available. Returns the decoded
    /// events and whether the connection is finished (EOF, socket
    /// error, or a fatal decode desync).
    pub(super) fn on_readable(&mut self, core: &mut Core) -> (Vec<ConnOut>, bool) {
        let mut outs = Vec::new();
        let mut progressed = false;
        let mut closed = false;
        'read: loop {
            match self.stream.read(&mut core.buf) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.counters.bytes_received.fetch_add(n as u64, Ordering::SeqCst);
                    self.frames.push(&core.buf[..n]);
                    loop {
                        match wire::decode(&mut self.frames) {
                            Ok(Some(Message::Alert(alert))) => outs.push(ConnOut::Alert(alert)),
                            Ok(Some(Message::AlertBatch(alerts))) => {
                                outs.extend(alerts.into_iter().map(ConnOut::Alert));
                            }
                            Ok(Some(Message::Fin { node })) => outs.push(ConnOut::Fin(node)),
                            Ok(Some(Message::Hello { .. })) => {}
                            Ok(Some(
                                Message::Update(_) | Message::UpdateBatch(_) | Message::Derived(_),
                            )) => {
                                // An update (raw or derived) on a back
                                // link is protocol abuse; count it,
                                // keep the stream.
                                outs.push(ConnOut::DecodeError);
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // A desynchronized stream cannot be
                                // trusted again.
                                outs.push(ConnOut::DecodeError);
                                closed = true;
                                break 'read;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        if !progressed && !closed {
            core.counters.spurious_readiness.fetch_add(1, Ordering::SeqCst);
        }
        (outs, closed)
    }

    pub(super) fn close(&mut self, core: &mut Core) {
        core.poller.deregister(self.stream.as_raw_fd());
    }
}
