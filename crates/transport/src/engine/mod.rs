//! The evented socket engine: every front link, back link and alert
//! listener as an explicit state machine on one readiness loop.
//!
//! The threaded transport (`udp.rs` / `tcp.rs`) spends a blocked OS
//! thread per socket — fine for a handful of links, fatal for the
//! paper's "numerous update streams" regime where one CE should hold
//! thousands of idle front links. This module keeps the *semantics* of
//! those links (same admission gate, same sever/queue/reconnect
//! machine, same counters) but runs them all on a single
//! [`EventLoop`] built from `rcm-poll`:
//!
//! * readiness comes from a [`rcm_poll::Poller`] (epoll/kqueue/poll);
//! * every deadline — backoff reconnects, batch `max_delay` flushes,
//!   finish deadlines, idle backstops — is a [`rcm_poll::TimerWheel`]
//!   entry, not a sleeping thread;
//! * caller threads (CE bodies, node mains) talk to the loop through a
//!   [`SubmitQueue`] whose sleep/wake handoff is model-checked in
//!   `crates/runtime/tests/loom.rs`;
//! * blocking states become explicit machine states: a partial write
//!   parks the frame's remainder as a continuation, a down link parks
//!   a reconnect timer, a `finish` parks a drain-then-Fin plan with a
//!   deadline — no thread ever sleeps inside the loop.
//!
//! The [`Engine`] selector (threaded is kept as the reference
//! implementation) threads from `Topology` through the runtime's
//! `SystemBuilder` and the node binaries' `--engine` flag; the
//! loopback equivalence suite pins both engines to the in-process
//! pipeline's output at 0% and 20% loss.
//!
//! Discipline (enforced by `cargo xtask lint`): nothing in this
//! directory blocks — no blocking `std::net` connects, no
//! `thread::sleep`, no `write_all`/`read_exact`, and no lock is ever
//! held across a poll. Cross-thread state is atomic counters and the
//! submit queue only.

// LOCK ORDER: no locks — engine selection is plain data; handles hold channels.

mod back;
mod counters;
mod event_loop;
mod front;
mod listener;

pub use back::{BackLinkSpec, EventedBackLink};
pub use counters::{BackLinkCounters, EngineCounters, IngressCounters, ListenerCounters};
pub use event_loop::EventLoop;
// Re-exported so the runtime's loom suite can exhaust the submit/wake
// handoff without depending on rcm-poll directly.
pub use rcm_poll::{SubmitQueue, Wake};

/// Which socket engine carries a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One blocked OS thread per socket — the reference
    /// implementation the evented engine is pinned against.
    Threaded,
    /// All sockets on one readiness loop (the default): holds 10k+
    /// idle front links in one process.
    #[default]
    Evented,
}

impl Engine {
    /// The CLI spelling (`--engine threaded|evented`).
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Threaded => "threaded",
            Engine::Evented => "evented",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Engine::Threaded),
            "evented" => Ok(Engine::Evented),
            other => Err(format!("unknown engine {other:?} (expected threaded|evented)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::{TcpListener, UdpSocket};

    use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
    use rcm_net::Backoff;
    use rcm_sync::time::Duration;

    use super::*;
    use crate::batch::BatchPolicy;
    use crate::udp::UdpFrontLink;

    #[test]
    fn engine_selector_round_trips_and_defaults_to_evented() {
        assert_eq!(Engine::default(), Engine::Evented);
        for engine in [Engine::Threaded, Engine::Evented] {
            assert_eq!(engine.as_str().parse::<Engine>(), Ok(engine));
            assert_eq!(engine.to_string(), engine.as_str());
        }
        assert!("epoll".parse::<Engine>().is_err());
    }

    fn alert(index: u64) -> Alert {
        Alert::new(
            CondId::new(0),
            HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(index)]),
            vec![Update::new(VarId::new(0), index, index as f64)],
            AlertId { ce: CeId::new(0), index },
        )
    }

    fn backoff() -> Backoff {
        Backoff::new(Duration::from_micros(200), Duration::from_millis(5), 11)
    }

    /// An evented ingress fed by the threaded UDP sender (the DM side
    /// is threaded in both engines) delivers the admitted updates in
    /// order and retires on the Fin.
    #[test]
    fn front_ingress_round_trips_updates_and_retires_on_fin() {
        let mut el = EventLoop::new().expect("event loop");
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = sock.local_addr().expect("addr");
        let (tx, rx) = rcm_sync::chan::unbounded();
        let counters = el
            .add_front_ingress(sock, 1, Duration::from_secs(5), move |u| {
                let _ = tx.send(u);
            })
            .expect("register ingress");
        let engine = rcm_sync::thread::spawn(move || el.run());

        let mut link = UdpFrontLink::connect(addr, 0).expect("connect");
        for i in 1..=5u64 {
            assert!(link.send_update(Update::new(VarId::new(0), i, i as f64)));
        }
        link.finish(3);
        let got: Vec<Update> = rx.iter().collect();
        engine.join().expect("loop thread");

        assert_eq!(got.len(), 5);
        assert!(got.iter().enumerate().all(|(i, u)| u.seqno.get() == i as u64 + 1));
        let stats = counters.snapshot();
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.fins, 1);
        assert_eq!(stats.decode_errors, 0);
    }

    /// A full evented round trip on one loop: back link → listener,
    /// with the lossless finish handshake ending both sources.
    #[test]
    fn back_link_and_listener_round_trip_on_one_loop() {
        let mut el = EventLoop::new().expect("event loop");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (tx, rx) = rcm_sync::chan::unbounded();
        let ad = el
            .add_alert_listener(listener, 1, Duration::from_secs(5), move |a| {
                let _ = tx.send(a);
            })
            .expect("register listener");
        let mut back = el.add_back_link(BackLinkSpec::new(addr, 0, backoff())).expect("back link");
        let link_stats = back.stats_handle();
        let engine = rcm_sync::thread::spawn(move || el.run());

        for i in 0..10 {
            back.send_alert(alert(i));
        }
        back.finish();
        let got: Vec<Alert> = rx.iter().collect();
        engine.join().expect("loop thread");

        assert_eq!(got.len(), 10);
        assert!(got.iter().enumerate().all(|(i, a)| a.id.index == i as u64));
        let sent = link_stats.snapshot();
        assert_eq!(sent.sent, 10);
        assert_eq!(sent.lost_overflow, 0);
        let heard = ad.snapshot();
        assert_eq!(heard.alerts, 10);
        assert_eq!(heard.fins, 1);
        assert_eq!(heard.connections, 1);
    }

    /// The same round trip pinned to the portable `poll(2)` backend.
    #[test]
    fn poll_fallback_backend_round_trips_too() {
        let mut el = EventLoop::with_poll_fallback().expect("event loop");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (tx, rx) = rcm_sync::chan::unbounded();
        el.add_alert_listener(listener, 1, Duration::from_secs(5), move |a| {
            let _ = tx.send(a);
        })
        .expect("register listener");
        let mut back = el.add_back_link(BackLinkSpec::new(addr, 0, backoff())).expect("back link");
        let engine = rcm_sync::thread::spawn(move || el.run());

        for i in 0..4 {
            back.send_alert(alert(i));
        }
        back.finish();
        let got: Vec<Alert> = rx.iter().collect();
        engine.join().expect("loop thread");
        assert_eq!(got.len(), 4);
    }

    /// With batching on, alerts parked under `max_count` still reach
    /// the listener via the timer wheel's `max_delay` flush — no
    /// caller-side flush, no finish needed to move them.
    #[test]
    fn batch_max_delay_flush_is_timer_driven() {
        let mut el = EventLoop::new().expect("event loop");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (tx, rx) = rcm_sync::chan::unbounded();
        el.add_alert_listener(listener, 1, Duration::from_secs(5), move |a| {
            let _ = tx.send(a);
        })
        .expect("register listener");
        let spec = BackLinkSpec::new(addr, 0, backoff()).batching(BatchPolicy {
            max_count: 100,
            max_bytes: 1 << 20,
            max_delay: Duration::from_millis(20),
        });
        let mut back = el.add_back_link(spec).expect("back link");
        let link_stats = back.stats_handle();
        let engine = rcm_sync::thread::spawn(move || el.run());

        for i in 0..3 {
            back.send_alert(alert(i));
        }
        // Well under max_count and no finish yet, so only the 20 ms
        // deadline can move these — recv blocks until the wheel fires.
        let first = rx.recv().expect("timer flush delivers");
        assert_eq!(first.id.index, 0);
        back.finish();
        let rest: Vec<Alert> = rx.iter().collect();
        engine.join().expect("loop thread");
        assert_eq!(rest.len(), 2);
        let stats = link_stats.snapshot();
        assert_eq!(stats.sent, 3);
        // All three alerts left in one batched frame.
        assert!(stats.frames_sent <= 3, "got {} frames", stats.frames_sent);
    }

    /// Send-after-finish is a caller bug the handle absorbs without
    /// deadlocking: the command is dropped, the loop stays healthy.
    #[test]
    fn send_after_finish_is_dropped_not_deadlocked() {
        let mut el = EventLoop::new().expect("event loop");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (tx, rx) = rcm_sync::chan::unbounded();
        el.add_alert_listener(listener, 1, Duration::from_secs(5), move |a| {
            let _ = tx.send(a);
        })
        .expect("register listener");
        let mut back = el.add_back_link(BackLinkSpec::new(addr, 0, backoff())).expect("back link");
        let engine = rcm_sync::thread::spawn(move || el.run());

        back.send_alert(alert(0));
        back.finish();
        back.send_alert(alert(1));
        back.finish();
        back.abandon();
        let got: Vec<Alert> = rx.iter().collect();
        engine.join().expect("loop thread");
        assert_eq!(got.len(), 1);
    }
}
