//! The evented CE ingress: `UdpFrontReceiver`'s contract as a state
//! machine.
//!
//! Semantics are pinned to the threaded receiver in `udp.rs`: the
//! same seqno gate, the same per-datagram counters, the same Fin and
//! idle-backstop termination — only the blocking `recv` loop becomes
//! "drain until `WouldBlock` on each readable event" and the idle
//! backstop becomes a lazily-rescheduled wheel timer.

// LOCK ORDER: no locks — front ingress state is owned by the loop thread.

use std::collections::HashSet;
use std::io;
use std::net::UdpSocket;
use std::os::fd::AsRawFd;

use rcm_core::Update;
use rcm_sync::atomic::Ordering;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

use super::counters::IngressCounters;
use super::event_loop::{timer_data, Core, KIND_IDLE};
use crate::gate::SeqGate;
use crate::wire::{self, Message};
use rcm_poll::TimerKey;

/// One CE UDP ingress on the loop.
pub(super) struct FrontSource {
    sock: UdpSocket,
    gate: SeqGate,
    deliver: Box<dyn FnMut(Update) + Send>,
    counters: Arc<IngressCounters>,
    fins_seen: HashSet<u32>,
    expected_fins: usize,
    idle_timeout: Duration,
    last_activity: Instant,
    idle_timer: TimerKey,
}

impl FrontSource {
    pub(super) fn new(
        sock: UdpSocket,
        expected_fins: usize,
        idle_timeout: Duration,
        deliver: Box<dyn FnMut(Update) + Send>,
        idle_timer: TimerKey,
        now: Instant,
    ) -> Self {
        FrontSource {
            sock,
            gate: SeqGate::new(),
            deliver,
            counters: Arc::new(IngressCounters::default()),
            fins_seen: HashSet::new(),
            expected_fins,
            idle_timeout,
            last_activity: now,
            idle_timer,
        }
    }

    pub(super) fn counters(&self) -> Arc<IngressCounters> {
        Arc::clone(&self.counters)
    }

    /// Drains the socket. Returns `true` when the ingress is done
    /// (every expected Fin seen, or a fatal socket error) — the source
    /// has already deregistered itself by then.
    pub(super) fn on_readable(&mut self, core: &mut Core) -> bool {
        let mut progressed = false;
        loop {
            let len = match self.sock.recv(&mut core.buf) {
                Ok(len) => len,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.retire(core);
                    return true;
                }
            };
            progressed = true;
            self.last_activity = Instant::now();
            self.counters.frames_received.fetch_add(1, Ordering::SeqCst);
            self.counters.bytes_received.fetch_add(len as u64, Ordering::SeqCst);
            match wire::decode_datagram(&core.buf[..len]) {
                Ok(Message::Update(update)) => self.admit(update),
                // A batch is delivered exactly as if its updates had
                // arrived as individual datagrams in batch order.
                Ok(Message::UpdateBatch(updates)) => {
                    for update in updates {
                        self.admit(update);
                    }
                }
                Ok(Message::Fin { node }) => {
                    if self.fins_seen.insert(node) {
                        self.counters.fins.fetch_add(1, Ordering::SeqCst);
                    }
                    if self.fins_seen.len() >= self.expected_fins {
                        self.retire(core);
                        return true;
                    }
                }
                // An alert or hello on a front link is protocol abuse;
                // count it with the undecodable garbage.
                Ok(_) | Err(_) => {
                    self.counters.decode_errors.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        if !progressed {
            core.counters.spurious_readiness.fetch_add(1, Ordering::SeqCst);
        }
        false
    }

    fn admit(&mut self, update: Update) {
        if self.gate.admit(&update) {
            self.counters.delivered.fetch_add(1, Ordering::SeqCst);
            (self.deliver)(update);
        } else {
            self.counters.dropped_stale.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Idle-backstop fire. Lazy rescheduling: activity never touches
    /// the wheel — the timer checks the real last-activity instant
    /// when it fires and re-arms for the remainder if traffic arrived.
    pub(super) fn on_idle(&mut self, core: &mut Core, id: usize) -> bool {
        let now = Instant::now();
        if now - self.last_activity >= self.idle_timeout {
            core.poller.deregister(self.sock.as_raw_fd());
            return true;
        }
        self.idle_timer = core
            .wheel
            .schedule_at(self.last_activity + self.idle_timeout, timer_data(id, KIND_IDLE));
        false
    }

    fn retire(&mut self, core: &mut Core) {
        core.poller.deregister(self.sock.as_raw_fd());
        core.wheel.cancel(self.idle_timer);
    }
}
