//! The evented CE → AD back link: `TcpBackLink`'s full
//! sever/queue/reconnect machine with every blocking state made
//! explicit.
//!
//! Where the threaded link blocks, this one parks state:
//!
//! * a partial write parks the frame's remainder as a
//!   [`PendingWrite`] continuation and waits for writability;
//! * a down link parks a reconnect timer paced by the same seeded
//!   [`Backoff`] schedule (and a connect attempt in flight is its own
//!   `Connecting` state, aborted by a capped timer — the evented
//!   analogue of `RECONNECT_CONNECT_CAP`);
//! * `finish` parks a drain-then-Fin plan with a deadline timer, so a
//!   dead peer costs a counted queue loss, never a hung thread.
//!
//! Counter timing matches the threaded link at frame *completion*
//! (the threaded `write_all` either fully succeeds or fails), so the
//! loopback equivalence suite can compare reports across engines.
//! The caller-side handle, [`EventedBackLink`], never blocks on
//! `send_alert`: everything past the bound is shed-with-counter, the
//! same back-pressure contract as the threaded `enqueue`.

// LOCK ORDER: no locks — back-link state machines are owned by the loop thread.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;

use rcm_core::Alert;
use rcm_net::Backoff;
use rcm_poll::{sys, Event, Interest, SubmitQueue, TimerKey, Token, Waker};
use rcm_sync::atomic::Ordering;
use rcm_sync::chan::{Receiver, Sender};
use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

use super::counters::BackLinkCounters;
use super::event_loop::{timer_data, Command, Core, KIND_DEADLINE, KIND_FLUSH, KIND_RECONNECT};
use crate::batch::BatchPolicy;
use crate::wire::{self, Codec, Message};

/// Same tail length as the threaded link.
const UNACKED_TAIL: usize = 8;

/// How long one in-flight reconnect attempt may sit in `Connecting`
/// before the abort timer kills it — the evented analogue of the
/// threaded path's `RECONNECT_CONNECT_CAP`.
const CONNECT_CAP: Duration = Duration::from_millis(250);

/// The initial connect keeps the threaded deployment-error semantics:
/// it happens on the caller thread and is worth waiting for. Bounded
/// only so a silently-dropping peer cannot park deployment forever.
const INITIAL_CONNECT_WAIT: Duration = Duration::from_secs(30);

/// Everything needed to open one evented back link — the same knobs
/// as `TcpBackLink`'s builder methods, gathered so the link can be
/// built inside the loop.
#[derive(Debug, Clone)]
pub struct BackLinkSpec {
    pub(super) peer: SocketAddr,
    pub(super) node: u32,
    pub(super) backoff: Backoff,
    pub(super) codec: Codec,
    pub(super) batch: BatchPolicy,
    pub(super) severs: Vec<(u64, Duration)>,
    pub(super) queue_cap: usize,
    pub(super) unacked_cap: usize,
    pub(super) blocking_deadline: Duration,
}

impl BackLinkSpec {
    /// A spec with the threaded link's defaults: binary codec, no
    /// batching, queue cap 1024, unacked tail 8, 10 s finish deadline.
    pub fn new(peer: SocketAddr, node: u32, backoff: Backoff) -> Self {
        BackLinkSpec {
            peer,
            node,
            backoff,
            codec: Codec::default(),
            batch: BatchPolicy::off(),
            severs: Vec::new(),
            queue_cap: 1024,
            unacked_cap: UNACKED_TAIL,
            blocking_deadline: Duration::from_secs(10),
        }
    }

    /// Selects the payload codec this link speaks (default binary).
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Enables frame batching under `policy` (default off).
    #[must_use]
    pub fn batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Scripts severances as `(at_send, down_for)` pairs; sorted
    /// internally, same contract as the threaded link.
    #[must_use]
    pub fn with_severs(mut self, mut severs: Vec<(u64, Duration)>) -> Self {
        severs.sort_by_key(|&(at, _)| at);
        self.severs = severs;
        self
    }

    /// Bounds the resend queue (default 1024).
    #[must_use]
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the unacked-tail length resent on reconnect (default 8;
    /// 0 disables duplicate resends).
    #[must_use]
    pub fn unacked_cap(mut self, cap: usize) -> Self {
        self.unacked_cap = cap;
        self
    }

    /// How long `finish` keeps retrying a dead peer before counting
    /// the queue as lost (default 10 s).
    #[must_use]
    pub fn reconnect_deadline(mut self, deadline: Duration) -> Self {
        self.blocking_deadline = deadline;
        self
    }
}

/// The caller-side handle to one evented back link. Lives on the CE
/// thread; every method is a non-blocking submit to the loop except
/// `finish`/`abandon`, which wait for the state machine's
/// acknowledgement (the evented analogue of the threaded link's
/// blocking drain).
pub struct EventedBackLink {
    id: usize,
    commands: SubmitQueue<Command>,
    waker: Waker,
    done_rx: Receiver<()>,
    counters: Arc<BackLinkCounters>,
    finished: bool,
}

impl std::fmt::Debug for EventedBackLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventedBackLink")
            .field("id", &self.id)
            .field("finished", &self.finished)
            .finish()
    }
}

impl EventedBackLink {
    pub(super) fn new(
        id: usize,
        commands: SubmitQueue<Command>,
        waker: Waker,
        done_rx: Receiver<()>,
        counters: Arc<BackLinkCounters>,
    ) -> Self {
        EventedBackLink { id, commands, waker, done_rx, counters, finished: false }
    }

    /// Hands one alert to the loop. Never blocks: a down peer costs a
    /// bounded queue slot (or a counted shed), never a stalled caller.
    pub fn send_alert(&mut self, alert: Alert) {
        if self.finished {
            return;
        }
        self.commands.submit(Command::Send { id: self.id, alert }, &self.waker);
    }

    /// Asks the loop to drain losslessly, send Fin, and close; waits
    /// for the acknowledgement. Same lossless contract (and same
    /// deadline-bounded loss accounting) as the threaded `finish`.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.commands.submit(Command::Finish { id: self.id }, &self.waker);
        // A loop that died early drops the sender; either way we stop.
        let _ = self.done_rx.recv();
    }

    /// Drops everything queued, best-effort Fin, close — the
    /// abandoned-replica path. Waits for the acknowledgement.
    pub fn abandon(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.commands.submit(Command::Abandon { id: self.id }, &self.waker);
        let _ = self.done_rx.recv();
    }

    /// A handle for reading the link's counters.
    pub fn stats_handle(&self) -> Arc<BackLinkCounters> {
        Arc::clone(&self.counters)
    }
}

/// One frame on its way out: bytes plus the continuation cursor, and
/// the bookkeeping that fires when the last byte lands.
struct PendingWrite {
    bytes: Vec<u8>,
    written: usize,
    /// The alerts this frame carries (empty for Hello/Fin control
    /// frames, which the counters ignore — matching the threaded
    /// link's `write_msg`).
    alerts: Vec<Alert>,
    resend: bool,
    fin: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Up,
    /// A non-blocking connect is in flight; writability (or the abort
    /// timer) resolves it.
    Connecting,
    Down,
}

/// The loop-side state machine for one back link.
pub(super) struct BackSource {
    peer: SocketAddr,
    node: u32,
    stream: Option<TcpStream>,
    state: LinkState,
    finishing: bool,
    fin_queued: bool,
    deadline_passed: bool,
    floor: Option<Instant>,
    severs: VecDeque<(u64, Duration)>,
    sends_seen: u64,
    backoff: Backoff,
    queue: VecDeque<Alert>,
    queue_cap: usize,
    unacked: VecDeque<Alert>,
    unacked_cap: usize,
    blocking_deadline: Duration,
    codec: Codec,
    batch: BatchPolicy,
    pending: Vec<Alert>,
    pending_bytes: usize,
    pending_since: Instant,
    out: VecDeque<PendingWrite>,
    registered_write: bool,
    reconnect_timer: Option<TimerKey>,
    flush_timer: Option<TimerKey>,
    deadline_timer: Option<TimerKey>,
    counters: Arc<BackLinkCounters>,
    done_tx: Sender<()>,
}

impl BackSource {
    /// Opens the link: the initial connect on the caller thread (a
    /// failure here is a deployment error, like the threaded
    /// `connect`), then registers the live stream with the loop and
    /// queues the Hello preamble.
    pub(super) fn open(
        spec: BackLinkSpec,
        core: &mut Core,
        id: usize,
        done_tx: Sender<()>,
    ) -> io::Result<Self> {
        let stream = sys::connect_nonblocking(spec.peer)?;
        let fd = stream.as_raw_fd();
        if !sys::await_writable(fd, INITIAL_CONNECT_WAIT)? {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "initial back-link connect"));
        }
        sys::take_socket_error(fd)?;
        // Alerts are small and latency-sensitive; never batch them
        // behind Nagle.
        stream.set_nodelay(true)?;
        core.poller.register(fd, Token(id), Interest::WRITE)?;
        let mut source = BackSource {
            peer: spec.peer,
            node: spec.node,
            stream: Some(stream),
            state: LinkState::Up,
            finishing: false,
            fin_queued: false,
            deadline_passed: false,
            floor: None,
            severs: spec.severs.into(),
            sends_seen: 0,
            backoff: spec.backoff,
            queue: VecDeque::new(),
            queue_cap: spec.queue_cap,
            unacked: VecDeque::new(),
            unacked_cap: spec.unacked_cap,
            blocking_deadline: spec.blocking_deadline,
            codec: spec.codec,
            batch: spec.batch,
            pending: Vec::new(),
            pending_bytes: 0,
            pending_since: Instant::now(),
            out: VecDeque::new(),
            registered_write: true,
            reconnect_timer: None,
            flush_timer: None,
            deadline_timer: None,
            counters: Arc::new(BackLinkCounters::default()),
            done_tx,
        };
        source.queue_control(Message::Hello { node: spec.node });
        Ok(source)
    }

    pub(super) fn counters(&self) -> Arc<BackLinkCounters> {
        Arc::clone(&self.counters)
    }

    // ---- command handlers (all return `true` when the link retired).

    pub(super) fn on_send(&mut self, core: &mut Core, id: usize, alert: Alert) -> bool {
        let now = Instant::now();
        if let Some(&(at, down_for)) = self.severs.front() {
            if self.sends_seen >= at {
                self.severs.pop_front();
                self.counters.severs.fetch_add(1, Ordering::SeqCst);
                // A severance landing while already down extends the
                // outage rather than stacking a second one.
                self.mark_down(core, id, Some(now + down_for));
            }
        }
        self.sends_seen += 1;
        if self.batch.is_off() {
            if self.state == LinkState::Up {
                self.queue_frame(vec![alert], false);
                self.drain_out(core, id);
            } else {
                self.enqueue(alert);
            }
            return false;
        }
        if self.state != LinkState::Up {
            // FIFO across the outage: the buffered batch (older) goes
            // to the queue before this alert does.
            self.spill_pending(core);
            self.enqueue(alert);
            return false;
        }
        if self.pending.iter().any(|a| *a == alert) {
            self.counters.dedup_suppressed.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let add = match wire::frame_len(self.codec, &Message::Alert(alert.clone())) {
            Ok(len) => len - wire::HEADER_LEN,
            Err(_) => 256,
        };
        if !self.pending.is_empty()
            && (self.batch.expired(self.pending_since)
                || self.batch.bytes_full(self.pending_bytes + add))
        {
            self.flush_pending(core, id);
        }
        if self.state != LinkState::Up {
            // The flush hit a write error and spilled; keep FIFO.
            self.enqueue(alert);
            return false;
        }
        if self.pending.is_empty() {
            self.pending_since = now;
            self.pending_bytes = wire::HEADER_LEN + 2; // tag + count
                                                       // The threaded link checks `max_delay` on the next send;
                                                       // the loop gets an explicit flush deadline instead.
            self.flush_timer = Some(
                core.wheel.schedule_at(now + self.batch.max_delay, timer_data(id, KIND_FLUSH)),
            );
        }
        self.pending.push(alert);
        self.pending_bytes += add;
        if self.batch.count_full(self.pending.len()) {
            self.flush_pending(core, id);
        }
        false
    }

    pub(super) fn on_finish(&mut self, core: &mut Core, id: usize) -> bool {
        self.finishing = true;
        self.flush_pending(core, id);
        if self.state == LinkState::Up {
            if !self.fin_queued {
                self.queue_fin();
            }
            return self.drain_out(core, id);
        }
        self.arm_finish_deadline(core, id);
        false
    }

    pub(super) fn on_abandon(&mut self, core: &mut Core, id: usize) -> bool {
        // Sanctioned loss: the queue dies with the replica, but the
        // listener still needs the end-of-stream marker.
        self.pending.clear();
        self.pending_bytes = 0;
        if let Some(key) = self.flush_timer.take() {
            core.wheel.cancel(key);
        }
        self.queue.clear();
        self.unacked.clear();
        self.finishing = true;
        if self.state == LinkState::Up {
            if !self.fin_queued {
                self.queue_fin();
            }
            return self.drain_out(core, id);
        }
        self.arm_finish_deadline(core, id);
        false
    }

    fn arm_finish_deadline(&mut self, core: &mut Core, id: usize) {
        let now = Instant::now();
        self.deadline_timer = Some(
            core.wheel.schedule_at(now + self.blocking_deadline, timer_data(id, KIND_DEADLINE)),
        );
        if self.state == LinkState::Down && self.reconnect_timer.is_none() {
            self.schedule_reconnect(core, id, now);
        }
    }

    // ---- readiness and timers.

    pub(super) fn on_event(&mut self, core: &mut Core, id: usize, ev: Event) -> bool {
        match self.state {
            LinkState::Connecting => self.on_connect_resolved(core, id, ev),
            LinkState::Up => {
                if ev.error {
                    self.counters.io_errors.fetch_add(1, Ordering::SeqCst);
                    self.mark_down(core, id, None);
                    return self.after_down(core, id);
                }
                if ev.writable {
                    return self.drain_out(core, id);
                }
                false
            }
            // The fd was deregistered on the way down; a straggler
            // event for the old registration is a no-op.
            LinkState::Down => false,
        }
    }

    pub(super) fn on_timer(&mut self, core: &mut Core, id: usize, kind: u64) -> bool {
        match kind {
            KIND_RECONNECT => {
                self.reconnect_timer = None;
                match self.state {
                    LinkState::Connecting => {
                        // The in-flight attempt outlived the cap.
                        self.close_stream(core);
                        self.state = LinkState::Down;
                        let delay = self.backoff.next_delay();
                        self.schedule_reconnect(core, id, Instant::now() + delay);
                    }
                    LinkState::Down => self.attempt_connect(core, id),
                    LinkState::Up => {}
                }
                false
            }
            KIND_FLUSH => {
                self.flush_timer = None;
                if !self.pending.is_empty() {
                    return self.flush_pending(core, id);
                }
                false
            }
            KIND_DEADLINE => {
                self.deadline_timer = None;
                if !self.finishing {
                    return false;
                }
                if self.state == LinkState::Up {
                    // Mid-drain: let it run, but a fresh outage now
                    // ends the finish instead of restarting the clock.
                    self.deadline_passed = true;
                    return false;
                }
                self.abort_finish(core);
                true
            }
            _ => false,
        }
    }

    fn on_connect_resolved(&mut self, core: &mut Core, id: usize, ev: Event) -> bool {
        if let Some(key) = self.reconnect_timer.take() {
            core.wheel.cancel(key);
        }
        let sock_err = match &self.stream {
            Some(stream) => sys::take_socket_error(stream.as_raw_fd()).err(),
            None => Some(io::Error::other("no stream in Connecting state")),
        };
        if ev.error || sock_err.is_some() {
            self.close_stream(core);
            self.state = LinkState::Down;
            let delay = self.backoff.next_delay();
            self.schedule_reconnect(core, id, Instant::now() + delay);
            return false;
        }
        // Connected: same sequence as the threaded reconnect — Hello,
        // unacked-tail duplicates, then the queue in FIFO order.
        if let Some(stream) = &self.stream {
            let _ = stream.set_nodelay(true);
        }
        self.state = LinkState::Up;
        self.registered_write = true; // still registered for WRITE
        self.floor = None;
        self.backoff.reset();
        self.counters.reconnects.fetch_add(1, Ordering::SeqCst);
        self.queue_control(Message::Hello { node: self.node });
        self.resend_unacked();
        while let Some(alert) = self.queue.pop_front() {
            self.queue_frame(vec![alert], false);
        }
        if self.finishing && !self.fin_queued {
            self.queue_fin();
        }
        self.drain_out(core, id)
    }

    fn attempt_connect(&mut self, core: &mut Core, id: usize) {
        self.counters.attempts.fetch_add(1, Ordering::SeqCst);
        let now = Instant::now();
        if self.floor.is_some_and(|f| now < f) {
            let delay = self.backoff.next_delay();
            self.schedule_reconnect(core, id, now + delay);
            return;
        }
        match sys::connect_nonblocking(self.peer) {
            Ok(stream) => {
                let fd = stream.as_raw_fd();
                if core.poller.register(fd, Token(id), Interest::WRITE).is_ok() {
                    self.stream = Some(stream);
                    self.state = LinkState::Connecting;
                    self.registered_write = true;
                    // The abort timer doubles as the reconnect key.
                    self.schedule_reconnect(core, id, now + CONNECT_CAP);
                    return;
                }
                let delay = self.backoff.next_delay();
                self.schedule_reconnect(core, id, now + delay);
            }
            Err(_) => {
                let delay = self.backoff.next_delay();
                self.schedule_reconnect(core, id, now + delay);
            }
        }
    }

    // ---- the write path.

    /// Encodes `alerts` as one frame (plain `Alert` for a lone alert,
    /// `AlertBatch` otherwise — the threaded wire format) and parks it
    /// on the out-queue. Counting happens at completion.
    fn queue_frame(&mut self, alerts: Vec<Alert>, resend: bool) {
        let mut bytes = Vec::new();
        let result = match alerts.as_slice() {
            [single] => wire::encode_into(self.codec, &Message::Alert(single.clone()), &mut bytes),
            many => wire::encode_alerts_into(self.codec, many, &mut bytes),
        };
        if result.is_err() {
            // Unreachable for well-formed alerts; counted, not
            // panicked. Duplicates (resends) are simply dropped.
            self.counters.io_errors.fetch_add(1, Ordering::SeqCst);
            if !resend {
                for alert in alerts {
                    self.enqueue(alert);
                }
            }
            return;
        }
        self.out.push_back(PendingWrite { bytes, written: 0, alerts, resend, fin: false });
    }

    fn queue_control(&mut self, msg: Message) {
        let fin = matches!(msg, Message::Fin { .. });
        match wire::encode_with(self.codec, &msg) {
            Ok(bytes) => {
                self.out.push_back(PendingWrite {
                    bytes,
                    written: 0,
                    alerts: Vec::new(),
                    resend: false,
                    fin,
                });
                if fin {
                    self.fin_queued = true;
                }
            }
            Err(_) => {
                self.counters.io_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn queue_fin(&mut self) {
        self.queue_control(Message::Fin { node: self.node });
    }

    fn resend_unacked(&mut self) {
        // Pure duplicates, exactly the adversarial input the AD
        // filters must tolerate; one frame each, like the threaded
        // resend.
        let tail: Vec<Alert> = self.unacked.iter().cloned().collect();
        for alert in tail {
            self.queue_frame(vec![alert], true);
        }
    }

    /// Writes as much of the out-queue as the socket takes right now.
    /// Returns `true` when the Fin frame completed and the link
    /// retired (or a failure while finishing past the deadline ended
    /// it as counted loss).
    fn drain_out(&mut self, core: &mut Core, id: usize) -> bool {
        while self.state == LinkState::Up && !self.out.is_empty() {
            let Some(stream) = self.stream.as_mut() else { break };
            let Some(front) = self.out.front_mut() else { break };
            match stream.write(&front.bytes[front.written..]) {
                Ok(n) => {
                    front.written += n;
                    if front.written >= front.bytes.len() {
                        if let Some(done) = self.out.pop_front() {
                            if self.complete_frame(core, done) {
                                return true;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.counters.io_errors.fetch_add(1, Ordering::SeqCst);
                    self.mark_down(core, id, None);
                    return self.after_down(core, id);
                }
            }
        }
        self.update_interest(core, id);
        false
    }

    /// Completion bookkeeping for one fully-written frame — the moment
    /// the threaded link's `write_all` would have returned `Ok`.
    fn complete_frame(&mut self, core: &mut Core, frame: PendingWrite) -> bool {
        if frame.fin {
            self.retire(core);
            return true;
        }
        if frame.alerts.is_empty() {
            return false; // Hello: uncounted, like write_msg
        }
        let len = frame.bytes.len() as u64;
        self.counters.frames_sent.fetch_add(1, Ordering::SeqCst);
        self.counters.bytes_sent.fetch_add(len, Ordering::SeqCst);
        if frame.resend {
            self.counters.resent_duplicates.fetch_add(1, Ordering::SeqCst);
        } else {
            self.counters.sent.fetch_add(frame.alerts.len() as u64, Ordering::SeqCst);
            for alert in frame.alerts {
                self.push_unacked(alert);
            }
        }
        false
    }

    fn update_interest(&mut self, core: &mut Core, id: usize) {
        let want = self.state == LinkState::Up && !self.out.is_empty();
        if want == self.registered_write {
            return;
        }
        if let Some(stream) = &self.stream {
            let interest =
                if want { Interest::WRITE } else { Interest { read: false, write: false } };
            let _ = core.poller.reregister(stream.as_raw_fd(), Token(id), interest);
        }
        self.registered_write = want;
    }

    // ---- outage handling.

    fn mark_down(&mut self, core: &mut Core, id: usize, floor: Option<Instant>) {
        self.close_stream(core);
        self.state = LinkState::Down;
        self.floor = match (self.floor, floor) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.backoff.reset();
        // In-flight frames spill to the queue FRONT in order: they are
        // older than anything queued after them. (The queue is empty
        // while up, so in practice this rebuilds FIFO exactly.) A
        // partially-written frame is re-sent whole — the peer's frame
        // buffer discards the torn prefix with the dead connection.
        let mut spilled: Vec<Alert> = Vec::new();
        for frame in self.out.drain(..) {
            if frame.fin {
                self.fin_queued = false; // the finish plan re-issues it
            }
            if !frame.resend {
                spilled.extend(frame.alerts);
            }
        }
        for alert in spilled.into_iter().rev() {
            self.queue.push_front(alert);
        }
        // The buffered batch spills behind everything already queued.
        self.spill_pending(core);
        if let Some(key) = self.flush_timer.take() {
            core.wheel.cancel(key);
        }
        self.schedule_reconnect(core, id, Instant::now());
    }

    /// After a fresh outage: a finish already past its deadline ends
    /// now as counted loss instead of riding a new reconnect cycle.
    fn after_down(&mut self, core: &mut Core, id: usize) -> bool {
        let _ = id;
        if self.finishing && self.deadline_passed {
            self.abort_finish(core);
            return true;
        }
        false
    }

    fn abort_finish(&mut self, core: &mut Core) {
        let dropped = self.queue.len() as u64;
        self.queue.clear();
        if dropped > 0 {
            self.counters.lost_overflow.fetch_add(dropped, Ordering::SeqCst);
        }
        self.retire(core);
    }

    /// Final cleanup + the caller's acknowledgement.
    fn retire(&mut self, core: &mut Core) {
        self.close_stream(core);
        for key in
            [self.reconnect_timer.take(), self.flush_timer.take(), self.deadline_timer.take()]
                .into_iter()
                .flatten()
        {
            core.wheel.cancel(key);
        }
        let _ = self.done_tx.send(());
    }

    fn close_stream(&mut self, core: &mut Core) {
        if let Some(stream) = self.stream.take() {
            core.poller.deregister(stream.as_raw_fd());
        }
        self.registered_write = false;
    }

    fn schedule_reconnect(&mut self, core: &mut Core, id: usize, at: Instant) {
        if let Some(key) = self.reconnect_timer.take() {
            core.wheel.cancel(key);
        }
        self.reconnect_timer = Some(core.wheel.schedule_at(at, timer_data(id, KIND_RECONNECT)));
    }

    // ---- queue bookkeeping (same contract as the threaded link).

    fn flush_pending(&mut self, core: &mut Core, id: usize) -> bool {
        if let Some(key) = self.flush_timer.take() {
            core.wheel.cancel(key);
        }
        if self.pending.is_empty() {
            return false;
        }
        if self.state != LinkState::Up {
            self.spill_pending(core);
            return false;
        }
        let pending = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        self.queue_frame(pending, false);
        self.drain_out(core, id)
    }

    fn spill_pending(&mut self, _core: &mut Core) {
        let pending = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        for alert in pending {
            self.enqueue(alert);
        }
    }

    fn enqueue(&mut self, alert: Alert) {
        if self.queue.len() >= self.queue_cap {
            // Strictly non-blocking back-pressure: shed the oldest and
            // count it, never stall anything on a down peer.
            self.queue.pop_front();
            self.counters.lost_overflow.fetch_add(1, Ordering::SeqCst);
            self.counters.shed.fetch_add(1, Ordering::SeqCst);
        }
        self.queue.push_back(alert);
        self.counters.observe_queue_depth(self.queue.len() as u64);
    }

    fn push_unacked(&mut self, alert: Alert) {
        if self.unacked_cap > 0 {
            if self.unacked.len() == self.unacked_cap {
                self.unacked.pop_front();
            }
            self.unacked.push_back(alert);
        }
    }
}
