//! The readiness loop itself: one thread, one poller, one timer
//! wheel, and a slab of connection state machines.
//!
//! Ownership discipline: every socket lives inside exactly one
//! [`Source`] slot, and every slot is touched only by the loop thread.
//! Caller threads reach the loop exclusively through the
//! [`SubmitQueue`] + [`Waker`] pair, so no lock is ever shared between
//! a caller and the loop (and none is ever held across the poll).
//!
//! The slab never reuses slots: a finished source leaves `None`
//! behind, which makes a late timer fire or a stale readiness event
//! for that token a silent no-op instead of a use-after-retire bug.
//! Timer payloads encode `(slot << 2) | kind`, so one wheel serves
//! idle backstops, reconnect pacing, batch flush deadlines, and
//! finish deadlines without per-source timer threads.

// LOCK ORDER: no locks on the loop thread — cross-thread handoff is the
// SubmitQueue (whose single mutex is documented in rcm-poll) plus atomics.

use std::io;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;

use rcm_core::{Alert, Update};
use rcm_poll::{Event, Interest, Poller, SubmitQueue, TimerWheel, Token, WAKE_TOKEN};
use rcm_sync::atomic::Ordering;
use rcm_sync::time::{Duration, Instant};
use rcm_sync::Arc;

use super::back::{BackLinkSpec, BackSource, EventedBackLink};
use super::counters::{EngineCounters, IngressCounters, ListenerCounters};
use super::front::FrontSource;
use super::listener::{ConnSource, ListenerSource};

/// Timer-wheel resolution. Coarser than the OS clock on purpose: every
/// engine deadline (backoff floors, batch `max_delay`, idle backstops)
/// is milliseconds-scale, and a coarse tick keeps the wheel's cascade
/// work near zero.
const TICK: Duration = Duration::from_millis(1);

/// Wheel size: one lap covers 512 ms before cascading. Longer
/// deadlines (idle backstops, finish deadlines) just take extra laps.
const BUCKETS: usize = 512;

/// Timer kinds, packed into the low bits of the wheel's `data` word.
pub(super) const KIND_IDLE: u64 = 0;
pub(super) const KIND_RECONNECT: u64 = 1;
pub(super) const KIND_FLUSH: u64 = 2;
pub(super) const KIND_DEADLINE: u64 = 3;

/// Packs a slab slot and a timer kind into one wheel payload.
pub(super) fn timer_data(id: usize, kind: u64) -> u64 {
    ((id as u64) << 2) | kind
}

/// What caller threads may ask of the loop. Every variant is
/// fire-and-forget except that `Finish`/`Abandon` are acknowledged on
/// the link's done channel once the state machine retires.
pub(super) enum Command {
    /// Transmit (or queue) one alert on back link `id`.
    Send { id: usize, alert: Alert },
    /// Drain link `id` losslessly, send Fin, then acknowledge.
    Finish { id: usize },
    /// Drop link `id`'s queue, best-effort Fin, then acknowledge.
    Abandon { id: usize },
}

/// State shared between the loop and every source: the poller, the
/// wheel, the engine counters, and one reused read buffer (a per-link
/// buffer would cost 64 KiB × 10k links; readiness means one is
/// enough).
pub(super) struct Core {
    pub poller: Poller,
    pub wheel: TimerWheel,
    pub counters: Arc<EngineCounters>,
    pub buf: Box<[u8]>,
}

/// One slab slot: every socket the loop owns, as a state machine.
enum Source {
    Front(FrontSource),
    Back(BackSource),
    Listener(ListenerSource),
    Conn(ConnSource),
}

/// The evented engine: owns every socket of one node process and runs
/// them all on a single readiness loop.
///
/// Build it on the caller thread (registration happens eagerly, so
/// bind/connect errors surface as `io::Result` right here), then hand
/// the loop to a thread via [`run`](Self::run). Handles returned by
/// `add_*` stay valid after the move.
pub struct EventLoop {
    core: Core,
    commands: SubmitQueue<Command>,
    sources: Vec<Option<Source>>,
    /// Primary sources (fronts, listeners, back links) still running.
    /// Conn sources ride on their listener and are not counted — the
    /// loop exits when the last primary source retires.
    active: usize,
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("sources", &self.sources.len())
            .field("active", &self.active)
            .finish()
    }
}

impl EventLoop {
    /// A loop on the platform's best readiness backend (epoll on
    /// Linux, kqueue on macOS, `poll(2)` elsewhere).
    ///
    /// # Errors
    ///
    /// Propagates poller-construction failure (fd exhaustion).
    pub fn new() -> io::Result<Self> {
        Ok(Self::from_poller(Poller::new()?))
    }

    /// A loop pinned to the portable `poll(2)` backend — the
    /// equivalence suite runs both to keep the fallback honest.
    ///
    /// # Errors
    ///
    /// Propagates poller-construction failure (fd exhaustion).
    pub fn with_poll_fallback() -> io::Result<Self> {
        Ok(Self::from_poller(Poller::with_poll_fallback()?))
    }

    fn from_poller(poller: Poller) -> Self {
        EventLoop {
            core: Core {
                poller,
                wheel: TimerWheel::new(Instant::now(), TICK, BUCKETS),
                counters: Arc::new(EngineCounters::default()),
                buf: vec![0u8; 65_535].into_boxed_slice(),
            },
            commands: SubmitQueue::new(),
            sources: Vec::new(),
            active: 0,
        }
    }

    /// The loop-level counters (wakeups, timer fires, spurious
    /// readiness), readable while the loop runs.
    pub fn counters(&self) -> Arc<EngineCounters> {
        Arc::clone(&self.core.counters)
    }

    fn alloc(&mut self) -> usize {
        self.sources.push(None);
        self.sources.len() - 1
    }

    /// Adds one CE UDP ingress: the evented [`UdpFrontReceiver`]. The
    /// socket is made non-blocking and every admitted update is handed
    /// to `deliver` on the loop thread, in arrival order, until every
    /// expected Fin arrived or the idle backstop fires.
    ///
    /// [`UdpFrontReceiver`]: crate::UdpFrontReceiver
    ///
    /// # Errors
    ///
    /// Propagates socket-configuration and registration failures.
    pub fn add_front_ingress(
        &mut self,
        sock: UdpSocket,
        expected_fins: usize,
        idle_timeout: Duration,
        deliver: impl FnMut(Update) + Send + 'static,
    ) -> io::Result<Arc<IngressCounters>> {
        sock.set_nonblocking(true)?;
        let id = self.alloc();
        self.core.poller.register(sock.as_raw_fd(), Token(id), Interest::READ)?;
        let now = Instant::now();
        let timer = self.core.wheel.schedule_at(now + idle_timeout, timer_data(id, KIND_IDLE));
        let source =
            FrontSource::new(sock, expected_fins, idle_timeout, Box::new(deliver), timer, now);
        let counters = source.counters();
        self.sources[id] = Some(Source::Front(source));
        self.active += 1;
        Ok(counters)
    }

    /// Adds the AD-side alert listener: the evented
    /// [`TcpAlertListener`]. Accepted connections become their own
    /// sources; every decoded alert is handed to `deliver` on the loop
    /// thread until every expected Fin arrived or the idle backstop
    /// fires.
    ///
    /// [`TcpAlertListener`]: crate::TcpAlertListener
    ///
    /// # Errors
    ///
    /// Propagates socket-configuration and registration failures.
    pub fn add_alert_listener(
        &mut self,
        listener: TcpListener,
        expected_fins: usize,
        idle_timeout: Duration,
        deliver: impl FnMut(Alert) + Send + 'static,
    ) -> io::Result<Arc<ListenerCounters>> {
        listener.set_nonblocking(true)?;
        let id = self.alloc();
        self.core.poller.register(listener.as_raw_fd(), Token(id), Interest::READ)?;
        let now = Instant::now();
        let timer = self.core.wheel.schedule_at(now + idle_timeout, timer_data(id, KIND_IDLE));
        let source = ListenerSource::new(
            listener,
            expected_fins,
            idle_timeout,
            Box::new(deliver),
            timer,
            now,
        );
        let counters = source.counters();
        self.sources[id] = Some(Source::Listener(source));
        self.active += 1;
        Ok(counters)
    }

    /// Adds one CE → AD back link: the evented [`TcpBackLink`]. The
    /// initial connect happens here, on the caller thread, with the
    /// threaded path's deployment-error semantics; everything after
    /// (severs, reconnects, batching, the lossless drain) runs as a
    /// state machine on the loop.
    ///
    /// [`TcpBackLink`]: crate::TcpBackLink
    ///
    /// # Errors
    ///
    /// Propagates the initial connect failure — a back link that never
    /// existed is a deployment error, not an outage to ride out.
    pub fn add_back_link(&mut self, spec: BackLinkSpec) -> io::Result<EventedBackLink> {
        let id = self.alloc();
        let (done_tx, done_rx) = rcm_sync::chan::unbounded();
        let source = BackSource::open(spec, &mut self.core, id, done_tx)?;
        let counters = source.counters();
        self.sources[id] = Some(Source::Back(source));
        self.active += 1;
        Ok(EventedBackLink::new(
            id,
            self.commands.clone(),
            self.core.poller.waker(),
            done_rx,
            counters,
        ))
    }

    /// Runs until every primary source has retired: fronts and
    /// listeners when their Fins (or idle backstops) arrive, back
    /// links when their owner finishes or abandons them. Call from a
    /// dedicated thread; the handles returned by `add_*` remain the
    /// caller-side API.
    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        let mut cmds: Vec<Command> = Vec::new();
        while self.active > 0 {
            self.commands.drain(&mut cmds);
            for cmd in cmds.drain(..) {
                self.handle_command(cmd);
            }
            fired.clear();
            let fires = self.core.wheel.advance(Instant::now(), &mut fired);
            if fires > 0 {
                self.core.counters.timer_fires.fetch_add(fires as u64, Ordering::SeqCst);
            }
            for data in fired.drain(..) {
                self.handle_timer(data);
            }
            if self.active == 0 {
                break;
            }
            // No deadline pending means the wait parks until readiness
            // or an explicit wake — the waker covers submits that race
            // with `prepare_sleep`.
            let timeout = self.core.wheel.next_deadline().map(|d| d - Instant::now());
            if !self.commands.prepare_sleep() {
                continue;
            }
            let waited = self.core.poller.wait(&mut events, timeout);
            self.commands.wake_done();
            if waited.is_err() {
                // A broken poller cannot make progress; bail rather
                // than spin. Dropping the sources closes every socket
                // and unblocks finish() callers via their channels.
                return;
            }
            self.core.counters.wakeups.fetch_add(1, Ordering::SeqCst);
            for i in 0..events.len() {
                let ev = events[i];
                if ev.token != WAKE_TOKEN {
                    self.dispatch_event(ev);
                }
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) {
        let (id, is_send) = match &cmd {
            Command::Send { id, .. } => (*id, true),
            Command::Finish { id } | Command::Abandon { id } => (*id, false),
        };
        let Some(slot) = self.sources.get_mut(id) else { return };
        // A command for a retired link (send-after-finish) is dropped;
        // the handle's own `finished` flag keeps finish/abandon from
        // waiting on an acknowledgement that cannot come.
        let Some(source) = slot.take() else { return };
        let Source::Back(mut back) = source else {
            *slot = Some(source);
            return;
        };
        let done = match cmd {
            Command::Send { alert, .. } => back.on_send(&mut self.core, id, alert),
            Command::Finish { .. } => back.on_finish(&mut self.core, id),
            Command::Abandon { .. } => back.on_abandon(&mut self.core, id),
        };
        debug_assert!(!is_send || !done, "a send never retires the link");
        if done {
            self.active -= 1;
        } else {
            self.sources[id] = Some(Source::Back(back));
        }
    }

    fn handle_timer(&mut self, data: u64) {
        let id = (data >> 2) as usize;
        let kind = data & 0b11;
        let Some(slot) = self.sources.get_mut(id) else { return };
        let Some(source) = slot.take() else { return };
        match source {
            Source::Front(mut front) if kind == KIND_IDLE => {
                if front.on_idle(&mut self.core, id) {
                    self.active -= 1;
                } else {
                    self.sources[id] = Some(Source::Front(front));
                }
            }
            Source::Listener(mut listener) if kind == KIND_IDLE => {
                if listener.on_idle(&mut self.core, id) {
                    self.finish_listener(listener);
                } else {
                    self.sources[id] = Some(Source::Listener(listener));
                }
            }
            Source::Back(mut back) => {
                if back.on_timer(&mut self.core, id, kind) {
                    self.active -= 1;
                } else {
                    self.sources[id] = Some(Source::Back(back));
                }
            }
            // A slot outliving its timer kind is a stale fire; put the
            // source back untouched.
            other => *slot = Some(other),
        }
    }

    fn dispatch_event(&mut self, ev: Event) {
        let id = ev.token.0;
        let Some(slot) = self.sources.get_mut(id) else { return };
        let Some(source) = slot.take() else { return };
        match source {
            Source::Front(mut front) => {
                if front.on_readable(&mut self.core) {
                    self.active -= 1;
                } else {
                    self.sources[id] = Some(Source::Front(front));
                }
            }
            Source::Back(mut back) => {
                if back.on_event(&mut self.core, id, ev) {
                    self.active -= 1;
                } else {
                    self.sources[id] = Some(Source::Back(back));
                }
            }
            Source::Listener(mut listener) => {
                let accepted = listener.accept_ready(&mut self.core);
                for stream in accepted {
                    let cid = self.alloc();
                    let fd = stream.as_raw_fd();
                    if self.core.poller.register(fd, Token(cid), Interest::READ).is_ok() {
                        listener.track_conn(cid);
                        self.sources[cid] =
                            Some(Source::Conn(ConnSource::new(stream, id, listener.counters())));
                    }
                }
                self.sources[id] = Some(Source::Listener(listener));
            }
            Source::Conn(mut conn) => {
                let lid = conn.listener_id();
                let (outs, closed) = conn.on_readable(&mut self.core);
                if closed {
                    conn.close(&mut self.core);
                } else {
                    self.sources[id] = Some(Source::Conn(conn));
                }
                // Routed only after the conn slot is settled, so the
                // listener (a different slot) can be borrowed freely.
                self.route_conn_outs(lid, outs);
            }
        }
    }

    fn route_conn_outs(&mut self, lid: usize, outs: Vec<super::listener::ConnOut>) {
        if outs.is_empty() {
            return;
        }
        let Some(slot) = self.sources.get_mut(lid) else { return };
        let listener = match slot.take() {
            Some(Source::Listener(listener)) => listener,
            other => {
                *slot = other;
                return;
            }
        };
        let mut listener = listener;
        if listener.handle_outs(outs) {
            self.finish_listener(listener);
        } else {
            self.sources[lid] = Some(Source::Listener(listener));
        }
    }

    /// Retires a listener: closes the accept socket, then closes every
    /// connection that rode on it. Dropping the listener drops the
    /// caller's `deliver` closure, which is what ends the downstream
    /// (the AD body sees its channel close).
    fn finish_listener(&mut self, mut listener: ListenerSource) {
        listener.shutdown(&mut self.core);
        for cid in listener.take_conns() {
            match self.sources.get_mut(cid).and_then(Option::take) {
                Some(Source::Conn(mut conn)) => conn.close(&mut self.core),
                Some(other) => self.sources[cid] = Some(other),
                None => {}
            }
        }
        self.active -= 1;
    }
}
