//! Lock-free counter blocks for the evented engine.
//!
//! The threaded links share their counters through `Arc<Mutex<…>>`
//! handles; the event loop cannot — this directory bans holding any
//! lock across the poll, and the loop thread is the only writer
//! anyway. Each block here is a set of `rcm_sync` atomics written by
//! the loop and snapshotted (into the exact same report structs the
//! threaded path fills) by whoever holds the `Arc`.
//!
//! Peaks (`queued_peak`) use a load-compare-store pair instead of a
//! fetch-max: the loop thread is the sole writer, so the pair cannot
//! race, and the shim's model-checker atomics stay minimal.

// LOCK ORDER: no locks — cross-thread visibility is atomics only.

use rcm_sync::atomic::{AtomicU64, Ordering};

use crate::report::{EngineStats, IngressStats, ListenerStats, TcpLinkStats};

/// Event-loop level counters ([`EngineStats`] as atomics).
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Readiness-wait returns.
    pub wakeups: AtomicU64,
    /// Timer-wheel deadlines fired.
    pub timer_fires: AtomicU64,
    /// Readable events that yielded no progress.
    pub spurious_readiness: AtomicU64,
}

impl EngineCounters {
    /// The counters as a plain [`EngineStats`] block.
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            wakeups: self.wakeups.load(Ordering::SeqCst),
            timer_fires: self.timer_fires.load(Ordering::SeqCst),
            spurious_readiness: self.spurious_readiness.load(Ordering::SeqCst),
        }
    }
}

/// Per-ingress counters ([`IngressStats`] as atomics).
#[derive(Debug, Default)]
pub struct IngressCounters {
    /// Datagrams received.
    pub frames_received: AtomicU64,
    /// Updates admitted by the seqno gate.
    pub delivered: AtomicU64,
    /// Updates discarded as reordered/duplicated.
    pub dropped_stale: AtomicU64,
    /// Undecodable (or protocol-abusive) datagrams.
    pub decode_errors: AtomicU64,
    /// Distinct end-of-stream markers seen.
    pub fins: AtomicU64,
    /// Wire bytes received, headers included.
    pub bytes_received: AtomicU64,
}

impl IngressCounters {
    /// The counters as a plain [`IngressStats`] block.
    pub fn snapshot(&self) -> IngressStats {
        IngressStats {
            frames_received: self.frames_received.load(Ordering::SeqCst),
            delivered: self.delivered.load(Ordering::SeqCst),
            dropped_stale: self.dropped_stale.load(Ordering::SeqCst),
            decode_errors: self.decode_errors.load(Ordering::SeqCst),
            fins: self.fins.load(Ordering::SeqCst),
            bytes_received: self.bytes_received.load(Ordering::SeqCst),
        }
    }
}

/// Per-back-link counters ([`TcpLinkStats`] as atomics).
#[derive(Debug, Default)]
pub struct BackLinkCounters {
    /// Alerts transmitted (excluding duplicate resends).
    pub sent: AtomicU64,
    /// Scripted severances fired.
    pub severs: AtomicU64,
    /// Successful reconnects.
    pub reconnects: AtomicU64,
    /// Connect attempts paced by the backoff schedule.
    pub attempts: AtomicU64,
    /// Duplicates re-sent from the unacked tail.
    pub resent_duplicates: AtomicU64,
    /// Peak resend-queue depth (single-writer load/store max).
    pub queued_peak: AtomicU64,
    /// Alerts lost to resend-queue overflow.
    pub lost_overflow: AtomicU64,
    /// Genuine socket errors.
    pub io_errors: AtomicU64,
    /// Alert-bearing frames written, resends included.
    pub frames_sent: AtomicU64,
    /// Wire bytes written, headers included.
    pub bytes_sent: AtomicU64,
    /// Alerts suppressed by within-frame dedup.
    pub dedup_suppressed: AtomicU64,
    /// Alerts shed non-blockingly past the queue bound.
    pub shed: AtomicU64,
}

impl BackLinkCounters {
    /// Raises `queued_peak` to `depth` if higher. Loop-thread only —
    /// the single writer makes load-then-store race-free.
    pub fn observe_queue_depth(&self, depth: u64) {
        if depth > self.queued_peak.load(Ordering::SeqCst) {
            self.queued_peak.store(depth, Ordering::SeqCst);
        }
    }

    /// The counters as a plain [`TcpLinkStats`] block.
    pub fn snapshot(&self) -> TcpLinkStats {
        TcpLinkStats {
            sent: self.sent.load(Ordering::SeqCst),
            severs: self.severs.load(Ordering::SeqCst),
            reconnects: self.reconnects.load(Ordering::SeqCst),
            attempts: self.attempts.load(Ordering::SeqCst),
            resent_duplicates: self.resent_duplicates.load(Ordering::SeqCst),
            queued_peak: self.queued_peak.load(Ordering::SeqCst),
            lost_overflow: self.lost_overflow.load(Ordering::SeqCst),
            io_errors: self.io_errors.load(Ordering::SeqCst),
            frames_sent: self.frames_sent.load(Ordering::SeqCst),
            bytes_sent: self.bytes_sent.load(Ordering::SeqCst),
            dedup_suppressed: self.dedup_suppressed.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
        }
    }
}

/// Listener-side counters ([`ListenerStats`] as atomics).
#[derive(Debug, Default)]
pub struct ListenerCounters {
    /// Connections accepted (reconnects count again).
    pub connections: AtomicU64,
    /// Alert frames received across all connections.
    pub alerts: AtomicU64,
    /// Frames that failed to decode.
    pub decode_errors: AtomicU64,
    /// Distinct end-of-stream markers seen.
    pub fins: AtomicU64,
    /// Wire bytes received across all connections.
    pub bytes_received: AtomicU64,
}

impl ListenerCounters {
    /// The counters as a plain [`ListenerStats`] block.
    pub fn snapshot(&self) -> ListenerStats {
        ListenerStats {
            connections: self.connections.load(Ordering::SeqCst),
            alerts: self.alerts.load(Ordering::SeqCst),
            decode_errors: self.decode_errors.load(Ordering::SeqCst),
            fins: self.fins.load(Ordering::SeqCst),
            bytes_received: self.bytes_received.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_mirror_the_atomic_blocks() {
        let engine = EngineCounters::default();
        engine.wakeups.fetch_add(3, Ordering::SeqCst);
        engine.timer_fires.fetch_add(2, Ordering::SeqCst);
        assert_eq!(
            engine.snapshot(),
            EngineStats { wakeups: 3, timer_fires: 2, spurious_readiness: 0 }
        );

        let back = BackLinkCounters::default();
        back.sent.fetch_add(7, Ordering::SeqCst);
        back.observe_queue_depth(4);
        back.observe_queue_depth(2); // lower: peak sticks
        back.shed.fetch_add(1, Ordering::SeqCst);
        let snap = back.snapshot();
        assert_eq!(snap.sent, 7);
        assert_eq!(snap.queued_peak, 4);
        assert_eq!(snap.shed, 1);

        let ingress = IngressCounters::default();
        ingress.delivered.fetch_add(9, Ordering::SeqCst);
        assert_eq!(ingress.snapshot().delivered, 9);

        let listener = ListenerCounters::default();
        listener.fins.fetch_add(2, Ordering::SeqCst);
        assert_eq!(listener.snapshot().fins, 2);
    }
}
