//! Property-based tests of the shared frame codec — now over **both**
//! payload codecs: every message type survives encode∘decode in JSON
//! and binary however the stream is fragmented (even with codecs mixed
//! frame-by-frame), no input — garbage, truncation, single-byte
//! corruption — ever panics the decoder, and a frame relabeled with
//! the *other* codec's version byte is rejected rather than misparsed.

use proptest::prelude::*;

use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
use rcm_transport::wire::{
    decode, decode_datagram, encode_with, Codec, FrameBuf, Message, WireError,
};

fn codec_strategy() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Binary)]
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (0u32..4, 1u64..1000, -1e6f64..1e6).prop_map(|(v, s, val)| Update::new(VarId::new(v), s, val))
}

fn alert_strategy() -> impl Strategy<Value = Alert> {
    (0u32..4, 2u64..1000, 0u32..3, any::<u64>()).prop_map(|(v, s, ce, idx)| {
        Alert::new(
            CondId::new(ce),
            HistoryFingerprint::single(VarId::new(v), vec![SeqNo::new(s), SeqNo::new(s - 1)]),
            vec![Update::new(VarId::new(v), s, 1.0)],
            AlertId { ce: CeId::new(ce), index: idx },
        )
    })
}

fn message_strategy() -> impl Strategy<Value = Message> {
    let update = update_strategy().prop_map(Message::Update);
    let alert = alert_strategy().prop_map(Message::Alert);
    let update_batch =
        proptest::collection::vec(update_strategy(), 0..8).prop_map(Message::UpdateBatch);
    let alert_batch =
        proptest::collection::vec(alert_strategy(), 0..4).prop_map(Message::AlertBatch);
    let hello = any::<u32>().prop_map(|node| Message::Hello { node });
    let fin = any::<u32>().prop_map(|node| Message::Fin { node });
    prop_oneof![update, alert, update_batch, alert_batch, hello, fin]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Streamed: any Err or Ok is fine, a panic is not.
        let mut buf = FrameBuf::new();
        buf.push(&bytes);
        let _ = decode(&mut buf);
        // Datagram: same contract.
        let _ = decode_datagram(&bytes);
    }

    #[test]
    fn every_message_type_roundtrips(msg in message_strategy(), codec in codec_strategy()) {
        let frame = encode_with(codec, &msg).expect("encodable");
        prop_assert_eq!(decode_datagram(&frame).expect("decodable"), msg);
    }

    #[test]
    fn roundtrip_survives_fragmentation(
        msgs in proptest::collection::vec((message_strategy(), codec_strategy()), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        // Codecs mixed frame-by-frame: the receiver dispatches on each
        // frame's version byte, never on stream-level configuration.
        let mut stream = Vec::new();
        for (msg, codec) in &msgs {
            stream.extend_from_slice(&encode_with(*codec, msg).expect("encodable"));
        }
        // Feed the stream in two arbitrary fragments; frame boundaries
        // and fragment boundaries need not line up.
        let cut = cut.index(stream.len() + 1);
        let mut buf = FrameBuf::new();
        buf.push(&stream[..cut]);
        let mut got = Vec::new();
        while let Some(msg) = decode(&mut buf).expect("well-formed stream") {
            got.push(msg);
        }
        buf.push(&stream[cut..]);
        while let Some(msg) = decode(&mut buf).expect("well-formed stream") {
            got.push(msg);
        }
        let want: Vec<Message> = msgs.into_iter().map(|(msg, _)| msg).collect();
        prop_assert_eq!(got, want);
        prop_assert!(buf.is_empty(), "no trailing bytes for complete frames");
    }

    #[test]
    fn truncation_never_yields_a_message(
        msg in message_strategy(),
        codec in codec_strategy(),
        keep in any::<prop::sample::Index>(),
    ) {
        let frame = encode_with(codec, &msg).expect("encodable");
        let keep = keep.index(frame.len()); // strictly shorter than the frame
        // A truncated datagram is an error, never a decoded message.
        prop_assert!(decode_datagram(&frame[..keep]).is_err());
        // A truncated stream just waits for more bytes — or rejects a
        // mangled header — but never produces a message.
        let mut buf = FrameBuf::new();
        buf.push(&frame[..keep]);
        match decode(&mut buf) {
            Ok(None) | Err(_) => {}
            Ok(Some(got)) => prop_assert!(false, "truncated frame decoded to {got:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_or_harmless(
        msg in message_strategy(),
        codec in codec_strategy(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut frame = encode_with(codec, &msg).expect("encodable");
        let pos = pos.index(frame.len());
        frame[pos] ^= xor;
        match decode_datagram(&frame) {
            // Flips in the header or payload are caught by the version
            // byte, the length, the checksum or the codec...
            Err(_) => {}
            // ...except a flip inside the payload that still parses
            // (e.g. a digit of a JSON value, or a varint byte). The
            // framing cannot see it — but the checksum must then have
            // been flipped too, which decode_datagram checks first, so
            // the only survivors are flips the codec maps to a
            // *different* valid message.
            Ok(got) => prop_assert_ne!(got, msg, "corrupted frame decoded to the original"),
        }
    }

    #[test]
    fn cross_version_relabel_is_rejected(msg in message_strategy(), codec in codec_strategy()) {
        // A frame labeled with the *other* codec's version byte must
        // fail decoding (the checksum covers the payload only, so the
        // rejection has to come from the payload parser) — never
        // silently misparse into some other message.
        let other = match codec {
            Codec::Json => Codec::Binary,
            Codec::Binary => Codec::Json,
        };
        let mut frame = encode_with(codec, &msg).expect("encodable");
        frame[0] = other.version();
        match decode_datagram(&frame) {
            Err(WireError::Codec(_) | WireError::Malformed { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(got) => prop_assert!(false, "relabeled frame decoded to {got:?}"),
        }
    }
}
