//! Property-based tests of the shared frame codec — now over **both**
//! payload codecs: every message type survives encode∘decode in JSON
//! and binary however the stream is fragmented (even with codecs mixed
//! frame-by-frame), no input — garbage, truncation, single-byte
//! corruption — ever panics the decoder, and a frame relabeled with
//! the *other* codec's version byte is rejected rather than misparsed.
//! The message pool includes tier-link `Derived` frames (synthetic
//! stream ids in the derived-variable space carrying aggregate samples
//! or full verdict alerts), so every property above covers the
//! aggregation tree's uplink traffic too.

use proptest::prelude::*;

use rcm_core::{
    Alert, AlertId, CeId, CondId, DerivedPayload, DerivedUpdate, HistoryFingerprint, SeqNo, Update,
    VarId,
};
use rcm_transport::wire::{
    decode, decode_datagram, encode_with, Codec, FrameBuf, Message, WireError,
};

fn codec_strategy() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Binary)]
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (0u32..4, 1u64..1000, -1e6f64..1e6).prop_map(|(v, s, val)| Update::new(VarId::new(v), s, val))
}

fn alert_strategy() -> impl Strategy<Value = Alert> {
    (0u32..4, 2u64..1000, 0u32..3, any::<u64>()).prop_map(|(v, s, ce, idx)| {
        Alert::new(
            CondId::new(ce),
            HistoryFingerprint::single(VarId::new(v), vec![SeqNo::new(s), SeqNo::new(s - 1)]),
            vec![Update::new(VarId::new(v), s, 1.0)],
            AlertId { ce: CeId::new(ce), index: idx },
        )
    })
}

/// Tier-link frames: a synthetic stream id in the derived space, a
/// per-stream seqno, and either an aggregate sample or a full verdict
/// (the leaf's alert riding upward).
fn derived_strategy() -> impl Strategy<Value = DerivedUpdate> {
    let aggregate = (-1e6f64..1e6).prop_map(DerivedPayload::Aggregate);
    let verdict = alert_strategy().prop_map(DerivedPayload::Verdict);
    (0u8..3, 0u32..8, 1u64..1000, prop_oneof![aggregate, verdict]).prop_map(
        |(tier, node, seqno, payload)| DerivedUpdate {
            var: rcm_core::derived_var(tier, node),
            seqno: SeqNo::new(seqno),
            payload,
        },
    )
}

fn message_strategy() -> impl Strategy<Value = Message> {
    let update = update_strategy().prop_map(Message::Update);
    let alert = alert_strategy().prop_map(Message::Alert);
    let update_batch =
        proptest::collection::vec(update_strategy(), 0..8).prop_map(Message::UpdateBatch);
    let alert_batch =
        proptest::collection::vec(alert_strategy(), 0..4).prop_map(Message::AlertBatch);
    let hello = any::<u32>().prop_map(|node| Message::Hello { node });
    let fin = any::<u32>().prop_map(|node| Message::Fin { node });
    let derived = derived_strategy().prop_map(Message::Derived);
    prop_oneof![update, alert, update_batch, alert_batch, hello, fin, derived]
}

/// Deterministic tier-link sweep — runs everywhere, including
/// environments where the proptest cases below are CI-only: every
/// single-byte corruption of a Derived frame (verdict and aggregate)
/// either errors or decodes to a *different* message, a cross-codec
/// relabel is rejected, and every truncation is an error. Binary only
/// — the codec tier links actually ship — with the JSON side covered
/// by the property cases.
#[test]
fn derived_frame_mutations_never_panic_or_misparse() {
    let alert = Alert::new(
        CondId::new(2),
        HistoryFingerprint::single(VarId::new(1), vec![SeqNo::new(9), SeqNo::new(8)]),
        vec![Update::new(VarId::new(1), 9, 4.5)],
        AlertId { ce: CeId::new(3), index: 7 },
    );
    let messages = [
        Message::Derived(DerivedUpdate {
            var: rcm_core::derived_var(1, 4),
            seqno: SeqNo::new(11),
            payload: DerivedPayload::Verdict(alert),
        }),
        Message::Derived(DerivedUpdate {
            var: rcm_core::derived_var(2, 0),
            seqno: SeqNo::new(1),
            payload: DerivedPayload::Aggregate(-12.75),
        }),
    ];
    for msg in &messages {
        for codec in [Codec::Binary] {
            let frame = encode_with(codec, msg).expect("derived frame encodes");
            assert_eq!(&decode_datagram(&frame).expect("derived frame decodes"), msg);
            for pos in 0..frame.len() {
                for xor in [0x01u8, 0x80, 0xff] {
                    let mut bad = frame.clone();
                    bad[pos] ^= xor;
                    // A flip that relabels the frame as JSON hands a
                    // binary payload to the JSON parser — exercised by
                    // the property cases; this sweep stays within the
                    // binary decoder.
                    if bad[0] == Codec::Json.version() {
                        continue;
                    }
                    if let Ok(got) = decode_datagram(&bad) {
                        assert_ne!(&got, msg, "corrupted derived frame decoded to the original");
                    }
                }
            }
            for keep in 0..frame.len() {
                assert!(decode_datagram(&frame[..keep]).is_err(), "truncated frame decoded");
            }
            // An unknown version byte must be rejected as such, never
            // guessed at.
            let mut relabeled = frame.clone();
            relabeled[0] = 0x7f;
            match decode_datagram(&relabeled) {
                Err(WireError::BadVersion { found: 0x7f }) => {}
                Err(e) => panic!("unexpected error class for relabeled derived frame: {e}"),
                Ok(got) => panic!("relabeled derived frame decoded to {got:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Streamed: any Err or Ok is fine, a panic is not.
        let mut buf = FrameBuf::new();
        buf.push(&bytes);
        let _ = decode(&mut buf);
        // Datagram: same contract.
        let _ = decode_datagram(&bytes);
    }

    #[test]
    fn every_message_type_roundtrips(msg in message_strategy(), codec in codec_strategy()) {
        let frame = encode_with(codec, &msg).expect("encodable");
        prop_assert_eq!(decode_datagram(&frame).expect("decodable"), msg);
    }

    #[test]
    fn roundtrip_survives_fragmentation(
        msgs in proptest::collection::vec((message_strategy(), codec_strategy()), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        // Codecs mixed frame-by-frame: the receiver dispatches on each
        // frame's version byte, never on stream-level configuration.
        let mut stream = Vec::new();
        for (msg, codec) in &msgs {
            stream.extend_from_slice(&encode_with(*codec, msg).expect("encodable"));
        }
        // Feed the stream in two arbitrary fragments; frame boundaries
        // and fragment boundaries need not line up.
        let cut = cut.index(stream.len() + 1);
        let mut buf = FrameBuf::new();
        buf.push(&stream[..cut]);
        let mut got = Vec::new();
        while let Some(msg) = decode(&mut buf).expect("well-formed stream") {
            got.push(msg);
        }
        buf.push(&stream[cut..]);
        while let Some(msg) = decode(&mut buf).expect("well-formed stream") {
            got.push(msg);
        }
        let want: Vec<Message> = msgs.into_iter().map(|(msg, _)| msg).collect();
        prop_assert_eq!(got, want);
        prop_assert!(buf.is_empty(), "no trailing bytes for complete frames");
    }

    #[test]
    fn truncation_never_yields_a_message(
        msg in message_strategy(),
        codec in codec_strategy(),
        keep in any::<prop::sample::Index>(),
    ) {
        let frame = encode_with(codec, &msg).expect("encodable");
        let keep = keep.index(frame.len()); // strictly shorter than the frame
        // A truncated datagram is an error, never a decoded message.
        prop_assert!(decode_datagram(&frame[..keep]).is_err());
        // A truncated stream just waits for more bytes — or rejects a
        // mangled header — but never produces a message.
        let mut buf = FrameBuf::new();
        buf.push(&frame[..keep]);
        match decode(&mut buf) {
            Ok(None) | Err(_) => {}
            Ok(Some(got)) => prop_assert!(false, "truncated frame decoded to {got:?}"),
        }
    }

    #[test]
    fn corruption_is_detected_or_harmless(
        msg in message_strategy(),
        codec in codec_strategy(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut frame = encode_with(codec, &msg).expect("encodable");
        let pos = pos.index(frame.len());
        frame[pos] ^= xor;
        match decode_datagram(&frame) {
            // Flips in the header or payload are caught by the version
            // byte, the length, the checksum or the codec...
            Err(_) => {}
            // ...except a flip inside the payload that still parses
            // (e.g. a digit of a JSON value, or a varint byte). The
            // framing cannot see it — but the checksum must then have
            // been flipped too, which decode_datagram checks first, so
            // the only survivors are flips the codec maps to a
            // *different* valid message.
            Ok(got) => prop_assert_ne!(got, msg, "corrupted frame decoded to the original"),
        }
    }

    #[test]
    fn cross_version_relabel_is_rejected(msg in message_strategy(), codec in codec_strategy()) {
        // A frame labeled with the *other* codec's version byte must
        // fail decoding (the checksum covers the payload only, so the
        // rejection has to come from the payload parser) — never
        // silently misparse into some other message.
        let other = match codec {
            Codec::Json => Codec::Binary,
            Codec::Binary => Codec::Json,
        };
        let mut frame = encode_with(codec, &msg).expect("encodable");
        frame[0] = other.version();
        match decode_datagram(&frame) {
            Err(WireError::Codec(_) | WireError::Malformed { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(got) => prop_assert!(false, "relabeled frame decoded to {got:?}"),
        }
    }
}
