//! Properties pinning the batching-equivalence contract: delivering
//! messages in coalesced frames is observably identical to delivering
//! them one frame each.
//!
//! * Front links: the receiver runs every update of an `UpdateBatch`
//!   through the seqno gate in batch order, so the admit-set — and
//!   therefore everything the CE evaluates — is bit-identical to the
//!   unbatched run, however the stream is chunked and however lossy,
//!   reordered, or duplicated it already is.
//! * Back links: the sender dedups only *within* a pending frame, and
//!   the AD algorithms are duplicate-indifferent, so the displayed
//!   alert sequence is bit-identical to the unbatched run.
//!
//! Both properties roundtrip the batches through the real wire codec
//! (binary and JSON), not just through in-memory chunking.

use proptest::prelude::*;

use rcm_core::ad::{Ad1, AlertFilter};
use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
use rcm_transport::wire::{decode_datagram, encode_with, Codec, Message};
use rcm_transport::SeqGate;

fn codec_strategy() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Binary)]
}

/// An arbitrary update stream over few variables and a small seqno
/// range — dense enough that reorders, gaps, and duplicates all occur.
fn update_stream() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec(
        (0u32..3, 1u64..20, -100.0f64..100.0)
            .prop_map(|(v, s, val)| Update::new(VarId::new(v), s, val)),
        0..40,
    )
}

/// An alert stream over a small identity space — (cond, fingerprint)
/// collisions are common, exercising both within-frame dedup and the
/// AD's duplicate suppression.
fn alert_stream() -> impl Strategy<Value = Vec<Alert>> {
    proptest::collection::vec(
        (0u32..2, 1u64..6, 0u32..2, 0u64..100).prop_map(|(v, s, ce, idx)| {
            Alert::new(
                CondId::new(v),
                HistoryFingerprint::single(VarId::new(v), vec![SeqNo::new(s)]),
                vec![Update::new(VarId::new(v), s, 1.0)],
                AlertId { ce: CeId::new(ce), index: idx },
            )
        }),
        0..30,
    )
}

/// Splits `items` into chunks whose sizes cycle through `sizes`
/// (clamped to 1..=8) — an arbitrary chunking of the same stream.
fn chunk<T: Clone>(items: &[T], sizes: &[usize]) -> Vec<Vec<T>> {
    let mut chunks = Vec::new();
    let mut rest = items;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes.get(i % sizes.len()).copied().unwrap_or(1).clamp(1, 8).min(rest.len());
        chunks.push(rest[..take].to_vec());
        rest = &rest[take..];
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batched_delivery_admits_exactly_the_unbatched_set(
        updates in update_stream(),
        sizes in proptest::collection::vec(1usize..8, 1..5),
        codec in codec_strategy(),
    ) {
        // Unbatched: one frame per update.
        let mut solo_gate = SeqGate::new();
        let solo: Vec<Update> =
            updates.iter().filter(|u| solo_gate.admit(u)).copied().collect();

        // Batched: the same stream chunked arbitrarily, each chunk
        // roundtripped through the wire as an UpdateBatch, the
        // receiver gating each update in batch order.
        let mut batch_gate = SeqGate::new();
        let mut batched = Vec::new();
        for chunk in chunk(&updates, &sizes) {
            let frame =
                encode_with(codec, &Message::UpdateBatch(chunk)).expect("batch encodes");
            match decode_datagram(&frame).expect("batch decodes") {
                Message::UpdateBatch(items) => {
                    batched.extend(items.into_iter().filter(|u| batch_gate.admit(u)));
                }
                other => prop_assert!(false, "unexpected message {other:?}"),
            }
        }
        prop_assert_eq!(batched, solo);
    }

    #[test]
    fn within_frame_dedup_never_changes_the_displayed_alerts(
        alerts in alert_stream(),
        sizes in proptest::collection::vec(1usize..8, 1..5),
        codec in codec_strategy(),
    ) {
        // Unbatched: every alert offered to the filter individually.
        let mut solo_ad = Ad1::new();
        let solo: Vec<Alert> =
            alerts.iter().filter(|a| solo_ad.offer(a).is_deliver()).cloned().collect();

        // Batched: the stream chunked arbitrarily, each chunk deduped
        // the way the back link dedups its pending frame (alert
        // identity = (cond, fingerprint)), roundtripped through the
        // wire, then offered in order to an identical filter.
        let mut batch_ad = Ad1::new();
        let mut batched = Vec::new();
        for chunk in chunk(&alerts, &sizes) {
            let mut pending: Vec<Alert> = Vec::new();
            for alert in chunk {
                if !pending.iter().any(|a| *a == alert) {
                    pending.push(alert);
                }
            }
            let frame =
                encode_with(codec, &Message::AlertBatch(pending)).expect("batch encodes");
            match decode_datagram(&frame).expect("batch decodes") {
                Message::AlertBatch(items) => {
                    batched.extend(
                        items.into_iter().filter(|a| batch_ad.offer(a).is_deliver()),
                    );
                }
                other => prop_assert!(false, "unexpected message {other:?}"),
            }
        }
        prop_assert_eq!(batched, solo);
    }
}
