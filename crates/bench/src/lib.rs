//! # rcm-bench — experiment harness for the PODC 2001 reproduction
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — single-variable systems under AD-1 |
//! | `table2` | Table 2 — single-variable systems under AD-2 |
//! | `table1_ad3` | §4.3 — Table 1 variant under AD-3 |
//! | `table2_ad4` | §4.4 — Table 2 variant under AD-4 |
//! | `table3` | Table 3 — multi-variable systems under AD-5 |
//! | `table3_ad6` | §5.2 — Table 3 variant under AD-6 |
//! | `thm10` | Theorem 10 — multi-variable AD-1 matrix + worked counterexample |
//! | `domination` | §4.1, Theorems 6 & 8 — pass-through rates and domination checks |
//! | `maximality` | Theorems 5, 7 & 9 — one-extra-alert probes |
//! | `availability` | Figure 1 motivation — missed alerts vs replication |
//! | `table0_baseline` | no filtering at all — why dedup is the baseline |
//! | `table3_trivar` | Table 3 with three variables (§5 "easily extended") |
//! | `replication_sweep` | properties vs replica count (1 = non-replicated) |
//! | `delayed_display` | §4.2's delayed-displaying alternative, measured |
//! | `pda_buffering` | §1's powered-off PDA: buffered alerts, late delivery |
//! | `multi_condition_sim` | Appendix D multi-condition construction |
//! | `ablation_ad6` | AD-6 without its AD-5 half loses consistency |
//! | `wire_sizes` | §2's checksum remark — payload bytes per fidelity |
//!
//! Every binary accepts `--runs N`, `--seed N` and `--json`; all
//! results are pure functions of the seed.
//!
//! The criterion benches (`cargo bench -p rcm-bench`) measure the cost
//! of this implementation: sequence ops, evaluator and filter
//! throughput, simulator runs, and a scaled-down table cell.

use std::sync::Arc;

use rcm_core::condition::Condition;
use rcm_core::{Alert, Update};
use rcm_sim::montecarlo::{build_scenario, ScenarioKind, Topology};
use rcm_sim::report::Matrix;
use rcm_sim::run;

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Monte-Carlo runs per cell / sweep point.
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
    /// Emit machine-readable JSON instead of ASCII tables.
    pub json: bool,
}

impl Cli {
    /// Parses `--runs N`, `--seed N`, `--json` from `std::env::args`,
    /// with the given default run count.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_runs: u64) -> Self {
        let mut cli = Cli { runs: default_runs, seed: 0x5eed, json: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" => {
                    cli.runs =
                        args.next().and_then(|v| v.parse().ok()).expect("--runs takes an integer");
                }
                "--seed" => {
                    cli.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed takes an integer");
                }
                "--json" => cli.json = true,
                other => panic!("unknown argument '{other}' (expected --runs/--seed/--json)"),
            }
        }
        cli
    }
}

/// Prints a reproduced matrix and its agreement verdict.
pub fn print_matrix(matrix: &Matrix, json: bool) {
    if json {
        println!("{}", matrix.to_json());
    } else {
        println!("{}", matrix.render());
        println!(
            "cells read claimed/measured (violations/runs); agreement with the paper: {}",
            if matrix.matches_paper() { "FULL" } else { "MISMATCH (see !! cells)" }
        );
    }
}

/// One simulated execution used by the domination and maximality
/// experiments: the condition, each replica's received updates, and
/// the merged alert arrival sequence at the AD.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The monitored condition.
    pub condition: Arc<dyn Condition>,
    /// Per replica inputs `U_i`.
    pub inputs: Vec<Vec<Update>>,
    /// Merged alert arrivals, pre-filtering.
    pub arrivals: Vec<Alert>,
}

/// Generates `n` seeded executions of a scenario class.
pub fn executions(kind: ScenarioKind, topo: Topology, n: u64, base_seed: u64) -> Vec<Execution> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
            let scenario = build_scenario(kind, topo, seed);
            let condition = scenario.condition.clone();
            let result = run(scenario);
            Execution { condition, inputs: result.inputs, arrivals: result.arrivals }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executions_are_seeded() {
        let a = executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 3, 1);
        let b = executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 3, 1);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrivals, y.arrivals);
        }
    }
}
