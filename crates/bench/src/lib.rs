//! # rcm-bench — experiment harness for the PODC 2001 reproduction
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — single-variable systems under AD-1 |
//! | `table2` | Table 2 — single-variable systems under AD-2 |
//! | `table1_ad3` | §4.3 — Table 1 variant under AD-3 |
//! | `table2_ad4` | §4.4 — Table 2 variant under AD-4 |
//! | `table3` | Table 3 — multi-variable systems under AD-5 |
//! | `table3_ad6` | §5.2 — Table 3 variant under AD-6 |
//! | `thm10` | Theorem 10 — multi-variable AD-1 matrix + worked counterexample |
//! | `domination` | §4.1, Theorems 6 & 8 — pass-through rates and domination checks |
//! | `maximality` | Theorems 5, 7 & 9 — one-extra-alert probes |
//! | `availability` | Figure 1 motivation — missed alerts vs replication |
//! | `table0_baseline` | no filtering at all — why dedup is the baseline |
//! | `table3_trivar` | Table 3 with three variables (§5 "easily extended") |
//! | `replication_sweep` | properties vs replica count (1 = non-replicated) |
//! | `delayed_display` | §4.2's delayed-displaying alternative, measured |
//! | `pda_buffering` | §1's powered-off PDA: buffered alerts, late delivery |
//! | `multi_condition_sim` | Appendix D multi-condition construction |
//! | `ablation_ad6` | AD-6 without its AD-5 half loses consistency |
//! | `wire_sizes` | §2's checksum remark — payload bytes per fidelity |
//!
//! Every binary accepts `--runs N`, `--seed N` and `--json`; all
//! results are pure functions of the seed.
//!
//! The criterion benches (`cargo bench -p rcm-bench`) measure the cost
//! of this implementation: sequence ops, evaluator and filter
//! throughput, simulator runs, and a scaled-down table cell.

use std::sync::Arc;

use rcm_core::condition::Condition;
use rcm_core::{Alert, Update};
use rcm_sim::montecarlo::{build_scenario, ScenarioKind, Topology};
use rcm_sim::report::Matrix;
use rcm_sim::run;

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Monte-Carlo runs per cell / sweep point.
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
    /// Emit machine-readable JSON instead of ASCII tables.
    pub json: bool,
}

impl Cli {
    /// Parses `--runs N`, `--seed N`, `--json` from `std::env::args`,
    /// with the given default run count.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_runs: u64) -> Self {
        let mut cli = Cli { runs: default_runs, seed: 0x5eed, json: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" => {
                    cli.runs =
                        args.next().and_then(|v| v.parse().ok()).expect("--runs takes an integer");
                }
                "--seed" => {
                    cli.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed takes an integer");
                }
                "--json" => cli.json = true,
                other => panic!("unknown argument '{other}' (expected --runs/--seed/--json)"),
            }
        }
        cli
    }
}

/// Prints a reproduced matrix and its agreement verdict.
pub fn print_matrix(matrix: &Matrix, json: bool) {
    if json {
        println!("{}", matrix.to_json());
    } else {
        println!("{}", matrix.render());
        println!(
            "cells read claimed/measured (violations/runs); agreement with the paper: {}",
            if matrix.matches_paper() { "FULL" } else { "MISMATCH (see !! cells)" }
        );
    }
}

/// Shared workload for the multi-condition throughput benches: the
/// criterion `throughput` bench, the `bench_snapshot` section and the
/// `throughput_smoke` CI check all measure exactly this registry load,
/// so their numbers are comparable.
///
/// Every condition is a compiled expression over four of
/// [`throughput::VARS`] shared variables, summing one window-16
/// aggregate per variable — the shape where incremental re-evaluation
/// pays: an update to one variable dirties only that variable's
/// aggregate subtree (16 history reads) and the spine above it, while
/// the other three stay cached; full re-evaluation recomputes all four
/// on every routed arrival.
pub mod throughput {
    use rcm_core::condition::expr::CompiledCondition;
    use rcm_core::{Update, VarId, VarRegistry};

    /// Number of distinct variables the conditions draw from.
    pub const VARS: usize = 8;

    /// Compiles `n` conditions over the shared variable pool; returns
    /// them with the pool's [`VarId`]s (registration order).
    ///
    /// # Panics
    ///
    /// Panics if the workload template fails to compile (a bug).
    pub fn conditions(n: usize) -> (Vec<CompiledCondition>, Vec<VarId>) {
        let mut reg = VarRegistry::new();
        let ids: Vec<VarId> = (0..VARS).map(|v| reg.register(&format!("v{v}"))).collect();
        let conds = (0..n)
            .map(|i| {
                let a = format!("v{}", i % VARS);
                let b = format!("v{}", (i + 1) % VARS);
                let c = format!("v{}", (i + 3) % VARS);
                let d = format!("v{}", (i + 5) % VARS);
                // Thresholds keep alerts rare enough that emission cost
                // (identical in both modes) does not drown evaluation.
                let t = 80 + (i % 40) as i64;
                let jump = 100 + (i % 30) as i64;
                let src = format!(
                    "avg_over({a}, 16) + avg_over({b}, 16) \
                     + avg_over({c}, 16) + avg_over({d}, 16) > {t} \
                     || {a}[0].value - {a}[-1].value > {jump}"
                );
                CompiledCondition::compile(&src, &mut reg).expect("throughput workload compiles")
            })
            .collect();
        (conds, ids)
    }

    /// A deterministic update stream round-robining the variable pool
    /// with consecutive per-variable seqnos and hash-derived values in
    /// `[-100, 100)`.
    pub fn stream(ids: &[VarId], updates: usize) -> Vec<Update> {
        (0..updates)
            .map(|i| {
                let v = i % ids.len();
                let seqno = (i / ids.len()) as u64 + 1;
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let value = ((h >> 16) % 200) as f64 - 100.0;
                Update::new(ids[v], seqno, value)
            })
            .collect()
    }
}

/// One simulated execution used by the domination and maximality
/// experiments: the condition, each replica's received updates, and
/// the merged alert arrival sequence at the AD.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The monitored condition.
    pub condition: Arc<dyn Condition>,
    /// Per replica inputs `U_i`.
    pub inputs: Vec<Vec<Update>>,
    /// Merged alert arrivals, pre-filtering.
    pub arrivals: Vec<Alert>,
}

/// Generates `n` seeded executions of a scenario class.
pub fn executions(kind: ScenarioKind, topo: Topology, n: u64, base_seed: u64) -> Vec<Execution> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
            let scenario = build_scenario(kind, topo, seed);
            let condition = scenario.condition.clone();
            let result = run(scenario);
            Execution { condition, inputs: result.inputs, arrivals: result.arrivals }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executions_are_seeded() {
        let a = executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 3, 1);
        let b = executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 3, 1);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrivals, y.arrivals);
        }
    }
}
