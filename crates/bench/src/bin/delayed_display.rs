//! Ablation of the "delayed displaying" alternative from §4.2.
//!
//! The paper considers letting the AD hold alerts until predecessors
//! arrive, bounded by a timeout, and argues it adds nothing fundamental:
//! with the timeout forced, orderedness is lost. This experiment
//! *measures* the trade-off on the lossy non-historical scenario class:
//!
//! * `drop` policy (late alerts discarded): output stays ordered; the
//!   hold window converts some of AD-2's drops into displays, at the
//!   price of display latency;
//! * `display` policy (late alerts shown anyway): strictly more alerts,
//!   but unordered output reappears — exactly the paper's objection.

use rcm_bench::{executions, Cli};
use rcm_core::ad::{apply_filter, Ad1, Ad2, DelayedOrdered, LatePolicy};
use rcm_core::seq::{inversions, project_alerts};
use rcm_core::VarId;
use rcm_props::check_ordered;
use rcm_sim::montecarlo::{ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    hold: usize,
    displayed_drop: usize,
    dropped_late: u64,
    displayed_show: usize,
    unordered_runs_show: usize,
    inversions_show: u64,
}

fn main() {
    let cli = Cli::parse(120);
    let x = VarId::new(0);
    let execs =
        executions(ScenarioKind::LossyNonHistorical, Topology::SingleVar, cli.runs, cli.seed);

    // Baselines.
    let ad1: usize = execs.iter().map(|e| apply_filter(&mut Ad1::new(), &e.arrivals).len()).sum();
    let ad2: usize = execs.iter().map(|e| apply_filter(&mut Ad2::new(x), &e.arrivals).len()).sum();

    let mut rows = Vec::new();
    for hold in [0usize, 1, 2, 4, 8, 16] {
        let mut displayed_drop = 0;
        let mut dropped_late = 0;
        let mut displayed_show = 0;
        let mut unordered_runs_show = 0;
        let mut inversions_show = 0u64;
        for e in &execs {
            let mut d = DelayedOrdered::new(x, hold, LatePolicy::Drop);
            let out = d.display_all(&e.arrivals);
            assert!(check_ordered(&out, &[x]).ok, "drop-policy output must stay ordered");
            displayed_drop += out.len();
            dropped_late += d.dropped_late();

            let mut show = DelayedOrdered::new(x, hold, LatePolicy::Display);
            let out = show.display_all(&e.arrivals);
            displayed_show += out.len();
            if !check_ordered(&out, &[x]).ok {
                unordered_runs_show += 1;
            }
            inversions_show += inversions(&project_alerts(&out, x));
        }
        rows.push(Row {
            hold,
            displayed_drop,
            dropped_late,
            displayed_show,
            unordered_runs_show,
            inversions_show,
        });
    }

    if cli.json {
        let out = serde_json::json!({ "ad1_total": ad1, "ad2_total": ad2, "sweep": rows });
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
        return;
    }

    println!(
        "Delayed displaying (§4.2) on lossy non-historical workloads \
         ({} runs, seed {})\n",
        cli.runs, cli.seed
    );
    println!(
        "AD-1 displays {ad1} alerts (dedup bound; the display policy can \
         exceed it by re-showing late duplicates); AD-2 displays {ad2}\n"
    );
    println!(
        "{:>5} {:>14} {:>13} | {:>15} {:>15} {:>11}",
        "hold", "drop: shown", "late-dropped", "display: shown", "unordered runs", "inversions"
    );
    for r in &rows {
        println!(
            "{:>5} {:>14} {:>13} | {:>15} {:>15} {:>11}",
            r.hold,
            r.displayed_drop,
            r.dropped_late,
            r.displayed_show,
            r.unordered_runs_show,
            r.inversions_show
        );
    }
    println!(
        "\nGrowing the hold window recovers alerts AD-2 loses (left) without \
         breaking order; showing late alerts instead (right) recovers more \
         but re-introduces disorder — the paper's point that bounded-timeout \
         reordering 'provides nothing fundamentally new'."
    );
}
