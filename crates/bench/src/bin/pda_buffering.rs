//! The powered-off PDA experiment (paper §1): "If the PDA is off or
//! disconnected, the CE logs the alert, and sends it later, when the
//! AD becomes available."
//!
//! Sweeps the Alert Displayer's downtime fraction and measures (a) that
//! *no* alert is ever lost — back links are reliable and stateful — and
//! (b) the price: mean alert delivery latency.

use std::sync::Arc;

use rcm_bench::Cli;
use rcm_core::condition::{Cmp, Threshold};
use rcm_core::VarId;
use rcm_sim::{run, DelaySpec, LossSpec, Scenario, Spikes, VarWorkload};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    ad_downtime: f64,
    alerts_sent: u64,
    alerts_delivered: usize,
    mean_latency_ticks: f64,
    max_latency_ticks: u64,
}

fn main() {
    let cli = Cli::parse(30);
    let x = VarId::new(0);
    let updates = 100u64;
    let horizon = updates * 10;

    let mut rows = Vec::new();
    for downtime in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let (mut sent, mut delivered) = (0u64, 0usize);
        let (mut latency_total, mut latency_count, mut latency_max) = (0u64, 0u64, 0u64);
        for i in 0..cli.runs {
            let seed = cli.seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
            // Alternating up/down windows with the requested duty cycle.
            let cycle = 200u64;
            let down = (cycle as f64 * downtime).round() as u64;
            let ad_outages: Vec<(u64, u64)> = (0..horizon / cycle + 1)
                .filter(|_| down > 0)
                .enumerate()
                .map(|(k, _)| (k as u64 * cycle, (k as u64 * cycle + down).min(horizon + down)))
                .collect();
            let scenario = Scenario {
                condition: Arc::new(Threshold::new(x, Cmp::Gt, 500.0)),
                replicas: 2,
                workloads: vec![VarWorkload {
                    var: x,
                    updates,
                    period: 10,
                    offset: 0,
                    model: Box::new(Spikes::new(100.0, 5.0, 1000.0, 0.2)),
                }],
                front_loss: vec![LossSpec::Bernoulli(0.1)],
                front_delay: vec![DelaySpec::Constant(1)],
                back_delay: vec![DelaySpec::Constant(1)],
                outages: vec![],
                ad_outages,
                link_salt: 0,
                seed,
            };
            let result = run(scenario);
            sent += result.stats.alerts_emitted;
            delivered += result.arrivals.len();
            for &(s, a) in &result.arrival_times {
                latency_total += a - s;
                latency_count += 1;
                latency_max = latency_max.max(a - s);
            }
        }
        rows.push(Row {
            ad_downtime: downtime,
            alerts_sent: sent,
            alerts_delivered: delivered,
            mean_latency_ticks: if latency_count == 0 {
                0.0
            } else {
                latency_total as f64 / latency_count as f64
            },
            max_latency_ticks: latency_max,
        });
    }

    if cli.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!("Alert buffering while the PDA is off ({} runs/point, seed {})\n", cli.runs, cli.seed);
    println!(
        "{:>11} {:>12} {:>12} {:>14} {:>13}",
        "AD downtime", "alerts sent", "delivered", "mean latency", "max latency"
    );
    for r in &rows {
        println!(
            "{:>11.1} {:>12} {:>12} {:>14.1} {:>13}",
            r.ad_downtime,
            r.alerts_sent,
            r.alerts_delivered,
            r.mean_latency_ticks,
            r.max_latency_ticks
        );
        assert_eq!(
            r.alerts_sent as usize, r.alerts_delivered,
            "reliable back links must deliver every alert eventually"
        );
    }
    println!(
        "\nNo alert is ever lost to AD downtime (back links are reliable and \
         stateful); the cost is delivery latency growing with the duty cycle."
    );
}
