//! Extension of Table 3 to **three variables**: the paper gives AD-5's
//! pseudo-code for two variables and notes it "can be easily extended";
//! this binary validates the generalized implementation against the
//! same claimed property rows.

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(60);
    for (title, filter) in [
        ("Table 3 (three variables): systems under AD-5", FilterKind::Ad5),
        ("Table 3' (three variables): systems under AD-6", FilterKind::Ad6),
    ] {
        let m = property_matrix(title, Topology::MultiVar3, filter, cli.runs, cli.seed);
        print_matrix(&m, cli.json);
        if !cli.json {
            println!();
        }
    }
}
