//! Ablation of AD-6: is the AD-5 (orderedness) half actually needed
//! for multi-variable **consistency**, or would the multi-variable
//! AD-3 half alone suffice?
//!
//! The paper's Lemma 5 proof suggests the answer: consistency of AD-5's
//! output hinges on its *orderedness* excluding precedence cycles.
//! This experiment removes the AD-5 half (`Ad3Multi`) and measures
//! consistency violations that the full AD-6 never exhibits —
//! Theorem 10-style interleaving cycles that per-variable bookkeeping
//! cannot see.

use rcm_bench::{executions, Cli};
use rcm_core::ad::{apply_filter, Ad3Multi, Ad6, AlertFilter};
use rcm_core::VarId;
use rcm_props::check_consistent_multi;
use rcm_sim::montecarlo::{ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Default, Serialize)]
struct Tally {
    runs: u64,
    shown: usize,
    inconsistent_runs: u64,
}

fn main() {
    let cli = Cli::parse(100);
    let x = VarId::new(0);
    let y = VarId::new(1);

    println!(
        "AD-6 ablation: full AD-6 vs its AD-3-only half \
         ({} runs per scenario, seed {})\n",
        cli.runs, cli.seed
    );
    println!(
        "{:<18} {:>12} {:>14} | {:>12} {:>14}",
        "Scenario", "AD-6 shown", "inconsistent", "ablated shown", "inconsistent"
    );

    let mut ablated_total = Tally::default();
    for kind in ScenarioKind::ALL {
        let execs = executions(kind, Topology::MultiVar, cli.runs, cli.seed);
        let mut full = Tally { runs: cli.runs, ..Default::default() };
        let mut ablated = Tally { runs: cli.runs, ..Default::default() };
        for e in &execs {
            for (tally, mut filter) in [
                (&mut full, Box::new(Ad6::new([x, y])) as Box<dyn AlertFilter>),
                (&mut ablated, Box::new(Ad3Multi::new([x, y]))),
            ] {
                let shown = apply_filter(&mut *filter, &e.arrivals);
                tally.shown += shown.len();
                if !check_consistent_multi(&e.condition, &e.inputs, &shown).ok {
                    tally.inconsistent_runs += 1;
                }
            }
        }
        println!(
            "{:<18} {:>12} {:>14} | {:>12} {:>14}",
            kind.label(),
            full.shown,
            full.inconsistent_runs,
            ablated.shown,
            ablated.inconsistent_runs
        );
        assert_eq!(full.inconsistent_runs, 0, "full AD-6 must stay consistent on {kind:?}");
        ablated_total.inconsistent_runs += ablated.inconsistent_runs;
        ablated_total.runs += cli.runs;
    }

    println!(
        "\nThe ablated filter passes more alerts but leaves {} of {} runs \
         inconsistent — interleaving cycles that per-variable Received/Missed \
         bookkeeping cannot detect. The AD-5 half is load-bearing for \
         consistency, exactly as the Lemma 5 proof suggests: {}",
        ablated_total.inconsistent_runs,
        ablated_total.runs,
        if ablated_total.inconsistent_runs > 0 { "CONFIRMED" } else { "NOT OBSERVED" }
    );
}
