//! Ablation: how the replica count affects the paper's properties.
//!
//! The paper analyzes two CEs and notes the analysis "can be easily
//! extended". This sweep runs the lossy-aggressive scenario class with
//! 1–4 replicas under AD-1 and AD-4:
//!
//! * one replica is the corresponding non-replicated system — no
//!   property can be violated by construction;
//! * more replicas make AD-1's inconsistency *more* frequent (more
//!   divergent views of the update stream);
//! * AD-4 keeps orderedness and consistency at every replica count,
//!   paying with completeness.

use rcm_bench::Cli;
use rcm_sim::montecarlo::{evaluate_cell_n, FilterKind, ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    replicas: usize,
    filter: &'static str,
    unordered: u64,
    incomplete: u64,
    inconsistent: u64,
    runs: u64,
}

fn main() {
    let cli = Cli::parse(120);
    let mut rows = Vec::new();
    for replicas in 1..=4usize {
        for filter in [FilterKind::Ad1, FilterKind::Ad4] {
            let c = evaluate_cell_n(
                ScenarioKind::LossyAggressive,
                Topology::SingleVar,
                filter,
                cli.runs,
                cli.seed,
                replicas,
            );
            rows.push(Row {
                replicas,
                filter: filter.label(),
                unordered: c.unordered,
                incomplete: c.incomplete,
                inconsistent: c.inconsistent,
                runs: cli.runs,
            });
        }
    }

    if cli.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!(
        "Violations vs replica count (lossy aggressive scenario, {} runs/cell, seed {})\n",
        cli.runs, cli.seed
    );
    println!(
        "{:>8} {:>7} {:>11} {:>12} {:>14}",
        "replicas", "filter", "unordered", "incomplete", "inconsistent"
    );
    for r in &rows {
        println!(
            "{:>8} {:>7} {:>11} {:>12} {:>14}",
            r.replicas, r.filter, r.unordered, r.incomplete, r.inconsistent
        );
    }

    let single_ok = rows
        .iter()
        .filter(|r| r.replicas == 1)
        .all(|r| r.unordered + r.incomplete + r.inconsistent == 0);
    let ad4_ok =
        rows.iter().filter(|r| r.filter == "AD-4").all(|r| r.unordered + r.inconsistent == 0);
    println!(
        "\nnon-replicated baseline violation-free: {}",
        if single_ok { "CONFIRMED" } else { "VIOLATED" }
    );
    println!(
        "AD-4 ordered+consistent at every replica count: {}",
        if ad4_ok { "CONFIRMED" } else { "VIOLATED" }
    );
}
