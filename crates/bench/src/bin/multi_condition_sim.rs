//! Multi-condition systems experiment (paper Appendix D).
//!
//! Simulates the Fig. D-7(c) construction — two replicated conditions
//! over a shared Data Monitor, demultiplexed at one Alert Displayer —
//! across many seeds, and verifies the appendix's claim: per-condition
//! filtering preserves each stream's single-condition guarantees
//! (AD-4: ordered + consistent per condition).

use std::sync::Arc;

use rcm_bench::Cli;
use rcm_core::ad::{apply_filter, Ad4, PerCondition};
use rcm_core::condition::{Cmp, Condition, Conservative, DeltaRise, Threshold};
use rcm_core::VarId;
use rcm_props::{check_complete_single, check_consistent_single, check_ordered};
use rcm_sim::multicond::{run_multi, MultiCondResult, MultiCondScenario, SharedWorkload};
use rcm_sim::{DelaySpec, LossSpec, ValueSpec};
use serde::Serialize;

#[derive(Debug, Default, Serialize)]
struct StreamTally {
    name: String,
    alerts_shown: usize,
    unordered: u64,
    incomplete: u64,
    inconsistent: u64,
}

fn main() {
    let cli = Cli::parse(100);
    let x = VarId::new(0);
    let conditions: Vec<Arc<dyn Condition>> = vec![
        Arc::new(Threshold::new(x, Cmp::Gt, 115.0)),
        Arc::new(DeltaRise::new(x, 15.0)),
        Arc::new(Conservative::new(DeltaRise::new(x, 12.0))),
    ];

    let mut tallies: Vec<StreamTally> =
        conditions.iter().map(|c| StreamTally { name: c.name(), ..Default::default() }).collect();

    for i in 0..cli.runs {
        let seed = cli.seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
        let scenario = MultiCondScenario {
            conditions: conditions.clone(),
            replicas: 2,
            workloads: vec![SharedWorkload {
                var: x,
                updates: 24,
                period: 10,
                offset: 0,
                values: ValueSpec::RandomWalk { start: 100.0, step: 25.0, lo: 0.0, hi: 200.0 },
            }],
            front_loss: LossSpec::Bernoulli(0.2),
            front_delay: DelaySpec::Uniform(0, 3),
            back_delay: DelaySpec::Uniform(0, 30),
            seed,
        };
        let result = run_multi(&scenario);
        let mut ad = PerCondition::new(|_c| Ad4::new(x));
        let displayed = apply_filter(&mut ad, &result.arrivals);
        for (ci, cond) in conditions.iter().enumerate() {
            let stream = MultiCondResult::stream_of(&displayed, ci as u32);
            let inputs = &result.per_condition[ci].inputs;
            let t = &mut tallies[ci];
            t.alerts_shown += stream.len();
            if !check_ordered(&stream, &[x]).ok {
                t.unordered += 1;
            }
            if !check_complete_single(cond, inputs, &stream).ok {
                t.incomplete += 1;
            }
            if !check_consistent_single(cond, inputs, &stream).ok {
                t.inconsistent += 1;
            }
        }
    }

    if cli.json {
        println!("{}", serde_json::to_string_pretty(&tallies).expect("serializable"));
        return;
    }

    println!(
        "Multi-condition system: 3 conditions × 2 replicas over one DM, \
         per-condition AD-4 ({} runs, seed {})\n",
        cli.runs, cli.seed
    );
    println!(
        "{:<52} {:>7} {:>10} {:>11} {:>13}",
        "condition", "shown", "unordered", "incomplete", "inconsistent"
    );
    for t in &tallies {
        println!(
            "{:<52} {:>7} {:>10} {:>11} {:>13}",
            t.name, t.alerts_shown, t.unordered, t.incomplete, t.inconsistent
        );
    }
    let guarantees_hold = tallies.iter().all(|t| t.unordered == 0 && t.inconsistent == 0);
    println!(
        "\nAppendix D claim (per-condition filtering preserves each stream's \
         orderedness + consistency): {}",
        if guarantees_hold { "CONFIRMED" } else { "VIOLATED" }
    );
}
