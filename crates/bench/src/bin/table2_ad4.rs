//! Reproduces the **§4.4 prose table**: Table 2 under Algorithm AD-4
//! (orderedness + consistency) — identical to Table 2 except that the
//! aggressive-triggering row becomes consistent.

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(200);
    let m = property_matrix(
        "Table 2': single-variable systems",
        Topology::SingleVar,
        FilterKind::Ad4,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
