//! Reproduces the **§4.1 domination results** (Theorems 6 and 8):
//! `AD-1 > AD-2`, `AD-1 > AD-3`, and the implied chain down to AD-4 —
//! swept over front-link loss rates to show *how many* alerts each
//! property costs.
//!
//! For each loss rate the harness simulates many replicated executions
//! of an aggressively triggered condition, feeds the identical merged
//! alert arrivals to each algorithm, verifies the subsequence relation
//! on every trace, and reports pass-through fractions.

use rcm_bench::{executions, Cli};
use rcm_core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter};
use rcm_core::{Alert, VarId};
use rcm_props::domination::check_domination;
use rcm_sim::montecarlo::{ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    scenario: &'static str,
    arrivals: usize,
    passed: [usize; 4], // AD-1..AD-4
    dominations: Vec<DominationResult>,
}

#[derive(Debug, Serialize)]
struct DominationResult {
    pair: String,
    holds: bool,
    strict: bool,
}

fn main() {
    let cli = Cli::parse(120);
    let x = VarId::new(0);
    let kinds = [
        ScenarioKind::Lossless,
        ScenarioKind::LossyNonHistorical,
        ScenarioKind::LossyConservative,
        ScenarioKind::LossyAggressive,
    ];

    let mut points = Vec::new();
    for kind in kinds {
        let execs = executions(kind, Topology::SingleVar, cli.runs, cli.seed);
        let workloads: Vec<Vec<Alert>> = execs.iter().map(|e| e.arrivals.clone()).collect();
        let total: usize = workloads.iter().map(Vec::len).sum();

        let passed = [
            pass_count(&workloads, || Box::new(Ad1::new()) as Box<dyn AlertFilter>),
            pass_count(&workloads, || Box::new(Ad2::new(x)) as Box<dyn AlertFilter>),
            pass_count(&workloads, || Box::new(Ad3::new(x)) as Box<dyn AlertFilter>),
            pass_count(&workloads, || Box::new(Ad4::new(x)) as Box<dyn AlertFilter>),
        ];

        // The first three are theorems (6, 8, and their AD-4 corollary);
        // the last two are *observational*: domination is not preserved
        // under composition, because AD-4's sub-filter watermarks only
        // advance on alerts passing BOTH checks, so standalone AD-2/AD-3
        // state can diverge from AD-4's and either may pass an alert the
        // other drops.
        let mut dominations = Vec::new();
        for (name, report) in [
            ("AD-1 ≥ AD-2", check_domination(Ad1::new, || Ad2::new(x), &workloads)),
            ("AD-1 ≥ AD-3", check_domination(Ad1::new, || Ad3::new(x), &workloads)),
            ("AD-1 ≥ AD-4", check_domination(Ad1::new, || Ad4::new(x), &workloads)),
            (
                "AD-2 ≥ AD-4 (not a theorem)",
                check_domination(|| Ad2::new(x), || Ad4::new(x), &workloads),
            ),
            (
                "AD-3 ≥ AD-4 (not a theorem)",
                check_domination(|| Ad3::new(x), || Ad4::new(x), &workloads),
            ),
        ] {
            dominations.push(DominationResult {
                pair: name.to_owned(),
                holds: report.holds,
                strict: report.strict,
            });
        }
        points.push(SweepPoint { scenario: kind.label(), arrivals: total, passed, dominations });
    }

    if cli.json {
        println!("{}", serde_json::to_string_pretty(&points).expect("serializable"));
        return;
    }

    println!("Domination sweep ({} runs per scenario, seed {})\n", cli.runs, cli.seed);
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Scenario", "arrivals", "AD-1", "AD-2", "AD-3", "AD-4"
    );
    for p in &points {
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9}",
            p.scenario, p.arrivals, p.passed[0], p.passed[1], p.passed[2], p.passed[3]
        );
    }
    println!("\nDomination verdicts (must hold on every trace):");
    for p in &points {
        let verdicts: Vec<String> = p
            .dominations
            .iter()
            .map(|d| {
                format!(
                    "{} {}",
                    d.pair,
                    if !d.holds {
                        "VIOLATED"
                    } else if d.strict {
                        "holds (strict)"
                    } else {
                        "holds"
                    }
                )
            })
            .collect();
        println!("  {:<18} {}", p.scenario, verdicts.join(" | "));
    }
    // Only the AD-1-rooted pairs are theorems; the composed pairs are
    // reported for interest (they can legitimately fail).
    let theorems_hold = points.iter().all(|p| p.dominations.iter().take(3).all(|d| d.holds));
    println!(
        "\nTheorems 6 & 8 prediction (AD-1 dominates AD-2/AD-3/AD-4 on every trace): {}",
        if theorems_hold { "CONFIRMED" } else { "VIOLATED" }
    );

    // Multi-variable analogues: AD-1 also dominates AD-5 and AD-6
    // (AD-5's duplicate test — all heads equal — is implied by exact
    // identity, and its state only grows).
    let y = VarId::new(1);
    let mut multi_ok = true;
    println!("\nMulti-variable domination (lossy aggressive, two variables):");
    for kind in kinds {
        let execs = executions(kind, Topology::MultiVar, cli.runs, cli.seed ^ 0x5);
        let workloads: Vec<Vec<Alert>> = execs.iter().map(|e| e.arrivals.clone()).collect();
        for (name, report) in [
            ("AD-1 ≥ AD-5", check_domination(Ad1::new, || Ad5::new([x, y]), &workloads)),
            ("AD-1 ≥ AD-6", check_domination(Ad1::new, || Ad6::new([x, y]), &workloads)),
            (
                "AD-5 ≥ AD-6 (not a theorem)",
                check_domination(|| Ad5::new([x, y]), || Ad6::new([x, y]), &workloads),
            ),
        ] {
            if name.contains("theorem") {
                // observational only
            } else if !report.holds {
                multi_ok = false;
            }
            println!(
                "  {:<18} {} {}",
                kind.label(),
                name,
                if !report.holds {
                    "VIOLATED"
                } else if report.strict {
                    "holds (strict)"
                } else {
                    "holds"
                }
            );
        }
    }
    println!(
        "\nMulti-variable AD-1 domination: {}",
        if multi_ok { "CONFIRMED" } else { "VIOLATED" }
    );
}

fn pass_count(workloads: &[Vec<Alert>], mut make: impl FnMut() -> Box<dyn AlertFilter>) -> usize {
    workloads
        .iter()
        .map(|w| {
            let mut f = make();
            apply_filter(&mut *f, w).len()
        })
        .sum()
}
