//! Reproduces **Table 2**: properties of single-variable replicated
//! systems under Algorithm AD-2 (orderedness enforcement).

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(200);
    let m = property_matrix(
        "Table 2: single-variable systems",
        Topology::SingleVar,
        FilterKind::Ad2,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
