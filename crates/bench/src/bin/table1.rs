//! Reproduces **Table 1**: properties of single-variable replicated
//! systems under Algorithm AD-1 (exact duplicate removal).

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(200);
    let m = property_matrix(
        "Table 1: single-variable systems",
        Topology::SingleVar,
        FilterKind::Ad1,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
