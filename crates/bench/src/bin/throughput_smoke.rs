//! CI smoke check for the multi-condition engine: over the shared
//! `rcm_bench::throughput` workload, incremental re-evaluation must (a)
//! emit exactly the alerts a full expression walk emits and (b) not be
//! slower than it. Runs in seconds with tiny iteration counts — it is
//! a direction check, not a measurement; `bench_snapshot` produces the
//! gated numbers.
//!
//! Usage: `throughput_smoke [--conditions N] [--updates N] [--trials N]`
//! Exits non-zero on an equivalence mismatch or when full re-evaluation
//! beats incremental (best-of-`trials` for each mode, interleaved so
//! machine noise hits both alike).

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rcm_bench::throughput;
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, ConditionRegistry, Update};

/// One full pass over the stream, from cleared histories.
fn pass(reg: &mut ConditionRegistry, updates: &[Update], out: &mut Vec<Alert>) -> usize {
    reg.restart();
    out.clear();
    reg.ingest_batch(black_box(updates), out);
    out.len()
}

/// Next argument parsed as an integer, or a panic with the flag name.
fn next_int(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| panic!("{flag} takes an integer"))
}

fn main() -> ExitCode {
    let (mut n_conds, mut n_updates, mut trials) = (100usize, 1024usize, 5usize);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conditions" => n_conds = next_int(&mut args, "--conditions"),
            "--updates" => n_updates = next_int(&mut args, "--updates"),
            "--trials" => trials = next_int(&mut args, "--trials"),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: throughput_smoke [--conditions N] [--updates N] [--trials N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let (conds, ids) = throughput::conditions(n_conds);
    let updates = throughput::stream(&ids, n_updates);
    let mut incremental = ConditionRegistry::new(CeId::new(0));
    let mut full = ConditionRegistry::new(CeId::new(0));
    for cond in &conds {
        incremental.add_compiled(cond.clone());
        full.add(Arc::new(cond.clone()) as Arc<dyn Condition>);
    }

    // Equivalence first: both modes must emit identical alert streams.
    let (mut a, mut b) = (Vec::new(), Vec::new());
    pass(&mut incremental, &updates, &mut a);
    pass(&mut full, &updates, &mut b);
    if a != b || a.iter().zip(&b).any(|(x, y)| x.id != y.id) {
        eprintln!(
            "FAIL: incremental and full evaluation diverged ({} vs {} alerts)",
            a.len(),
            b.len()
        );
        return ExitCode::FAILURE;
    }

    // Best-of-`trials`, interleaved (warm-up pass already done above).
    let (mut inc_best, mut full_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        let t = Instant::now();
        black_box(pass(&mut incremental, &updates, &mut a));
        inc_best = inc_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(pass(&mut full, &updates, &mut b));
        full_best = full_best.min(t.elapsed().as_secs_f64());
    }
    let inc_ups = n_updates as f64 / inc_best;
    let full_ups = n_updates as f64 / full_best;
    println!(
        "throughput_smoke: {n_conds} conditions, {n_updates} updates, {} alerts/pass",
        a.len()
    );
    println!("  incremental: {inc_ups:>12.0} updates/sec");
    println!("  full_reeval: {full_ups:>12.0} updates/sec");
    println!("  speedup:     {:>12.2}x", inc_ups / full_ups);

    if inc_ups < full_ups {
        eprintln!("FAIL: incremental evaluation is slower than the full re-evaluation walk");
        return ExitCode::FAILURE;
    }
    println!("ok: incremental >= full re-evaluation");
    ExitCode::SUCCESS
}
