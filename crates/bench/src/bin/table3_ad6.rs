//! Reproduces the **§5.2 prose table**: Table 3 under Algorithm AD-6 —
//! identical to Table 3 except that the aggressive-triggering row
//! becomes consistent.

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(100);
    let m = property_matrix(
        "Table 3': multi-variable systems",
        Topology::MultiVar,
        FilterKind::Ad6,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
