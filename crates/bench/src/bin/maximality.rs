//! Reproduces the **maximality theorems** (5, 7 and 9) empirically:
//! for every alert AD-2/AD-3/AD-4 discards across many randomized
//! executions, splicing that alert back into the output must violate
//! the respective property — so no property-preserving filter can pass
//! strictly more alerts.

use rcm_bench::{executions, Cli};
use rcm_core::ad::{Ad2, Ad3, Ad4};
use rcm_core::VarId;
use rcm_props::maximality::{duplicate_free, probe_one_extra, seqno_duplicate_free};
use rcm_props::{check_consistent_single, check_ordered};
use rcm_sim::montecarlo::{ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Default, Serialize)]
struct Tally {
    executions: u64,
    probed: usize,
    violations: usize,
    survivors: usize,
}

fn main() {
    let cli = Cli::parse(150);
    let x = VarId::new(0);
    let kinds = [
        ScenarioKind::LossyNonHistorical,
        ScenarioKind::LossyConservative,
        ScenarioKind::LossyAggressive,
    ];

    let mut ad2 = Tally::default();
    let mut ad3 = Tally::default();
    let mut ad4 = Tally::default();
    for kind in kinds {
        for e in executions(kind, Topology::SingleVar, cli.runs / 3, cli.seed) {
            let cond = &e.condition;
            let inputs = &e.inputs;

            // Each property is conjoined with the matching duplicate-
            // freedom predicate: the theorems quantify over filters
            // that remove duplicates (the AD's baseline duty), and at
            // AD-2's abstraction an alert IS its sequence numbers.
            let r = probe_one_extra(
                || Ad2::new(x),
                &e.arrivals,
                |a| seqno_duplicate_free(a, &[x]) && check_ordered(a, &[x]).ok,
            );
            tally(&mut ad2, &r);

            let r = probe_one_extra(
                || Ad3::new(x),
                &e.arrivals,
                |a| duplicate_free(a) && check_consistent_single(cond, inputs, a).ok,
            );
            tally(&mut ad3, &r);

            let r = probe_one_extra(
                || Ad4::new(x),
                &e.arrivals,
                |a| {
                    seqno_duplicate_free(a, &[x])
                        && check_ordered(a, &[x]).ok
                        && check_consistent_single(cond, inputs, a).ok
                },
            );
            tally(&mut ad4, &r);
        }
    }

    if cli.json {
        let out = serde_json::json!({ "ad2": ad2, "ad3": ad3, "ad4": ad4 });
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
        return;
    }

    println!("Maximality probes ({} executions, seed {})\n", cli.runs, cli.seed);
    println!(
        "{:<28} {:>8} {:>11} {:>10}",
        "Filter (property)", "probed", "violations", "survivors"
    );
    report("AD-2 (ordered, Thm 5)", &ad2);
    report("AD-3 (consistent, Thm 7)", &ad3);
    report("AD-4 (both, Thm 9)", &ad4);
    let ok = ad2.survivors == 0 && ad3.survivors == 0 && ad4.survivors == 0;
    println!(
        "\nMaximality prediction (every splice violates the property): {}",
        if ok { "CONFIRMED" } else { "VIOLATED" }
    );
}

fn tally(t: &mut Tally, r: &rcm_props::maximality::ProbeReport) {
    t.executions += 1;
    t.probed += r.probed;
    t.violations += r.violations;
    t.survivors += r.survivors.len();
}

fn report(name: &str, t: &Tally) {
    println!("{:<28} {:>8} {:>11} {:>10}", name, t.probed, t.violations, t.survivors);
}
