//! Writes `BENCH_rcm.json`: a machine-readable snapshot of the hot-path
//! numbers the criterion benches measure interactively — fingerprint
//! construction, AD-3/AD-6 offer throughput (interval vs the BTreeSet
//! reference), and the Monte-Carlo matrix wall-clock serial vs
//! parallel.
//!
//! Usage: `cargo run -p rcm-bench --release --bin bench_snapshot`
//! (accepts `--runs N` for the matrix budget and `--seed N`; `--json`
//! additionally echoes the snapshot to stdout).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use rcm_bench::{executions, throughput, Cli};
use rcm_core::ad::{apply_filter, Ad3, Ad6, AlertFilter, BTreeConsistency};
use rcm_core::condition::Condition;
use rcm_core::{
    Alert, AlertId, CeId, CondId, ConditionRegistry, HistoryFingerprint, HistorySet, SeqNo, Update,
    VarId,
};
use rcm_sim::montecarlo::{property_matrix, FilterKind, ScenarioKind, Topology};
use rcm_sim::par::{harness_threads, with_threads};
use rcm_transport::wire::{self, Codec, Message};
use serde_json::json;

/// Mean seconds per call of `f` over `iters` timed iterations (plus
/// one warm-up call).
fn time<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn arrivals(topo: Topology, seed: u64) -> Vec<Alert> {
    executions(ScenarioKind::LossyAggressive, topo, 300, seed)
        .into_iter()
        .flat_map(|e| e.arrivals)
        .collect()
}

/// Degree-2 histories marching upward with a gap every eighth step —
/// the stream shape where per-seqno bookkeeping grows without bound.
fn marching_arrivals(n: u64) -> Vec<Alert> {
    let x = VarId::new(0);
    let mut seq = 1u64;
    (0..n)
        .map(|i| {
            let prev = seq;
            seq += if i % 8 == 7 { 2 } else { 1 };
            Alert::new(
                CondId::SINGLE,
                HistoryFingerprint::single(x, vec![SeqNo::new(seq), SeqNo::new(prev)]),
                vec![],
                AlertId { ce: CeId::new(0), index: i },
            )
        })
        .collect()
}

/// Times one filter constructor over a stream; returns offers/second.
fn offers_per_sec<F: AlertFilter>(iters: u32, s: &[Alert], mk: impl Fn() -> F) -> f64 {
    let secs = time(iters, || {
        let mut f = mk();
        apply_filter(&mut f, black_box(s)).len()
    });
    s.len() as f64 / secs
}

fn filter_pair<A, B>(
    iters: u32,
    s: &[Alert],
    fast: impl Fn() -> A,
    reference: impl Fn() -> B,
) -> serde_json::Value
where
    A: AlertFilter,
    B: AlertFilter,
{
    let fast_ops = offers_per_sec(iters, s, fast);
    let ref_ops = offers_per_sec(iters, s, reference);
    json!({
        "alerts": s.len(),
        "interval_offers_per_sec": fast_ops,
        "btree_offers_per_sec": ref_ops,
        "speedup": fast_ops / ref_ops,
    })
}

/// Registry ingest throughput over the shared `rcm_bench::throughput`
/// workload at one condition-count size: updates/second with
/// incremental re-evaluation vs a full expression walk per routed
/// arrival. Asserts the two modes emit identical alerts first.
fn throughput_cell(n_conds: usize, n_updates: usize, iters: u32) -> serde_json::Value {
    let (conds, ids) = throughput::conditions(n_conds);
    let updates = throughput::stream(&ids, n_updates);
    let mut incremental = ConditionRegistry::new(CeId::new(0));
    let mut full = ConditionRegistry::new(CeId::new(0));
    for cond in &conds {
        incremental.add_compiled(cond.clone());
        full.add(Arc::new(cond.clone()) as Arc<dyn Condition>);
    }

    let (mut a, mut b) = (Vec::new(), Vec::new());
    incremental.ingest_batch(&updates, &mut a);
    full.ingest_batch(&updates, &mut b);
    assert_eq!(a, b, "incremental and full evaluation must emit identical alerts");

    let mut out: Vec<Alert> = Vec::new();
    let inc_secs = time(iters, || {
        incremental.restart();
        out.clear();
        incremental.ingest_batch(black_box(&updates), &mut out);
        out.len()
    });
    let full_secs = time(iters, || {
        full.restart();
        out.clear();
        full.ingest_batch(black_box(&updates), &mut out);
        out.len()
    });
    let inc_ups = n_updates as f64 / inc_secs;
    let full_ups = n_updates as f64 / full_secs;
    json!({
        "conditions": n_conds,
        "updates_per_pass": n_updates,
        "incremental_ups": inc_ups,
        "full_ups": full_ups,
        "speedup": inc_ups / full_ups,
    })
}

/// Evaluation-pipeline throughput over the shared workload: the
/// single-threaded registry (the inline actor path) vs
/// [`EvalPipeline`] at 1 / 4 / 8 shard workers, updates/second.
/// Asserts byte-identical output (ids included) at every worker count
/// first; `speedup_4` for the 10k-condition cell is the ratio
/// `bench_gate` floors at 2×.
fn pipeline_cell(n_conds: usize, n_updates: usize, iters: u32) -> serde_json::Value {
    use rcm_runtime::{AlertDrain, EvalPipeline, PipelineOptions};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    struct Sink {
        alerts: Arc<Mutex<Vec<Alert>>>,
        keep: bool,
        count: Arc<AtomicU64>,
    }
    impl AlertDrain for Sink {
        fn alerts(&mut self, alerts: Vec<Alert>) {
            self.count.fetch_add(alerts.len() as u64, Ordering::Relaxed);
            if self.keep {
                self.alerts.lock().expect("sink lock").extend(alerts);
            }
        }
        fn end_of_stream(&mut self) {}
    }

    let (compiled, ids) = throughput::conditions(n_conds);
    let updates = throughput::stream(&ids, n_updates);
    let conds: Vec<Arc<dyn Condition>> =
        compiled.iter().map(|c| Arc::new(c.clone()) as Arc<dyn Condition>).collect();

    let mut registry = ConditionRegistry::new(CeId::new(0));
    for cond in &conds {
        registry.add(Arc::clone(cond));
    }
    let mut want = Vec::new();
    registry.ingest_batch(&updates, &mut want);

    let pass = |workers: usize, keep: bool| -> Arc<Mutex<Vec<Alert>>> {
        let alerts = Arc::new(Mutex::new(Vec::new()));
        let sink = Sink { alerts: Arc::clone(&alerts), keep, count: Arc::new(AtomicU64::new(0)) };
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            &conds,
            &PipelineOptions::with_workers(workers),
            Box::new(sink),
            Arc::new(rcm_core::LatencyHistogram::new()),
            Arc::new(AtomicU64::new(0)),
        );
        for &u in &updates {
            pipe.dispatch_wait(u);
        }
        pipe.finish();
        alerts
    };

    let inline_secs = time(iters, || {
        registry.restart();
        let mut out = Vec::new();
        registry.ingest_batch(black_box(&updates), &mut out);
        out.len()
    });
    let inline_ups = n_updates as f64 / inline_secs;
    let timed = |workers: usize| -> f64 {
        let got = pass(workers, true);
        let got = got.lock().expect("sink lock");
        assert_eq!(*got, want, "{workers}-worker pipeline diverged from the registry");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id, "AlertId numbering diverged at {workers} workers");
        }
        drop(got);
        let secs = time(iters, || {
            pass(workers, false);
        });
        n_updates as f64 / secs
    };
    let (ups_1, ups_4, ups_8) = (timed(1), timed(4), timed(8));
    json!({
        "conditions": n_conds,
        "updates_per_pass": n_updates,
        "inline_ups": inline_ups,
        "workers_1_ups": ups_1,
        "workers_4_ups": ups_4,
        "workers_8_ups": ups_8,
        "speedup_4": ups_4 / inline_ups,
    })
}

/// Aggregation-tree fan-in throughput over a single-variable threshold
/// workload: the flat registry every other cell measures vs a 2-tier
/// (leaves → root) and a 3-tier (leaves → relays → root) tree walked
/// deterministically by `TreeEval`, sustained updates/second — plus
/// update→root-display latency percentiles for both tree shapes, from
/// a separate instrumented pass so the throughput numbers stay clean.
/// The three configurations are asserted alert-count-identical first
/// (the keystone equivalence proptest pins the bytes; this cell only
/// measures).
fn tree_cell(n_vars: usize, n_updates: usize, iters: u32) -> serde_json::Value {
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::LatencyHistogram;
    use rcm_tree::{TreeEval, TreeOptions, TreePlan};

    let updates: Vec<Update> = (0..n_updates)
        .map(|i| {
            let var = (i % n_vars) as u32;
            let seq = (i / n_vars + 1) as u64;
            // Alternate firing / non-firing so the root sees a real
            // alert stream without every update paying the alert path.
            Update::new(VarId::new(var), seq, if i % 2 == 0 { 1.0 } else { -1.0 })
        })
        .collect();

    let plan = |leaves: usize, relay_tiers: usize, fanout: usize| -> TreePlan {
        let mut plan = TreePlan::new(leaves).with_relay_tiers(relay_tiers).with_fanout(fanout);
        for v in 0..n_vars {
            let var = VarId::new(v as u32);
            plan.own(var, v % leaves);
            plan.add_condition(
                CondId::new(v as u32),
                Arc::new(Threshold::new(var, Cmp::Gt, 0.0)) as Arc<dyn Condition>,
            )
            .expect("single-variable condition lands on its owning leaf");
        }
        plan
    };
    let opts = TreeOptions { root_ce: CeId::new(0), ..TreeOptions::default() };

    let mut flat = ConditionRegistry::new(CeId::new(0));
    for v in 0..n_vars {
        let var = VarId::new(v as u32);
        flat.add(Arc::new(Threshold::new(var, Cmp::Gt, 0.0)) as Arc<dyn Condition>);
    }
    let mut want = Vec::new();
    flat.ingest_batch(&updates, &mut want);

    // Tree passes rebuild the tree each iteration (a `TreeEval` has no
    // restart); at thousands of updates per pass the build cost is
    // noise, and both shapes pay it identically.
    let tree_pass = |leaves: usize, relay_tiers: usize, fanout: usize| -> Vec<Alert> {
        let mut eval = TreeEval::build(plan(leaves, relay_tiers, fanout), opts.clone());
        let mut out = Vec::new();
        for &u in &updates {
            eval.ingest(u, &mut out);
        }
        out
    };
    for (leaves, tiers, fanout) in [(8, 0, 8), (16, 1, 4)] {
        let got = tree_pass(leaves, tiers, fanout);
        assert_eq!(
            got.len(),
            want.len(),
            "{leaves}-leaf tree displayed {} alerts, flat registry {}",
            got.len(),
            want.len()
        );
    }

    let flat_secs = time(iters, || {
        flat.restart();
        let mut out = Vec::new();
        flat.ingest_batch(black_box(&updates), &mut out);
        out.len()
    });
    let tier2_secs = time(iters, || tree_pass(8, 0, 8).len());
    let tier3_secs = time(iters, || tree_pass(16, 1, 4).len());
    let flat_ups = n_updates as f64 / flat_secs;
    let tier2_ups = n_updates as f64 / tier2_secs;
    let tier3_ups = n_updates as f64 / tier3_secs;

    // Instrumented pass: wall-clock from handing an update to the tree
    // to its root alerts being displayed, recorded only for updates
    // that fired.
    let latency = |leaves: usize, relay_tiers: usize, fanout: usize| -> serde_json::Value {
        let mut eval = TreeEval::build(plan(leaves, relay_tiers, fanout), opts.clone());
        let hist = LatencyHistogram::new();
        let mut out = Vec::new();
        for &u in &updates {
            let start = Instant::now();
            eval.ingest(u, &mut out);
            if !out.is_empty() {
                hist.record(start.elapsed().as_nanos() as u64);
                out.clear();
            }
        }
        let snap = hist.snapshot();
        json!({
            "alerts": snap.count,
            "p50_ns": snap.p50_ns,
            "p99_ns": snap.p99_ns,
            "p999_ns": snap.p999_ns,
        })
    };

    json!({
        "vars": n_vars,
        "updates_per_pass": n_updates,
        "flat_ups": flat_ups,
        "tier2_ups": tier2_ups,
        "tier3_ups": tier3_ups,
        "tier2_over_flat": tier2_ups / flat_ups,
        "tier3_over_flat": tier3_ups / flat_ups,
        "tier2_root_latency": latency(8, 0, 8),
        "tier3_root_latency": latency(16, 1, 4),
    })
}

/// Wire-codec roundtrip throughput over the `codec` criterion bench's
/// update workload: encode∘decode updates/second as JSON frames,
/// binary frames, and one binary `UpdateBatch` frame — the deployment
/// configuration. `speedup_vs_json` (batched binary over per-frame
/// JSON) is the ratio `bench_gate` floors at 10×.
fn codec_cell(iters: u32) -> serde_json::Value {
    const BATCH: u64 = 64;
    let updates: Vec<Update> = (1..=BATCH)
        .map(|s| Update::new(VarId::new((s % 4) as u32), s, s as f64 * 1.5 - 40.0))
        .collect();

    // Every mode reuses one frame buffer, so neither codec pays an
    // allocation the others skip.
    let per_frame = |codec: Codec| {
        let mut frame = Vec::with_capacity(4096);
        let secs = time(iters, || {
            let mut delivered = 0u64;
            for u in &updates {
                frame.clear();
                wire::encode_into(codec, &Message::Update(*u), &mut frame).expect("update encodes");
                match wire::decode_datagram(black_box(&frame)).expect("update decodes") {
                    Message::Update(got) => delivered += u64::from(got.seqno == u.seqno),
                    _ => unreachable!("update frame"),
                }
            }
            delivered
        });
        BATCH as f64 / secs
    };
    let json_ups = per_frame(Codec::Json);
    let binary_ups = per_frame(Codec::Binary);

    let mut frame = Vec::with_capacity(4096);
    let batched_secs = time(iters, || {
        frame.clear();
        wire::encode_updates_into(Codec::Binary, &updates, &mut frame).expect("batch encodes");
        match wire::decode_datagram(black_box(&frame)).expect("batch decodes") {
            Message::UpdateBatch(got) => got.len(),
            _ => unreachable!("batch frame"),
        }
    });
    let binary_batched_ups = BATCH as f64 / batched_secs;

    json!({
        "updates_per_pass": BATCH,
        "json_ups": json_ups,
        "binary_ups": binary_ups,
        "binary_batched_ups": binary_batched_ups,
        "speedup_vs_json": binary_batched_ups / json_ups,
    })
}

fn main() {
    let cli = Cli::parse(60);
    let x = VarId::new(0);
    let y = VarId::new(1);

    // Fingerprint construction: inline (History::fingerprint) vs the
    // old shape that collects every seqno list into a fresh Vec.
    let mut set = HistorySet::new([(x, 3), (y, 3)]);
    for s in 1..=5u64 {
        set.push(Update::new(x, s, s as f64)).unwrap();
        set.push(Update::new(y, s, -(s as f64))).unwrap();
    }
    let inline_s = time(200_000, || set.fingerprint());
    let rebuild_s = time(200_000, || {
        let entries: Vec<(VarId, Vec<SeqNo>)> =
            set.iter().map(|h| (h.var(), h.seqnos().to_vec())).collect();
        HistoryFingerprint::new(entries)
    });

    let single = arrivals(Topology::SingleVar, 7);
    let multi = arrivals(Topology::MultiVar, 7);
    let marching = marching_arrivals(4_000);

    let ad3 = filter_pair(20, &single, || Ad3::new(x), || Ad3::<BTreeConsistency>::with_state(x));
    let ad3_marching =
        filter_pair(20, &marching, || Ad3::new(x), || Ad3::<BTreeConsistency>::with_state(x));
    let ad6 = filter_pair(
        20,
        &multi,
        || Ad6::new([x, y]),
        || Ad6::<BTreeConsistency>::with_state([x, y]),
    );

    // Registry ingest throughput: 1 / 100 / 10k hosted conditions,
    // incremental vs full re-evaluation (shared workload with the
    // criterion `throughput` bench and `throughput_smoke`).
    let throughput = json!({
        "conds_1": throughput_cell(1, 4096, 40),
        "conds_100": throughput_cell(100, 2048, 20),
        "conds_10k": throughput_cell(10_000, 256, 5),
    });

    // Evaluation-pipeline throughput: inline registry vs shard workers
    // (shared workload with the `pipeline` criterion bench;
    // `bench_gate` floors the 10k-condition 4-worker speedup at 2×).
    let pipeline = json!({
        "conds_100": pipeline_cell(100, 2048, 10),
        "conds_10k": pipeline_cell(10_000, 256, 3),
    });

    // Wire-codec roundtrip throughput (shared workload with the
    // `codec` criterion bench).
    let codec = codec_cell(2_000);

    // Aggregation-tree fan-in: flat registry vs 2-tier vs 3-tier, with
    // update→root-display latency percentiles per tree shape.
    let tree = tree_cell(64, 8_192, 10);

    // Matrix wall-clock, one thread vs the harness default.
    let threads = harness_threads();
    let table =
        || property_matrix("Table 1", Topology::SingleVar, FilterKind::Ad1, cli.runs, cli.seed);
    let serial_start = Instant::now();
    let serial = with_threads(1, table);
    let serial_secs = serial_start.elapsed().as_secs_f64();
    let par_start = Instant::now();
    let par = table();
    let par_secs = par_start.elapsed().as_secs_f64();
    assert_eq!(serial, par, "matrix must be bit-identical serial vs parallel");

    let snapshot = json!({
        "meta": {
            "generator": "cargo run -p rcm-bench --release --bin bench_snapshot",
            "placeholder": false,
            "seed": cli.seed,
            "matrix_runs_per_cell": cli.runs,
            "harness_threads": threads,
        },
        "fingerprint": {
            "inline_ns": inline_s * 1e9,
            "vec_rebuild_ns": rebuild_s * 1e9,
            "speedup": rebuild_s / inline_s,
        },
        "ad3_realistic": ad3,
        "ad3_marching": ad3_marching,
        "ad6_realistic": ad6,
        "throughput": throughput,
        "pipeline": pipeline,
        "codec": codec,
        "tree": tree,
        "matrix_table1_ad1": {
            "serial_secs": serial_secs,
            "parallel_secs": par_secs,
            "threads": threads,
            "speedup": serial_secs / par_secs,
            "bit_identical": true,
        },
    });

    let pretty = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write("BENCH_rcm.json", format!("{pretty}\n")).expect("write BENCH_rcm.json");
    if cli.json {
        println!("{pretty}");
    } else {
        println!("wrote BENCH_rcm.json ({threads} harness threads)");
    }
}
