//! Baseline: the property matrix with **no filtering at all** at the
//! Alert Displayer — what a naive replicated deployment exhibits.
//!
//! The paper's Tables 1–3 all assume at least duplicate removal; this
//! binary shows it is not optional even formally. Completeness and
//! consistency are Φ-set properties, so duplicates cannot violate them
//! — those columns match Table 1 exactly. **Orderedness is different**:
//! without deduplication even the *lossless* row goes unordered,
//! because a replica's late copy of an already-displayed alert arrives
//! with a smaller seqno than the display watermark. Removing exact
//! duplicates is precisely what makes the paper's Corollary 1
//! (`M(A, A) = A`) — and with it Theorem 1's lossless orderedness —
//! hold.

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(100);
    let m = property_matrix(
        "Baseline: single-variable systems, no filtering",
        Topology::SingleVar,
        FilterKind::PassThrough,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
