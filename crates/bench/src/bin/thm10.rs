//! Reproduces **Theorem 10**: a multi-variable replicated system under
//! Algorithm AD-1 is neither ordered nor consistent (hence not
//! complete), even with lossless links.
//!
//! Prints the Monte-Carlo property matrix for multi-variable AD-1 and
//! replays the paper's exact two-reactor counterexample trace.

use rcm_bench::{print_matrix, Cli};
use rcm_core::ad::{apply_filter, Ad1};
use rcm_core::condition::AbsDifference;
use rcm_core::{transduce, Alert, CeId, Update, VarId};
use rcm_props::{check_consistent_multi, check_ordered};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(100);

    let m = property_matrix(
        "Theorem 10: multi-variable systems",
        Topology::MultiVar,
        FilterKind::Ad1,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
    if cli.json {
        return;
    }

    println!("\nPaper counterexample walkthrough (proof of Theorem 10):");
    let x = VarId::new(0);
    let y = VarId::new(1);
    let cm = AbsDifference::new(x, y, 100.0);
    let ux = |s, v| Update::new(x, s, v);
    let uy = |s, v| Update::new(y, s, v);
    // Lossless links; different interleavings at the two CEs.
    let u1 = vec![ux(1, 1000.0), ux(2, 1200.0), uy(1, 1050.0), uy(2, 1150.0)];
    let u2 = vec![uy(1, 1050.0), uy(2, 1150.0), ux(1, 1000.0), ux(2, 1200.0)];
    let a1 = transduce(&cm, CeId::new(1), &u1);
    let a2 = transduce(&cm, CeId::new(2), &u2);
    println!("  CE1 sees ⟨1x,2x,1y,2y⟩ → {}", render(&a1));
    println!("  CE2 sees ⟨1y,2y,1x,2x⟩ → {}", render(&a2));
    let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
    let displayed = apply_filter(&mut Ad1::new(), &arrivals);
    println!("  AD-1 displays {}", render(&displayed));
    let ordered = check_ordered(&displayed, &[x, y]);
    let consistent = check_consistent_multi(&cm, &[u1, u2], &displayed);
    println!("  ordered: {}   consistent: {}", ordered.ok, consistent.ok);
    if let Some(c) = consistent.conflict {
        println!("  conflict: {c}");
    }
    assert!(!ordered.ok && !consistent.ok, "Theorem 10 counterexample must violate both");
}

fn render(alerts: &[Alert]) -> String {
    let parts: Vec<String> = alerts.iter().map(|a| a.to_string()).collect();
    format!("⟨{}⟩", parts.join(", "))
}
