//! Reproduces **Table 3**: properties of multi-variable replicated
//! systems under Algorithm AD-5 (multi-variable orderedness).

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(100);
    let m = property_matrix(
        "Table 3: multi-variable systems",
        Topology::MultiVar,
        FilterKind::Ad5,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
