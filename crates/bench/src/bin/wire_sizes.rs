//! Measures the paper's §2 wire-size observation: how many bytes an
//! alert costs at each payload fidelity, over realistic simulated
//! alert traffic.
//!
//! > "some systems do not need this information at all. Others need
//! > only the update sequence numbers contained in the histories.
//! > Still others … it may be sufficient to send just a checksum."
//!
//! | fidelity | sufficient for |
//! |----------|----------------|
//! | digest | AD-1 |
//! | heads | AD-2 / AD-5 |
//! | seqnos | AD-3 / AD-4 / AD-6 |
//! | full | value-rich displays |

use rcm_bench::{executions, Cli};
use rcm_runtime::wire::{CompactAlert, Fidelity};
use rcm_sim::montecarlo::{ScenarioKind, Topology};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scenario: &'static str,
    alerts: usize,
    digest_avg: f64,
    heads_avg: f64,
    seqnos_avg: f64,
    full_avg: f64,
}

fn main() {
    let cli = Cli::parse(40);
    let mut rows = Vec::new();
    for (label, kind, topo) in [
        ("single-var aggressive", ScenarioKind::LossyAggressive, Topology::SingleVar),
        ("multi-var aggressive", ScenarioKind::LossyAggressive, Topology::MultiVar),
        ("three-var aggressive", ScenarioKind::LossyAggressive, Topology::MultiVar3),
    ] {
        let mut totals = [0usize; 4];
        let mut alerts = 0usize;
        for e in executions(kind, topo, cli.runs, cli.seed) {
            for a in &e.arrivals {
                alerts += 1;
                for (i, fidelity) in
                    [Fidelity::Digest, Fidelity::Heads, Fidelity::Seqnos, Fidelity::Full]
                        .into_iter()
                        .enumerate()
                {
                    totals[i] += CompactAlert::of(a, fidelity).encoded_len();
                }
            }
        }
        let avg = |t: usize| if alerts == 0 { 0.0 } else { t as f64 / alerts as f64 };
        rows.push(Row {
            scenario: label,
            alerts,
            digest_avg: avg(totals[0]),
            heads_avg: avg(totals[1]),
            seqnos_avg: avg(totals[2]),
            full_avg: avg(totals[3]),
        });
    }

    if cli.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!(
        "Average alert payload bytes per wire fidelity ({} runs/scenario, seed {})\n",
        cli.runs, cli.seed
    );
    println!(
        "{:<22} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "scenario", "alerts", "digest", "heads", "seqnos", "full"
    );
    for r in &rows {
        println!(
            "{:<22} {:>8} {:>9.1} {:>8.1} {:>8.1} {:>8.1}",
            r.scenario, r.alerts, r.digest_avg, r.heads_avg, r.seqnos_avg, r.full_avg
        );
        assert!(r.seqnos_avg <= r.full_avg);
        assert!(r.heads_avg <= r.seqnos_avg);
    }
    println!(
        "\nAn AD-1 deployment ships a fixed-size checksum; the consistency \
         algorithms need the history seqnos but never the values — the \
         value snapshot dominates the full payload, exactly the paper's \
         point about not sending histories wholesale."
    );
}
