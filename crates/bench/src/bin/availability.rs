//! Reproduces the **Figure 1 motivation**: replication reduces the
//! probability that a critical alert is missed. Sweeps missed-alert
//! fraction over replica count × CE downtime, and over replica count ×
//! front-link loss.

use rcm_bench::Cli;
use rcm_sim::availability::{sweep, AvailabilityPoint};

fn main() {
    let cli = Cli::parse(40);
    let replica_counts = [1usize, 2, 3, 4];
    let downtimes = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let losses = [0.0, 0.1, 0.2, 0.3, 0.4];

    let downtime_points = sweep(&replica_counts, &downtimes, 0.0, cli.runs, cli.seed);
    let mut loss_points = Vec::new();
    for &loss in &losses {
        loss_points.extend(sweep(&replica_counts, &[0.0], loss, cli.runs, cli.seed ^ 0x10));
    }

    if cli.json {
        let out = serde_json::json!({
            "downtime_sweep": downtime_points,
            "link_loss_sweep": loss_points,
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
        return;
    }

    println!("Missed-alert fraction vs CE downtime ({} runs/point, seed {})\n", cli.runs, cli.seed);
    header(&downtimes.map(|d| format!("d={d:.1}")));
    for &r in &replica_counts {
        let row: Vec<f64> = downtime_points
            .iter()
            .filter(|p| p.config.replicas == r)
            .map(AvailabilityPoint::missed_fraction)
            .collect();
        print_row(r, &row);
    }

    println!("\nMissed-alert fraction vs front-link loss (no CE outages)\n");
    header(&losses.map(|l| format!("p={l:.1}")));
    for &r in &replica_counts {
        let row: Vec<f64> = loss_points
            .iter()
            .filter(|p| p.config.replicas == r)
            .map(AvailabilityPoint::missed_fraction)
            .collect();
        print_row(r, &row);
    }
    println!("\nExpected shape: missed fraction falls roughly like (downtime)^replicas.");
}

fn header(cols: &[String]) {
    print!("{:<10}", "replicas");
    for c in cols {
        print!(" {c:>8}");
    }
    println!();
}

fn print_row(replicas: usize, row: &[f64]) {
    print!("{replicas:<10}");
    for v in row {
        print!(" {v:>8.4}");
    }
    println!();
}
