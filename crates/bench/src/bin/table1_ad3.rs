//! Reproduces the **§4.3 prose table**: Table 1 under Algorithm AD-3
//! (consistency enforcement) — identical to Table 1 except that the
//! aggressive-triggering row becomes consistent.

use rcm_bench::{print_matrix, Cli};
use rcm_sim::montecarlo::{property_matrix, FilterKind, Topology};

fn main() {
    let cli = Cli::parse(200);
    let m = property_matrix(
        "Table 1': single-variable systems",
        Topology::SingleVar,
        FilterKind::Ad3,
        cli.runs,
        cli.seed,
    );
    print_matrix(&m, cli.json);
}
