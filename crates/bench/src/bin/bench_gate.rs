//! CI gate over `BENCH_rcm.json`: compares a freshly generated
//! snapshot against the committed one.
//!
//! Usage: `bench_gate <committed.json> <fresh.json> [--tolerance 0.20]`
//!
//! Exits non-zero when the committed file is still the schema
//! placeholder (`meta.placeholder: true`), when a gated metric drifts
//! beyond the tolerance, when the fresh run misses an absolute floor
//! (the advertised wins — e.g. batched binary frames must beat JSON by
//! ≥10×), or when the fresh run lost serial/parallel bit-identity.
//! Absolute nanosecond timings differ wildly across runner
//! generations, so only the machine-relative ratios (the `speedup`
//! fields) are gated; absolute numbers are echoed for the log.
//!
//! Setting `RCM_BENCH_OFFLINE=1` downgrades the placeholder failure to
//! a loud warning (the ratio checks are then skipped — a placeholder
//! has no numbers to compare against). This is the escape hatch for
//! environments that cannot regenerate the committed snapshot; every
//! other failure mode (drift, lost bit-identity) still fails.

use std::process::ExitCode;

use serde_json::Value;

/// Ratio metrics stable enough across machines to gate on.
const GATED: &[&str] = &[
    "/fingerprint/speedup",
    "/ad3_realistic/speedup",
    "/ad3_marching/speedup",
    "/ad6_realistic/speedup",
    "/throughput/conds_100/speedup",
    "/throughput/conds_10k/speedup",
    "/matrix_table1_ad1/speedup",
];

/// Machine-relative ratios the *fresh* snapshot must clear outright —
/// these are the advertised wins, not drift checks, so the committed
/// snapshot plays no part. `(json pointer, minimum)`.
const FLOORS: &[(&str, f64)] =
    &[("/codec/speedup_vs_json", 10.0), ("/pipeline/conds_10k/speedup_4", 2.0)];

/// Absolute numbers echoed for the log, never gated.
const INFORMATIONAL: &[&str] = &[
    "/codec/binary_batched_ups",
    "/codec/json_ups",
    "/fingerprint/inline_ns",
    "/ad3_realistic/interval_offers_per_sec",
    "/ad3_marching/interval_offers_per_sec",
    "/ad6_realistic/interval_offers_per_sec",
    "/throughput/conds_100/incremental_ups",
    "/throughput/conds_10k/incremental_ups",
    "/pipeline/conds_10k/inline_ups",
    "/pipeline/conds_10k/workers_4_ups",
    "/tree/flat_ups",
    "/tree/tier2_ups",
    "/tree/tier3_ups",
    "/tree/tier2_root_latency/p99_ns",
    "/tree/tier3_root_latency/p99_ns",
    "/matrix_table1_ad1/parallel_secs",
];

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))
}

fn metric(doc: &Value, pointer: &str) -> Option<f64> {
    doc.pointer(pointer).and_then(Value::as_f64)
}

/// Relative drift of `fresh` against `committed` (symmetric in sign,
/// relative to the committed value).
fn drift(committed: f64, fresh: f64) -> f64 {
    if committed == 0.0 {
        return if fresh == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((fresh - committed) / committed).abs()
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_gate <committed.json> <fresh.json> [--tolerance 0.20]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 0.20f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage(),
            },
            flag if flag.starts_with("--") => return usage(),
            path => paths.push(path.to_string()),
        }
    }
    let [committed_path, fresh_path] = paths.as_slice() else {
        return usage();
    };

    let (committed, fresh) = match (load(committed_path), load(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (c, f) => {
            for err in [c.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;

    // A placeholder snapshot asserts nothing — the whole point of the
    // gate is that the committed numbers are real. RCM_BENCH_OFFLINE=1
    // downgrades exactly this failure (and nothing else) to a warning
    // for environments that cannot regenerate the snapshot.
    let offline = std::env::var("RCM_BENCH_OFFLINE").is_ok_and(|v| v == "1");
    if committed.pointer("/meta/placeholder").and_then(Value::as_bool).unwrap_or(true) {
        if offline {
            eprintln!(
                "WARNING: {committed_path} is still the schema placeholder; the ratio checks \
                 are SKIPPED because RCM_BENCH_OFFLINE=1 is set. Regenerate it with \
                 `cargo run -p rcm-bench --release --bin bench_snapshot` and commit the \
                 result as soon as a benchmark-capable machine is available."
            );
        } else {
            eprintln!(
                "FAIL: {committed_path} is still the schema placeholder — regenerate it with \
                 `cargo run -p rcm-bench --release --bin bench_snapshot` and commit the result \
                 (or set RCM_BENCH_OFFLINE=1 to downgrade this to a warning)"
            );
            failures += 1;
        }
    } else {
        for &pointer in GATED {
            match (metric(&committed, pointer), metric(&fresh, pointer)) {
                (Some(c), Some(f)) => {
                    let d = drift(c, f);
                    let verdict = if d <= tolerance { "ok  " } else { "FAIL" };
                    println!(
                        "{verdict} {pointer}: committed {c:.3}, fresh {f:.3} \
                         (drift {:.1}% vs tolerance {:.0}%)",
                        d * 100.0,
                        tolerance * 100.0
                    );
                    if d > tolerance {
                        failures += 1;
                    }
                }
                _ => {
                    eprintln!("FAIL {pointer}: missing or non-numeric in one of the snapshots");
                    failures += 1;
                }
            }
        }
    }

    // Floors judge the fresh snapshot alone: the win must hold on the
    // machine at hand, whatever the committed numbers say. Only a
    // fresh snapshot that is itself the offline placeholder may skip.
    let fresh_placeholder =
        fresh.pointer("/meta/placeholder").and_then(Value::as_bool).unwrap_or(true);
    for &(pointer, floor) in FLOORS {
        match metric(&fresh, pointer) {
            Some(f) if f >= floor => {
                println!("ok   {pointer}: {f:.1} (floor {floor:.0})");
            }
            Some(f) => {
                eprintln!("FAIL {pointer}: {f:.1} is below the {floor:.0} floor");
                failures += 1;
            }
            None if fresh_placeholder && offline => {
                eprintln!(
                    "WARNING: {pointer} floor SKIPPED — fresh snapshot is a placeholder and \
                     RCM_BENCH_OFFLINE=1 is set"
                );
            }
            None => {
                eprintln!("FAIL {pointer}: missing or non-numeric in the fresh snapshot");
                failures += 1;
            }
        }
    }

    if fresh.pointer("/matrix_table1_ad1/bit_identical").and_then(Value::as_bool) != Some(true) {
        eprintln!("FAIL: fresh run lost serial/parallel bit-identity");
        failures += 1;
    }

    for &pointer in INFORMATIONAL {
        if let Some(f) = metric(&fresh, pointer) {
            println!("info {pointer}: {f:.3} (this machine; not gated)");
        }
    }

    if failures == 0 {
        println!("bench gate passed ({} metrics within {:.0}%)", GATED.len(), tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate failed: {failures} check(s)");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::drift;

    #[test]
    fn drift_is_relative_and_symmetric_in_sign() {
        assert!((drift(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((drift(10.0, 8.0) - 0.2).abs() < 1e-12);
        assert_eq!(drift(0.0, 0.0), 0.0);
        assert_eq!(drift(0.0, 1.0), f64::INFINITY);
    }
}
