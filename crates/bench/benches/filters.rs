//! Criterion benches for the six AD filtering algorithms over a large
//! merged alert arrival stream.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_bench::executions;
use rcm_core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, PassThrough};
use rcm_core::{Alert, VarId};
use rcm_sim::montecarlo::{ScenarioKind, Topology};

/// Builds a large single-variable arrival stream by concatenating
/// simulated executions (degree-2 histories under loss stress the
/// consistency filters realistically).
fn single_var_arrivals() -> Vec<Alert> {
    executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 300, 7)
        .into_iter()
        .flat_map(|e| e.arrivals)
        .collect()
}

fn multi_var_arrivals() -> Vec<Alert> {
    executions(ScenarioKind::LossyAggressive, Topology::MultiVar, 300, 7)
        .into_iter()
        .flat_map(|e| e.arrivals)
        .collect()
}

fn bench_filters(c: &mut Criterion) {
    let x = VarId::new(0);
    let y = VarId::new(1);
    let single = single_var_arrivals();
    let multi = multi_var_arrivals();

    let mut g = c.benchmark_group("filters/offer");
    g.throughput(Throughput::Elements(single.len() as u64));
    let run = |b: &mut criterion::Bencher, mk: &dyn Fn() -> Box<dyn AlertFilter>, s: &[Alert]| {
        b.iter(|| {
            let mut f = mk();
            apply_filter(&mut *f, black_box(s)).len()
        })
    };
    g.bench_function("pass_through", |b| run(b, &|| Box::new(PassThrough::new()), &single));
    g.bench_function("ad1_dedup", |b| run(b, &|| Box::new(Ad1::new()), &single));
    g.bench_function("ad2_ordered", |b| run(b, &|| Box::new(Ad2::new(x)), &single));
    g.bench_function("ad3_consistent", |b| run(b, &|| Box::new(Ad3::new(x)), &single));
    g.bench_function("ad4_both", |b| run(b, &|| Box::new(Ad4::new(x)), &single));
    g.finish();

    let mut g = c.benchmark_group("filters/offer_multi");
    g.throughput(Throughput::Elements(multi.len() as u64));
    g.bench_function("ad5_ordered", |b| run(b, &|| Box::new(Ad5::new([x, y])), &multi));
    g.bench_function("ad6_both", |b| run(b, &|| Box::new(Ad6::new([x, y])), &multi));
    g.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
