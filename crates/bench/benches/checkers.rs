//! Criterion benches for the property checkers: the cost of deciding
//! orderedness, completeness and consistency on realistic executions.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rcm_bench::executions;
use rcm_core::ad::{apply_filter, Ad1};
use rcm_core::VarId;
use rcm_props::{
    check_complete_multi, check_complete_single, check_consistent_multi, check_consistent_single,
    check_ordered,
};
use rcm_sim::montecarlo::{ScenarioKind, Topology};

fn bench_checkers(c: &mut Criterion) {
    let x = VarId::new(0);
    let y = VarId::new(1);

    // Single-variable executions with AD-1 displays.
    let single: Vec<_> = executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 20, 3)
        .into_iter()
        .map(|e| {
            let displayed = apply_filter(&mut Ad1::new(), &e.arrivals);
            (e.condition, e.inputs, displayed)
        })
        .collect();
    let multi: Vec<_> = executions(ScenarioKind::LossyAggressive, Topology::MultiVar, 20, 3)
        .into_iter()
        .map(|e| {
            let displayed = apply_filter(&mut Ad1::new(), &e.arrivals);
            (e.condition, e.inputs, displayed)
        })
        .collect();

    let mut g = c.benchmark_group("checkers/batch_of_20_runs");
    g.sample_size(20);
    g.bench_function("ordered_single", |b| {
        b.iter(|| single.iter().filter(|(_, _, d)| check_ordered(black_box(d), &[x]).ok).count())
    });
    g.bench_function("complete_single", |b| {
        b.iter(|| {
            single.iter().filter(|(c, i, d)| check_complete_single(c, i, black_box(d)).ok).count()
        })
    });
    g.bench_function("consistent_single", |b| {
        b.iter(|| {
            single.iter().filter(|(c, i, d)| check_consistent_single(c, i, black_box(d)).ok).count()
        })
    });
    g.bench_function("ordered_multi", |b| {
        b.iter(|| multi.iter().filter(|(_, _, d)| check_ordered(black_box(d), &[x, y]).ok).count())
    });
    g.bench_function("consistent_multi_precedence_graph", |b| {
        b.iter(|| {
            multi.iter().filter(|(c, i, d)| check_consistent_multi(c, i, black_box(d)).ok).count()
        })
    });
    g.finish();

    // The exponential one gets its own group with fewer samples.
    let mut g = c.benchmark_group("checkers/interleaving_enumeration");
    g.sample_size(10);
    g.bench_function("complete_multi_12_updates", |b| {
        b.iter(|| {
            multi.iter().filter(|(c, i, d)| check_complete_multi(c, i, black_box(d)).ok).count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
