//! Criterion benches for the Condition Evaluator: ingest throughput
//! across condition types and expression compilation cost.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::{AbsDifference, Cmp, Conservative, DeltaRise, Threshold};
use rcm_core::{Condition, Evaluator, Update, VarId, VarRegistry};

const N: u64 = 10_000;

fn single_var_updates(n: u64) -> Vec<Update> {
    let x = VarId::new(0);
    (1..=n).map(|s| Update::new(x, s, 100.0 + 30.0 * ((s as f64) * 0.7).sin())).collect()
}

fn ingest_all<C: Condition>(cond: C, updates: &[Update]) -> u64 {
    let mut ev = Evaluator::new(cond);
    updates.iter().filter_map(|&u| ev.ingest(u)).count() as u64
}

fn bench_evaluator(c: &mut Criterion) {
    let x = VarId::new(0);
    let y = VarId::new(1);
    let updates = single_var_updates(N);

    let mut g = c.benchmark_group("evaluator/ingest");
    g.throughput(Throughput::Elements(N));
    g.bench_function("c1_threshold", |b| {
        b.iter(|| ingest_all(Threshold::new(x, Cmp::Gt, 110.0), black_box(&updates)))
    });
    g.bench_function("c2_delta_rise", |b| {
        b.iter(|| ingest_all(DeltaRise::new(x, 10.0), black_box(&updates)))
    });
    g.bench_function("c3_conservative", |b| {
        b.iter(|| ingest_all(Conservative::new(DeltaRise::new(x, 10.0)), black_box(&updates)))
    });

    let mut reg = VarRegistry::new();
    reg.register("v0");
    let compiled =
        CompiledCondition::compile("v0[0].value - v0[-1].value > 10 && consecutive(v0)", &mut reg)
            .expect("valid expression");
    g.bench_function("c3_compiled_expression", |b| {
        b.iter(|| ingest_all(compiled.clone(), black_box(&updates)))
    });

    // Two interleaved variables for the multi-variable condition.
    let multi: Vec<Update> = (1..=N / 2)
        .flat_map(|s| {
            [
                Update::new(x, s, 100.0 + (s % 7) as f64 * 20.0),
                Update::new(y, s, 100.0 + (s % 5) as f64 * 25.0),
            ]
        })
        .collect();
    g.bench_function("cm_abs_difference", |b| {
        b.iter(|| ingest_all(AbsDifference::new(x, y, 50.0), black_box(&multi)))
    });
    g.finish();

    c.bench_function("evaluator/compile_expression", |b| {
        b.iter(|| {
            let mut reg = VarRegistry::new();
            CompiledCondition::compile(
                black_box("x[0].value - x[-1].value > 200 && consecutive(x)"),
                &mut reg,
            )
            .expect("valid expression")
        })
    });
}

criterion_group!(benches, bench_evaluator);
criterion_main!(benches);
